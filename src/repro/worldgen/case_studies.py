"""Section 6 case-study populations: US hospitals and smart-home companies.

Both verticals reuse the main generator's machinery (markets, materializer,
measurement pipeline) over different populations, calibrated to Tables 10
and 11.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.worldgen import rankmodel
from repro.worldgen.config import WorldConfig
from repro.worldgen.generate import (
    build_ca_market,
    build_cdn_market,
    build_dns_market,
)
from repro.worldgen.spec import (
    PRIVATE,
    DnsSetup,
    SnapshotSpec,
    WebsiteSpec,
)

_HOSPITAL_WORDS = (
    "mercy", "stluke", "regional", "memorial", "unity", "baptist",
    "sacredheart", "general", "childrens", "university", "community",
    "valley", "summit", "lakeside", "providence", "goodsam",
)

# Table 10 calibration (top-200 US hospitals).
HOSPITAL_THIRD_PARTY_DNS = 0.51
HOSPITAL_DNS_REDUNDANT_OF_THIRD = 0.10   # 90% of third-party users not redundant
HOSPITAL_CDN_USAGE = 0.16                # all third-party, all critical
HOSPITAL_HTTPS = 1.0
HOSPITAL_THIRD_PARTY_CA = 1.0
HOSPITAL_STAPLING = 0.22
HOSPITAL_TOP_DNS = "godaddy-dns"         # GoDaddy: 13% of hospitals
HOSPITAL_TOP_DNS_SHARE = 0.13
HOSPITAL_TOP_CDN = "akamai"              # Akamai: 7% of hospitals
HOSPITAL_TOP_CDN_SHARE = 0.07


def hospital_snapshot(
    config: WorldConfig | None = None, n_hospitals: int = 200
) -> SnapshotSpec:
    """Generate the top-``n`` US-hospital population (Table 10)."""
    config = config or WorldConfig(n_websites=1000, year=2020)
    rng = random.Random(config.seed + 10_000)
    dns_market = build_dns_market(config, 2020, rng)
    cdn_market = build_cdn_market(config, 2020, dns_market, rng)
    ca_market = build_ca_market(config, 2020, dns_market, cdn_market, rng)

    websites: list[WebsiteSpec] = []
    seen: set[str] = set()
    rank = 0
    while len(websites) < n_hospitals:
        word = rng.choice(_HOSPITAL_WORDS)
        domain = f"{word}health{rng.randrange(1, 999)}.org"
        if domain in seen:
            continue
        seen.add(domain)
        rank += 1
        if rng.random() < HOSPITAL_THIRD_PARTY_DNS:
            if rng.random() < HOSPITAL_TOP_DNS_SHARE:
                provider = HOSPITAL_TOP_DNS
            else:
                keys = list(dns_market)
                weights = [p.share_weight for p in dns_market.values()]
                provider = rankmodel.weighted_choice(rng, keys, weights)
            providers = [provider]
            if rng.random() < HOSPITAL_DNS_REDUNDANT_OF_THIRD:
                providers.append(PRIVATE)
            dns = DnsSetup(providers=providers)
        else:
            dns = DnsSetup(providers=[PRIVATE], soa_masked=False)
        cdns: list[str] = []
        if rng.random() < HOSPITAL_CDN_USAGE:
            if rng.random() < HOSPITAL_TOP_CDN_SHARE / HOSPITAL_CDN_USAGE:
                cdns = [HOSPITAL_TOP_CDN]
            else:
                keys = [k for k, c in cdn_market.items() if c.share_weight > 0]
                weights = [cdn_market[k].share_weight for k in keys]
                cdns = [rankmodel.weighted_choice(rng, keys, weights)]
        ca_keys = list(ca_market)
        ca_weights = [c.share_weight for c in ca_market.values()]
        websites.append(
            WebsiteSpec(
                domain=domain,
                rank=rank,
                entity=domain,
                dns=dns,
                https=True,
                ca_key=rankmodel.weighted_choice(rng, ca_keys, ca_weights),
                ocsp_stapled=rng.random() < HOSPITAL_STAPLING,
                cdns=cdns,
                n_internal_resources=rng.randrange(2, 5),
            )
        )
    return SnapshotSpec(
        year=2020,
        websites=websites,
        dns_providers=dns_market,
        cdns=cdn_market,
        cas=ca_market,
    )


# --------------------------------------------------------------------------
# Smart home (Table 11)
# --------------------------------------------------------------------------

@dataclass
class SmartHomeCompany:
    """One smart-home company's dependency profile."""

    name: str
    domain: str
    cloud_only: bool               # 9 of 23 operate cloud-only
    dns_providers: list[str] = field(default_factory=lambda: [PRIVATE])
    cloud_provider: str = PRIVATE  # hosting/cloud choice
    local_failover: bool = False   # device keeps working without the cloud

    @property
    def dns_is_third_party(self) -> bool:
        return any(p != PRIVATE for p in self.dns_providers)

    @property
    def dns_is_redundant(self) -> bool:
        return len(set(self.dns_providers)) > 1

    @property
    def dns_is_critical(self) -> bool:
        """Single third-party DNS and no local failover (Section 6.2)."""
        return (
            self.dns_is_third_party
            and not self.dns_is_redundant
            and not self.local_failover
        )

    @property
    def cloud_is_third_party(self) -> bool:
        return self.cloud_provider != PRIVATE

    @property
    def cloud_is_critical(self) -> bool:
        return self.cloud_is_third_party and not self.local_failover


def smart_home_companies() -> list[SmartHomeCompany]:
    """The 23 analyzed smart-home companies, calibrated to Table 11.

    21/23 use third-party DNS (1 redundant), 8 critically; 15 use a
    third-party cloud, 5 critically; 11 of the 15 cloud users are on
    Amazon, 13 use Amazon DNS.
    """
    aws = "aws-dns"
    return [
        # Private-DNS pair (Table 11's 91.3% third-party = 21 of 23).
        SmartHomeCompany("Philips Hue", "meethue.com", False,
                         dns_providers=[PRIVATE], cloud_provider="amazon-cloud",
                         local_failover=True),
        SmartHomeCompany("Amazon Alexa", "alexa-smarthome.com", True,
                         dns_providers=[PRIVATE], cloud_provider=PRIVATE,
                         local_failover=True),
        # Critically dependent on DNS (single third party, no failover).
        SmartHomeCompany("Logitech Harmony", "myharmony.com", True,
                         dns_providers=[aws], cloud_provider="amazon-cloud"),
        SmartHomeCompany("Yonomi", "yonomi.co", True,
                         dns_providers=[aws], cloud_provider=PRIVATE),
        SmartHomeCompany("Brilliant Tech", "brilliant.tech", True,
                         dns_providers=["google-dns"], cloud_provider=PRIVATE),
        SmartHomeCompany("IFTTT", "ifttt.com", True,
                         dns_providers=[aws], cloud_provider="amazon-cloud"),
        SmartHomeCompany("Petnet", "petnet.io", True,
                         dns_providers=[aws], cloud_provider="amazon-cloud"),
        SmartHomeCompany("Ecobee", "ecobee.com", True,
                         dns_providers=[aws], cloud_provider="amazon-cloud"),
        SmartHomeCompany("Ring Security", "ring.com", True,
                         dns_providers=[aws], cloud_provider="amazon-cloud"),
        SmartHomeCompany("Wink", "wink.com", True,
                         dns_providers=["dyn"], cloud_provider=PRIVATE),
        # Third-party DNS with local failover (not critical).
        SmartHomeCompany("Apple HomeKit", "apple-home.com", False,
                         dns_providers=["akamai-dns"], cloud_provider=PRIVATE,
                         local_failover=True),
        SmartHomeCompany("Samsung SmartThings", "smartthings.com", False,
                         dns_providers=[aws], cloud_provider="amazon-cloud",
                         local_failover=True),
        SmartHomeCompany("Lifx", "lifx.com", False,
                         dns_providers=["cloudflare"], cloud_provider="google-cloud",
                         local_failover=True),
        SmartHomeCompany("TP-Link Kasa", "kasasmart.com", False,
                         dns_providers=[aws], cloud_provider="alibaba-cloud",
                         local_failover=True),
        SmartHomeCompany("Wemo", "wemo.com", False,
                         dns_providers=[aws], cloud_provider="amazon-cloud",
                         local_failover=True),
        SmartHomeCompany("Nest", "nest.com", False,
                         dns_providers=["google-dns"], cloud_provider="google-cloud",
                         local_failover=True),
        SmartHomeCompany("Wyze", "wyze.com", False,
                         dns_providers=[aws], cloud_provider="amazon-cloud",
                         local_failover=True),
        SmartHomeCompany("Sengled", "sengled.com", False,
                         dns_providers=[aws], cloud_provider="alibaba-cloud",
                         local_failover=True),
        SmartHomeCompany("Arlo", "arlo.com", False,
                         dns_providers=["azure-dns"], cloud_provider="amazon-cloud",
                         local_failover=True),
        SmartHomeCompany("Hubitat", "hubitat.com", False,
                         dns_providers=["godaddy-dns"], cloud_provider=PRIVATE,
                         local_failover=True),
        SmartHomeCompany("Home Assistant", "home-assistant.io", False,
                         dns_providers=["cloudflare"], cloud_provider=PRIVATE,
                         local_failover=True),
        SmartHomeCompany("Abode", "goabode.com", False,
                         dns_providers=[aws], cloud_provider="amazon-cloud",
                         local_failover=True),
        # The single redundantly-provisioned company.
        SmartHomeCompany("Control4", "control4.com", False,
                         dns_providers=[aws, "ultradns"],
                         cloud_provider=PRIVATE, local_failover=True),
    ]
