"""The provider catalog: named DNS providers, CDNs, and CAs.

Market shares, popularity biases, redundancy rates, and inter-service
dependency choices are calibrated to the paper's reported numbers (see
DESIGN.md §5). Shares are *weights*: the generator normalizes them within
each snapshot, and long-tail synthetic providers absorb the remainder so
concentration CDFs (Figure 6) keep their shape.

Conventions used by the generator:

* ``share_*`` for DNS providers is the fraction of *all* websites using the
  provider; for CDNs the fraction of *CDN-using* websites; for CAs the
  fraction of *HTTPS* websites.
* ``dns_choice`` / ``cdn_choice`` describe the provider's own inter-service
  dependencies per snapshot: ``"private"``, a provider key, or a tuple of
  keys (redundantly provisioned).
* a share of 0 means the provider does not serve that snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

DnsChoice = Union[str, tuple[str, ...]]


@dataclass(frozen=True)
class DnsProviderEntry:
    """A managed-DNS provider."""

    key: str
    display: str
    entity: str
    ns_domains: tuple[str, ...]
    share_2020: float
    share_2016: float
    # Multiplier applied for paper-rank <= 1000 websites (Dyn/Akamai skew
    # towards popular sites; Cloudflare skews away, per Section 4.2).
    top_bias_2020: float = 1.0
    top_bias_2016: float = 1.0
    # Probability a customer provisions a second provider alongside this one
    # (Cloudflare's routing model forbids it; Dyn/NS1/UltraDNS encourage it).
    secondary_rate: float = 0.05


@dataclass(frozen=True)
class CdnEntry:
    """A content delivery network."""

    key: str
    display: str
    entity: str
    cname_suffixes: tuple[str, ...]
    share_2020: float
    share_2016: float
    top_bias_2020: float = 1.0
    top_bias_2016: float = 1.0
    redundancy_rate: float = 0.08
    dns_choice_2020: DnsChoice = "private"
    dns_choice_2016: DnsChoice = "private"


@dataclass(frozen=True)
class CaEntry:
    """A certificate authority."""

    key: str
    display: str
    entity: str
    ocsp_host: str
    crl_host: str
    share_2020: float
    share_2016: float
    stapling_rate_2020: float = 0.15
    stapling_rate_2016: float = 0.15
    dns_choice_2020: DnsChoice = "private"
    dns_choice_2016: DnsChoice = "private"
    cdn_choice_2020: Optional[str] = None
    cdn_choice_2016: Optional[str] = None


# --------------------------------------------------------------------------
# DNS providers. Calibration anchors (2020): Cloudflare C=24/I=23; top-3
# impact ~40%; DNSMadeEasy ~1-2%; Dyn shrank 2% -> 0.6% after the attack.
# --------------------------------------------------------------------------

DNS_PROVIDERS: tuple[DnsProviderEntry, ...] = (
    DnsProviderEntry(
        key="cloudflare", display="Cloudflare DNS", entity="cloudflare",
        ns_domains=("ns.cloudflare.com",),
        share_2020=24.0, share_2016=14.0,
        top_bias_2020=0.3, top_bias_2016=0.25, secondary_rate=0.01,
    ),
    DnsProviderEntry(
        key="aws-dns", display="AWS Route 53", entity="amazon",
        ns_domains=("awsdns.net", "awsdns.org"),
        share_2020=10.0, share_2016=8.0,
        top_bias_2020=1.2, top_bias_2016=1.2, secondary_rate=0.10,
    ),
    DnsProviderEntry(
        key="godaddy-dns", display="GoDaddy DNS", entity="godaddy",
        ns_domains=("domaincontrol.com",),
        share_2020=7.0, share_2016=7.0,
        top_bias_2020=0.2, top_bias_2016=0.2, secondary_rate=0.02,
    ),
    DnsProviderEntry(
        key="dnsmadeeasy", display="DNSMadeEasy", entity="dnsmadeeasy",
        ns_domains=("dnsmadeeasy.com",),
        share_2020=1.5, share_2016=1.5,
        top_bias_2020=1.5, top_bias_2016=1.5, secondary_rate=0.30,
    ),
    DnsProviderEntry(
        key="dyn", display="Dyn (Oracle)", entity="oracle",
        ns_domains=("dynect.net",),
        share_2020=0.6, share_2016=2.0,
        top_bias_2020=4.0, top_bias_2016=9.0, secondary_rate=0.45,
    ),
    DnsProviderEntry(
        key="ns1", display="NS1", entity="ns1",
        ns_domains=("nsone.net",),
        share_2020=1.2, share_2016=0.8,
        top_bias_2020=2.0, top_bias_2016=2.0, secondary_rate=0.40,
    ),
    DnsProviderEntry(
        key="ultradns", display="UltraDNS (Neustar)", entity="neustar",
        ns_domains=("ultradns.net", "ultradns.org"),
        share_2020=1.0, share_2016=1.2,
        top_bias_2020=2.5, top_bias_2016=2.5, secondary_rate=0.40,
    ),
    DnsProviderEntry(
        key="akamai-dns", display="Akamai Edge DNS", entity="akamai",
        ns_domains=("akam.net",),
        share_2020=1.8, share_2016=1.8,
        top_bias_2020=5.0, top_bias_2016=5.0, secondary_rate=0.20,
    ),
    DnsProviderEntry(
        key="comodo-dns", display="Comodo DNS", entity="sectigo",
        ns_domains=("comodo.net",),
        share_2020=0.5, share_2016=0.6, secondary_rate=0.05,
    ),
    DnsProviderEntry(
        key="google-dns", display="Google Cloud DNS", entity="google",
        ns_domains=("googledomains.com",),
        share_2020=2.0, share_2016=1.0,
        top_bias_2020=1.0, top_bias_2016=1.0, secondary_rate=0.05,
    ),
    DnsProviderEntry(
        key="azure-dns", display="Azure DNS", entity="microsoft",
        ns_domains=("azure-dns.com", "azure-dns.net"),
        share_2020=1.5, share_2016=0.5, secondary_rate=0.08,
    ),
    DnsProviderEntry(
        key="alibaba-dns", display="Alibaba Cloud DNS", entity="alibaba",
        ns_domains=("alibabadns.com", "alicdn.com"),
        share_2020=1.2, share_2016=0.8, secondary_rate=0.02,
    ),
    DnsProviderEntry(
        key="ovh-dns", display="OVH DNS", entity="ovh",
        ns_domains=("ovh.net",),
        share_2020=1.0, share_2016=1.2, secondary_rate=0.03,
    ),
    DnsProviderEntry(
        key="namecheap-dns", display="Namecheap DNS", entity="namecheap",
        ns_domains=("registrar-servers.com",),
        share_2020=1.5, share_2016=1.5,
        top_bias_2020=0.2, top_bias_2016=0.2, secondary_rate=0.02,
    ),
    DnsProviderEntry(
        key="he-dns", display="Hurricane Electric DNS", entity="he",
        ns_domains=("he.net",),
        share_2020=0.5, share_2016=0.6, secondary_rate=0.10,
    ),
)

# Fraction of all websites using third-party DNS that falls to the synthetic
# long tail (the remainder after the named providers above). The 2016 tail
# is much fatter: 2705 providers covered 80% of websites then vs 54 in 2020.
DNS_TAIL_WEIGHT_2020 = 33.0
DNS_TAIL_WEIGHT_2016 = 46.0


# --------------------------------------------------------------------------
# CDNs. Shares are % of CDN-using websites. Anchors (2020): CloudFront 30,
# Cloudflare 21 (=7% of all sites, Fig 8a), Akamai 18, StackPath 6 (=2%),
# Incapsula 3 (=1%); 86 CDNs total. 2016: Cloudflare led; 47 CDNs total.
# --------------------------------------------------------------------------

CDNS: tuple[CdnEntry, ...] = (
    CdnEntry(
        key="cloudfront", display="Amazon CloudFront", entity="amazon",
        cname_suffixes=("cloudfront.net",),
        share_2020=30.0, share_2016=24.0,
        top_bias_2020=0.8, top_bias_2016=0.8, redundancy_rate=0.03,
        dns_choice_2020="private", dns_choice_2016="private",
    ),
    CdnEntry(
        key="cloudflare-cdn", display="Cloudflare CDN", entity="cloudflare",
        cname_suffixes=("cdn.cloudflare.net",),
        share_2020=21.0, share_2016=30.0,
        top_bias_2020=0.5, top_bias_2016=0.5, redundancy_rate=0.03,
        dns_choice_2020="private", dns_choice_2016="private",
    ),
    CdnEntry(
        key="akamai", display="Akamai", entity="akamai",
        cname_suffixes=("edgekey.net", "edgesuite.net", "akamaized.net"),
        share_2020=18.0, share_2016=19.0,
        top_bias_2020=6.0, top_bias_2016=6.0, redundancy_rate=0.30,
        dns_choice_2020="private", dns_choice_2016="private",
    ),
    CdnEntry(
        key="fastly", display="Fastly", entity="fastly",
        cname_suffixes=("fastly.net", "fastlylb.net"),
        share_2020=8.0, share_2016=10.0,
        top_bias_2020=4.0, top_bias_2016=4.0, redundancy_rate=0.30,
        # Fastly famously used Dyn in 2016 (critically: the Dyn incident took
        # it out); by 2020 it is redundantly provisioned.
        dns_choice_2020=("dyn", "private"), dns_choice_2016="dyn",
    ),
    CdnEntry(
        key="stackpath", display="StackPath (MaxCDN)", entity="stackpath",
        cname_suffixes=("stackpathdns.com", "netdna-cdn.com"),
        share_2020=6.0, share_2016=4.0, redundancy_rate=0.05,
        dns_choice_2020="aws-dns", dns_choice_2016="aws-dns",
    ),
    CdnEntry(
        key="incapsula", display="Imperva Incapsula", entity="imperva",
        cname_suffixes=("incapdns.net",),
        share_2020=3.0, share_2016=2.0, redundancy_rate=0.02,
        dns_choice_2020="private", dns_choice_2016="private",
    ),
    CdnEntry(
        key="keycdn", display="KeyCDN", entity="proinity",
        cname_suffixes=("kxcdn.com",),
        share_2020=2.0, share_2016=1.5, redundancy_rate=0.05,
        dns_choice_2020="private", dns_choice_2016="private",
    ),
    CdnEntry(
        key="limelight", display="Limelight", entity="limelight",
        cname_suffixes=("llnwd.net",),
        share_2020=1.5, share_2016=2.0,
        top_bias_2020=2.0, top_bias_2016=2.0, redundancy_rate=0.20,
        dns_choice_2020="private", dns_choice_2016="private",
    ),
    CdnEntry(
        key="edgecast", display="Verizon Edgecast", entity="verizon",
        cname_suffixes=("edgecastcdn.net",),
        share_2020=1.5, share_2016=2.0, redundancy_rate=0.15,
        dns_choice_2020="private", dns_choice_2016="private",
    ),
    CdnEntry(
        key="azure-cdn", display="Azure CDN", entity="microsoft",
        cname_suffixes=("azureedge.net",),
        share_2020=1.5, share_2016=0.8, redundancy_rate=0.05,
        dns_choice_2020="private", dns_choice_2016="private",
    ),
    CdnEntry(
        key="google-cdn", display="Google Cloud CDN", entity="google",
        cname_suffixes=("googleusercontent.com",),
        share_2020=1.5, share_2016=1.0, redundancy_rate=0.05,
        dns_choice_2020="private", dns_choice_2016="private",
    ),
    CdnEntry(
        key="alibaba-cdn", display="Alibaba Cloud CDN", entity="alibaba",
        cname_suffixes=("alicdn-edge.com",),
        share_2020=1.2, share_2016=0.6, redundancy_rate=0.02,
        dns_choice_2020="alibaba-dns", dns_choice_2016="alibaba-dns",
    ),
    CdnEntry(
        key="cdn77", display="CDN77", entity="datacamp",
        cname_suffixes=("cdn77.org",),
        share_2020=1.0, share_2016=0.6, redundancy_rate=0.05,
        dns_choice_2020="private", dns_choice_2016="private",
    ),
    CdnEntry(
        key="bunny", display="BunnyCDN", entity="bunnyway",
        cname_suffixes=("b-cdn.net",),
        share_2020=0.8, share_2016=0.0, redundancy_rate=0.05,
        dns_choice_2020="aws-dns", dns_choice_2016="aws-dns",
    ),
    CdnEntry(
        key="cachefly", display="CacheFly", entity="cachefly",
        cname_suffixes=("cachefly.net",),
        share_2020=0.6, share_2016=0.8, redundancy_rate=0.05,
        dns_choice_2020="private", dns_choice_2016="private",
    ),
    CdnEntry(
        key="netlify", display="Netlify Edge", entity="netlify",
        cname_suffixes=("netlify.app",),
        share_2020=0.8, share_2016=0.3, redundancy_rate=0.05,
        # Critically dependent on a single third-party DNS in 2016; adopted
        # redundancy by 2020 (Table 9).
        dns_choice_2020=("ns1", "aws-dns"), dns_choice_2016="ns1",
    ),
    CdnEntry(
        key="kinx", display="KINX CDN", entity="kinx",
        cname_suffixes=("kinxcdn.com",),
        share_2020=0.3, share_2016=0.3, redundancy_rate=0.02,
        dns_choice_2020=("aws-dns", "ns1"), dns_choice_2016="aws-dns",
    ),
    CdnEntry(
        key="gocache", display="GoCache", entity="gocache",
        cname_suffixes=("gocache.net",),
        share_2020=0.2, share_2016=0.2, redundancy_rate=0.02,
        dns_choice_2020="private", dns_choice_2016="dnsmadeeasy",
    ),
    CdnEntry(
        key="zenedge", display="Zenedge", entity="oracle",
        cname_suffixes=("zenedge.net",),
        share_2020=0.2, share_2016=0.3, redundancy_rate=0.02,
        dns_choice_2020="dyn", dns_choice_2016=("dyn", "ultradns"),
    ),
    CdnEntry(
        key="maxcdn", display="MaxCDN", entity="stackpath",
        cname_suffixes=("maxcdn-edge.com",),
        share_2020=0.5, share_2016=1.5, redundancy_rate=0.05,
        dns_choice_2020="aws-dns", dns_choice_2016="aws-dns",
    ),
)

CDN_TAIL_SHARE_EACH = 0.12  # tiny synthetic CDNs fill the count to 86/47


# --------------------------------------------------------------------------
# CAs. Shares are % of HTTPS websites. Anchors (2020): DigiCert 32,
# Let's Encrypt 15, Sectigo 9; top-3 critical for ~60% of HTTPS sites.
# 2016: Comodo led; Symantec #3 (bought by DigiCert in between); 70 CAs.
# --------------------------------------------------------------------------

CAS: tuple[CaEntry, ...] = (
    CaEntry(
        key="digicert", display="DigiCert", entity="digicert",
        ocsp_host="ocsp.digicert.com", crl_host="crl3.digicert.com",
        share_2020=41.0, share_2016=2.5,
        stapling_rate_2020=0.10, stapling_rate_2016=0.12,
        # The paper's marquee indirect dependency: DigiCert critically on
        # DNSMadeEasy (2020); in 2016 it was redundantly provisioned.
        dns_choice_2020="dnsmadeeasy", dns_choice_2016=("dnsmadeeasy", "ultradns"),
        cdn_choice_2020="incapsula", cdn_choice_2016="incapsula",
    ),
    CaEntry(
        key="letsencrypt", display="Let's Encrypt", entity="isrg",
        ocsp_host="ocsp.int-x3.letsencrypt.org", crl_host="crl.letsencrypt.org",
        share_2020=19.0, share_2016=5.2,
        stapling_rate_2020=0.35, stapling_rate_2016=0.30,
        dns_choice_2020="cloudflare", dns_choice_2016="cloudflare",
        cdn_choice_2020="cloudflare-cdn", cdn_choice_2016=None,
    ),
    CaEntry(
        key="sectigo", display="Sectigo (Comodo)", entity="sectigo",
        ocsp_host="ocsp.sectigo.com", crl_host="crl.sectigo.com",
        share_2020=11.5, share_2016=32.0,
        stapling_rate_2020=0.30, stapling_rate_2016=0.25,
        dns_choice_2020="private", dns_choice_2016="private",
        cdn_choice_2020="stackpath", cdn_choice_2016="maxcdn",
    ),
    CaEntry(
        key="globalsign", display="GlobalSign", entity="globalsign",
        ocsp_host="ocsp.globalsign.com", crl_host="crl.globalsign.com",
        share_2020=2.5, share_2016=13.0,
        stapling_rate_2020=0.10, stapling_rate_2016=0.10,
        dns_choice_2020="akamai-dns", dns_choice_2016="akamai-dns",
        cdn_choice_2020="akamai", cdn_choice_2016="akamai",
    ),
    CaEntry(
        key="amazon-ca", display="Amazon Trust Services", entity="amazon",
        ocsp_host="ocsp.amazontrust.com", crl_host="crl.amazontrust.com",
        share_2020=1.2, share_2016=0.0,
        stapling_rate_2020=0.08,
        dns_choice_2020="aws-dns", dns_choice_2016="aws-dns",  # same entity
        cdn_choice_2020="cloudfront", cdn_choice_2016=None,    # same entity
    ),
    CaEntry(
        key="godaddy-ca", display="GoDaddy CA", entity="godaddy",
        # Dedicated PKI domain (godaddy.com itself is a measured website);
        # godaddy.com's certificate carries this domain in its SAN list so
        # the heuristic classifies the CA as private (same entity).
        ocsp_host="ocsp.gdpki.com", crl_host="crl.gdpki.com",
        share_2020=0.8, share_2016=4.0,
        stapling_rate_2020=0.12, stapling_rate_2016=0.12,
        # The paper's example: godaddy.com uses its own CA, but that CA's
        # revocation endpoints ride Akamai DNS (Section 5.1).
        dns_choice_2020="akamai-dns", dns_choice_2016="akamai-dns",
        cdn_choice_2020="akamai", cdn_choice_2016="akamai",
    ),
    CaEntry(
        key="entrust", display="Entrust", entity="entrust",
        ocsp_host="ocsp.entrust.net", crl_host="crl.entrust.net",
        share_2020=0.4, share_2016=1.0,
        stapling_rate_2020=0.12, stapling_rate_2016=0.12,
        dns_choice_2020=("private", "ultradns"), dns_choice_2016=("private", "ultradns"),
        cdn_choice_2020="cloudflare-cdn", cdn_choice_2016="cloudflare-cdn",
    ),
    CaEntry(
        key="symantec", display="Symantec", entity="symantec",
        ocsp_host="ocsp.symantec-ca.com", crl_host="crl.symantec-ca.com",
        share_2020=0.0, share_2016=17.0,
        stapling_rate_2016=0.10,
        dns_choice_2016="ultradns", cdn_choice_2016="akamai",
        dns_choice_2020="private", cdn_choice_2020=None,
    ),
    CaEntry(
        key="geotrust", display="GeoTrust", entity="symantec",
        ocsp_host="ocsp.geotrust-ca.com", crl_host="crl.geotrust-ca.com",
        share_2020=0.1, share_2016=3.0,
        stapling_rate_2020=0.10, stapling_rate_2016=0.10,
        dns_choice_2020="private", dns_choice_2016="ultradns",
        cdn_choice_2020=None, cdn_choice_2016="akamai",
    ),
    CaEntry(
        key="thawte", display="Thawte", entity="symantec",
        ocsp_host="ocsp.thawte-ca.com", crl_host="crl.thawte-ca.com",
        share_2020=0.1, share_2016=1.0,
        dns_choice_2020="private", dns_choice_2016="ultradns",
        cdn_choice_2020=None, cdn_choice_2016="akamai",
    ),
    CaEntry(
        key="rapidssl", display="RapidSSL", entity="symantec",
        ocsp_host="ocsp.rapidssl-ca.com", crl_host="crl.rapidssl-ca.com",
        share_2020=0.1, share_2016=1.5,
        dns_choice_2020="private", dns_choice_2016="ultradns",
        cdn_choice_2020=None, cdn_choice_2016=None,
    ),
    CaEntry(
        key="teliasonera", display="TeliaSonera CA", entity="telia",
        ocsp_host="ocsp.telia-ca.com", crl_host="crl.telia-ca.com",
        share_2020=0.05, share_2016=0.2,
        dns_choice_2020="private", dns_choice_2016="private",
        cdn_choice_2020=None, cdn_choice_2016="cloudflare-cdn",
    ),
    CaEntry(
        key="trustasia", display="TrustAsia", entity="trustasia",
        ocsp_host="ocsp.trustasia-ca.com", crl_host="crl.trustasia-ca.com",
        share_2020=0.1, share_2016=0.15,
        dns_choice_2020="alibaba-dns", dns_choice_2016="private",
        cdn_choice_2020=None, cdn_choice_2016=None,
    ),
    CaEntry(
        key="certum", display="Certum", entity="asseco",
        ocsp_host="ocsp.certum-ca.com", crl_host="crl.certum-ca.com",
        share_2020=0.1, share_2016=0.3,
        # The paper's example: Certum uses MaxCDN which uses AWS DNS.
        dns_choice_2020="private", dns_choice_2016="private",
        cdn_choice_2020="maxcdn", cdn_choice_2016="maxcdn",
    ),
    CaEntry(
        key="google-trust", display="Google Trust Services", entity="google",
        ocsp_host="ocsp.pki.goog", crl_host="crl.pki.goog",
        share_2020=0.3, share_2016=0.0,
        stapling_rate_2020=0.20,
        dns_choice_2020="private", dns_choice_2016="private",
        cdn_choice_2020="google-cdn", cdn_choice_2016=None,  # same entity
    ),
    CaEntry(
        key="microsoft-ca", display="Microsoft PKI", entity="microsoft",
        ocsp_host="ocsp.msocsp.com", crl_host="crl.microsoft-pki.com",
        share_2020=0.15, share_2016=0.1,
        # Private CA using a third-party CDN: gives microsoft.com, xbox.com
        # their hidden dependency (Section 5.2).
        dns_choice_2020="private", dns_choice_2016="private",
        cdn_choice_2020="akamai", cdn_choice_2016="akamai",
    ),
    CaEntry(
        key="internet2", display="InCommon (Internet2)", entity="internet2",
        ocsp_host="ocsp.incommon-ca.org", crl_host="crl.incommon-ca.org",
        share_2020=0.05, share_2016=0.1,
        dns_choice_2020="comodo-dns", dns_choice_2016=("comodo-dns", "ultradns"),
        cdn_choice_2020=None, cdn_choice_2016=None,
    ),
    CaEntry(
        key="buypass", display="Buypass", entity="buypass",
        ocsp_host="ocsp.buypass-ca.no", crl_host="crl.buypass-ca.no",
        share_2020=0.3, share_2016=0.3,
        dns_choice_2020="comodo-dns", dns_choice_2016="comodo-dns",
        cdn_choice_2020=None, cdn_choice_2016=None,
    ),
)

# Synthetic tail CAs / CDNs fill the market to the paper's counts; their
# inter-service choices are assigned procedurally to hit Table 6's rates.
CA_TAIL_SHARE_EACH = 0.02


@dataclass(frozen=True)
class ProviderCatalog:
    """All named providers plus lookup helpers."""

    dns_providers: tuple[DnsProviderEntry, ...] = DNS_PROVIDERS
    cdns: tuple[CdnEntry, ...] = CDNS
    cas: tuple[CaEntry, ...] = CAS

    def dns_by_key(self) -> dict[str, DnsProviderEntry]:
        return {p.key: p for p in self.dns_providers}

    def cdn_by_key(self) -> dict[str, CdnEntry]:
        return {c.key: c for c in self.cdns}

    def ca_by_key(self) -> dict[str, CaEntry]:
        return {c.key: c for c in self.cas}


_CATALOG = ProviderCatalog()


def provider_catalog() -> ProviderCatalog:
    """The process-wide provider catalog."""
    return _CATALOG
