"""Generation configuration and calibration targets.

The world is a downscaled Alexa top-100K: with ``n_websites = N``, a
generated rank ``r`` stands for paper rank ``r * (100_000 / N)``, so
population-level aggregates reproduce the paper's top-100K numbers at any
scale. Rank-bucket breakdowns (the paper's k=100 / 1K / 10K / 100K) are
taken at the equivalent scaled ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

PAPER_POPULATION = 100_000


@dataclass
class CalibrationTargets:
    """Headline rates the generator aims for (2020 snapshot, top-100K).

    Values come straight from the paper's Sections 3-5; see DESIGN.md §5
    for provenance. The provider-population counts (``n_cdns``/``n_cas``)
    directly size the generated markets; the percentage fields document
    the targets the hand-tuned rank curves in
    :mod:`repro.worldgen.rankmodel` were calibrated to land on (validated
    by the integration tests), rather than being read at generation time.
    """

    # website -> DNS (fractions of all websites)
    dns_third_party: float = 0.89
    dns_third_party_top100: float = 0.49
    dns_critical: float = 0.85
    dns_critical_top100: float = 0.28

    # website -> CDN
    cdn_usage: float = 0.332
    cdn_usage_2016: float = 0.284
    cdn_third_party_of_users: float = 0.976
    cdn_critical_of_users: float = 0.85
    cdn_critical_of_users_top100: float = 0.43

    # website -> CA
    https_adoption: float = 0.78
    https_adoption_2016: float = 0.465
    ca_third_party_of_https: float = 0.77
    ca_third_party_of_https_top100: float = 0.71
    ocsp_stapling_of_https: float = 0.17

    # population sizes of the provider markets
    n_cdns: int = 86
    n_cas: int = 59
    n_cdns_2016: int = 47
    n_cas_2016: int = 70


@dataclass
class WorldConfig:
    """Everything that controls one generated world."""

    n_websites: int = 10_000
    seed: int = 42
    year: int = 2020
    include_corner_cases: bool = True
    targets: CalibrationTargets = field(default_factory=CalibrationTargets)
    # Long-tail DNS providers scale with population so concentration CDFs
    # keep their shape at any N.
    tail_dns_providers_per_1k_sites: float = 12.0
    tail_dns_providers_per_1k_sites_2016: float = 40.0

    def __post_init__(self) -> None:
        if self.n_websites < 100:
            raise ValueError("worlds below 100 websites are too noisy to use")
        if not 2016 <= self.year <= 2020:
            raise ValueError(
                "snapshot years span the paper's 2016-2020 window; "
                "intermediate years come from repro.worldgen.timeline"
            )

    @property
    def rank_scale(self) -> float:
        """Multiplier from generated rank to equivalent paper rank."""
        return PAPER_POPULATION / self.n_websites

    def effective_rank(self, rank: int) -> float:
        """The paper-scale rank a generated rank stands for."""
        return rank * self.rank_scale

    def scaled_bucket(self, paper_bucket: int) -> int:
        """Generated-world size of a paper rank bucket (k=100 → N/1000...)."""
        return max(1, round(paper_bucket / self.rank_scale))
