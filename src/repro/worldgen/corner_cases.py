"""The paper's named corner cases, wired explicitly.

Every anecdote Section 3-5 uses to motivate or stress the classification
heuristics exists in the generated world with the same structure:

* youtube.com — nameservers under google.com (alias entity; SAN rescues it),
* yahoo.com — private CDN on yimg.com (TLD mismatch; SAN rescues it),
* instagram.com — Facebook CDN, AWS SOA (SOA-matching false positive),
* twitter.com — Dyn with the provider's SOA (SOA false negative), private
  CDN (twimg) on third-party DNS,
* amazon.com — Dyn + UltraDNS redundancy with its *own* SOA,
* godaddy.com / microsoft.com / xbox.com — private CA that itself rides
  third-party infrastructure,
* academia.edu — MaxCDN, which uses AWS DNS (the intro's example),
* the Table 3-5 movers (espn, flickr, twitch, walmart, fiverr, paypal,
  imdb, ebay, dropbox, wordpress, microsoft, naver...).

``apply_corner_cases(spec, year)`` overwrites the randomly-drawn specs for
these domains with their year-appropriate ground truth and pins them so the
evolution step's random quotas skip them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.worldgen.spec import (
    PRIVATE,
    CdnSpec,
    DnsSetup,
    SnapshotSpec,
    WebsiteSpec,
)

#: Domains whose specs are hand-wired; the evolution step must not touch
#: them with random transitions.
PINNED_DOMAINS: set[str] = set()


def private_cdn_specs(year: int, dns_entities: dict[str, str]) -> list[CdnSpec]:
    """Corner-case private CDNs that appear in the CNAME→CDN map."""
    specs = [
        CdnSpec(
            key="facebook-cdn", display="Facebook CDN", entity="facebook.com",
            cname_suffixes=("fbcdn.net",), share_weight=0.0,
            # Facebook CDN uses Facebook DNS (its SOA says so) — private.
            dns=DnsSetup(providers=[PRIVATE], soa_masked=False),
        ),
        CdnSpec(
            key="yahoo-cdn", display="Yahoo private CDN", entity="yahoo.com",
            cname_suffixes=("yimg.com",), share_weight=0.0,
            dns=DnsSetup(providers=[PRIVATE], soa_masked=False),
        ),
        CdnSpec(
            key="twitter-cdn", display="Twitter private CDN", entity="twitter.com",
            cname_suffixes=("twimg.com",), share_weight=0.0,
            # The private CDN itself rides third-party DNS (Section 5.3's
            # "290 additional websites... include twitter.com").
            dns=DnsSetup(providers=["dyn"]),
        ),
        CdnSpec(
            key="airbnb-cdn", display="Airbnb private CDN", entity="airbnb.com",
            cname_suffixes=("airbnb-assets.net",), share_weight=0.0,
            dns=DnsSetup(providers=["aws-dns"]),
        ),
        CdnSpec(
            key="squarespace-cdn", display="Squarespace private CDN",
            entity="squarespace.com",
            cname_suffixes=("sqsp-assets.net",), share_weight=0.0,
            dns=DnsSetup(providers=["aws-dns"]),
        ),
    ]
    return specs


@dataclass
class _Case:
    """Year-dependent override for one pinned domain."""

    entity: Optional[str] = None
    dns_2016: Optional[DnsSetup] = None
    dns_2020: Optional[DnsSetup] = None
    cdns_2016: Optional[list[str]] = None
    cdns_2020: Optional[list[str]] = None
    https_2016: Optional[bool] = None
    https_2020: Optional[bool] = None
    ca_2016: Optional[str] = None
    ca_2020: Optional[str] = None
    stapled_2016: Optional[bool] = None
    stapled_2020: Optional[bool] = None
    alias_sans: tuple[str, ...] = ()
    internal_alias_domain: Optional[str] = None
    external_domains: list[str] = field(default_factory=list)


def _own(masked: bool = False) -> DnsSetup:
    return DnsSetup(providers=[PRIVATE], soa_masked=masked)


_CASES: dict[str, _Case] = {
    # -- the big platform owners ------------------------------------------
    "google.com": _Case(
        entity="google",
        dns_2016=_own(), dns_2020=_own(),
        https_2016=True, https_2020=True,
        ca_2016=PRIVATE, ca_2020="google-trust",  # GTS is Google's own entity
        stapled_2016=True, stapled_2020=True,
        cdns_2016=[], cdns_2020=[],
        alias_sans=("*.google.com", "youtube.com", "*.youtube.com"),
    ),
    "youtube.com": _Case(
        entity="google",
        # Nameservers are *.google.com: a TLD mismatch that the SAN list
        # resolves (Section 3.1's youtube example).
        dns_2016=_own(), dns_2020=_own(),
        https_2016=True, https_2020=True,
        ca_2016=PRIVATE, ca_2020="google-trust",
        stapled_2016=True, stapled_2020=True,
        cdns_2016=[], cdns_2020=[],
        alias_sans=("*.google.com", "google.com"),
    ),
    "facebook.com": _Case(
        entity="facebook",
        dns_2016=_own(), dns_2020=_own(),
        https_2016=True, https_2020=True,
        ca_2016="digicert", ca_2020="digicert",
        stapled_2016=True, stapled_2020=True,
        cdns_2016=["facebook-cdn"], cdns_2020=["facebook-cdn"],
        alias_sans=("*.facebook.com", "*.fbcdn.net"),
        internal_alias_domain="fbcdn.net",
    ),
    "instagram.com": _Case(
        entity="facebook",
        # Third-party DNS whose SOA (AWS) differs from its private CDN's
        # SOA (Facebook DNS): the Section 3.3 SOA false positive.
        dns_2016=DnsSetup(providers=["aws-dns"]),
        dns_2020=DnsSetup(providers=["aws-dns"]),
        https_2016=True, https_2020=True,
        ca_2016="digicert", ca_2020="digicert",
        stapled_2016=False, stapled_2020=False,
        cdns_2016=["facebook-cdn"], cdns_2020=["facebook-cdn"],
        alias_sans=("*.instagram.com", "*.fbcdn.net"),
        internal_alias_domain="fbcdn.net",
    ),
    "yahoo.com": _Case(
        entity="yahoo",
        dns_2016=_own(), dns_2020=_own(),
        https_2016=True, https_2020=True,
        ca_2016="digicert", ca_2020="digicert",
        stapled_2016=False, stapled_2020=False,
        cdns_2016=["yahoo-cdn"], cdns_2020=["yahoo-cdn"],
        alias_sans=("*.yahoo.com", "*.yimg.com"),
        internal_alias_domain="yimg.com",
    ),
    "amazon.com": _Case(
        entity="amazon",
        # Two third-party DNS providers and its own SOA: the case where
        # plain SOA matching *works* (Section 3.1).
        dns_2016=DnsSetup(providers=["dyn", "ultradns"], soa_masked=False),
        dns_2020=DnsSetup(providers=["dyn", "ultradns"], soa_masked=False),
        https_2016=True, https_2020=True,
        ca_2016="symantec", ca_2020="amazon-ca",
        stapled_2016=False, stapled_2020=False,
        cdns_2016=["cloudfront"], cdns_2020=["cloudfront"],
    ),
    "microsoft.com": _Case(
        entity="microsoft",
        dns_2016=_own(), dns_2020=_own(),
        https_2016=True, https_2020=True,
        # Private CA that itself uses a third-party CDN (Section 5.2), and
        # one of the paper's stapling droppers (Table 5).
        ca_2016="microsoft-ca", ca_2020="microsoft-ca",
        stapled_2016=True, stapled_2020=False,
        cdns_2016=["azure-cdn"], cdns_2020=["azure-cdn"],
    ),
    "xbox.com": _Case(
        entity="microsoft",
        dns_2016=_own(), dns_2020=_own(),
        https_2016=True, https_2020=True,
        ca_2016="microsoft-ca", ca_2020="microsoft-ca",
        stapled_2016=False, stapled_2020=False,
        cdns_2016=["azure-cdn"], cdns_2020=["azure-cdn"],
        alias_sans=("*.xbox.com", "*.microsoft.com"),
    ),
    # -- Dyn incident cast --------------------------------------------------
    "twitter.com": _Case(
        entity="twitter.com",
        # Critically on Dyn in 2016 — with Dyn's SOA on the zone, the trap
        # that breaks SOA-only classification; redundant by 2020 (and the
        # SOA reclaimed along with the private leg, so the redundancy is
        # observable, as the paper reports in Section 4).
        dns_2016=DnsSetup(providers=["dyn"], soa_masked=True),
        dns_2020=DnsSetup(providers=["dyn", PRIVATE], soa_masked=False),
        https_2016=True, https_2020=True,
        ca_2016="digicert", ca_2020="digicert",
        stapled_2016=False, stapled_2020=False,
        cdns_2016=["twitter-cdn"], cdns_2020=["twitter-cdn"],
        alias_sans=("*.twitter.com", "*.twimg.com"),
        internal_alias_domain="twimg.com",
    ),
    "spotify.com": _Case(
        entity="spotify.com",
        dns_2016=DnsSetup(providers=["dyn"]),
        dns_2020=DnsSetup(providers=["dyn", "aws-dns"]),
        https_2016=True, https_2020=True,
        ca_2016="digicert", ca_2020="digicert",
        stapled_2016=False, stapled_2020=False,
        cdns_2016=["fastly"], cdns_2020=["fastly", "cloudfront"],
    ),
    "netflix.com": _Case(
        entity="netflix.com",
        dns_2016=DnsSetup(providers=["dyn"]),
        dns_2020=DnsSetup(providers=["aws-dns", "ultradns"]),
        https_2016=True, https_2020=True,
        # The intro's example: Netflix uses Symantec, which rides
        # third-party DNS.
        ca_2016="symantec", ca_2020="digicert",
        stapled_2016=False, stapled_2020=False,
        cdns_2016=[], cdns_2020=[],  # Open Connect: private, not CNAMEd
    ),
    "pinterest.com": _Case(
        entity="pinterest.com",
        dns_2016=DnsSetup(providers=["aws-dns"]),
        dns_2020=DnsSetup(providers=["aws-dns"]),
        https_2016=True, https_2020=True,
        ca_2016="digicert", ca_2020="digicert",
        stapled_2016=False, stapled_2020=False,
        # Unreachable during the Dyn incident *through Fastly* (indirect).
        cdns_2016=["fastly"], cdns_2020=["fastly"],
    ),
    # -- the CA-side anecdotes ---------------------------------------------
    "godaddy.com": _Case(
        entity="godaddy",
        dns_2016=_own(), dns_2020=_own(),
        https_2016=True, https_2020=True,
        # Private CA... whose revocation endpoints ride Akamai DNS/CDN.
        ca_2016="godaddy-ca", ca_2020="godaddy-ca",
        stapled_2016=False, stapled_2020=False,
        cdns_2016=[], cdns_2020=[],
        alias_sans=("*.godaddy.com", "gdpki.com", "*.gdpki.com"),
    ),
    "academia.edu": _Case(
        entity="academia.edu",
        dns_2016=DnsSetup(providers=["dnsmadeeasy"]),
        dns_2020=DnsSetup(providers=["dnsmadeeasy"]),
        https_2016=True, https_2020=True,
        ca_2016="sectigo", ca_2020="sectigo",
        stapled_2016=False, stapled_2020=False,
        # The intro's example: MaxCDN, which depends on AWS DNS.
        cdns_2016=["maxcdn"], cdns_2020=["maxcdn"],
    ),
    # -- private-CDN-on-third-party-DNS set (Section 5.3) -------------------
    "airbnb.com": _Case(
        entity="airbnb.com",
        dns_2016=DnsSetup(providers=["aws-dns"]),
        dns_2020=DnsSetup(providers=["aws-dns"]),
        https_2016=True, https_2020=True,
        ca_2016="digicert", ca_2020="digicert",
        stapled_2016=False, stapled_2020=False,
        cdns_2016=["airbnb-cdn"], cdns_2020=["airbnb-cdn"],
        alias_sans=("*.airbnb.com", "*.airbnb-assets.net"),
        internal_alias_domain="airbnb-assets.net",
    ),
    "squarespace.com": _Case(
        entity="squarespace.com",
        dns_2016=DnsSetup(providers=["cloudflare"]),
        dns_2020=DnsSetup(providers=["cloudflare"]),
        https_2016=True, https_2020=True,
        ca_2016="sectigo", ca_2020="letsencrypt",
        stapled_2016=False, stapled_2020=False,
        cdns_2016=["squarespace-cdn"], cdns_2020=["squarespace-cdn"],
        alias_sans=("*.squarespace.com", "*.sqsp-assets.net"),
        internal_alias_domain="sqsp-assets.net",
    ),
    # -- Table 3 movers ------------------------------------------------------
    "espn.com": _Case(
        entity="espn.com",
        dns_2016=_own(), dns_2020=DnsSetup(providers=["aws-dns"]),
        https_2016=True, https_2020=True,
        ca_2016="digicert", ca_2020="digicert",
        stapled_2016=False, stapled_2020=False,
        cdns_2016=["akamai"], cdns_2020=["akamai"],
    ),
    "flickr.com": _Case(
        entity="flickr.com",
        dns_2016=_own(), dns_2020=DnsSetup(providers=["cloudflare"]),
        https_2016=True, https_2020=True,
        ca_2016="digicert", ca_2020="digicert",
        stapled_2016=False, stapled_2020=False,
        cdns_2016=["fastly"], cdns_2020=["fastly"],
    ),
    # -- Table 4 movers ------------------------------------------------------
    "twitch.tv": _Case(
        entity="amazon",
        dns_2016=DnsSetup(providers=["aws-dns"]),
        dns_2020=DnsSetup(providers=["aws-dns"]),
        https_2016=True, https_2020=True,
        ca_2016="digicert", ca_2020="amazon-ca",
        stapled_2016=False, stapled_2020=False,
        cdns_2016=["cloudfront", "akamai"], cdns_2020=["cloudfront"],
    ),
    "walmart.com": _Case(
        entity="walmart.com",
        dns_2016=DnsSetup(providers=["akamai-dns", "ultradns"]),
        dns_2020=DnsSetup(providers=["akamai-dns", "ultradns"]),
        https_2016=True, https_2020=True,
        ca_2016="globalsign", ca_2020="digicert",
        stapled_2016=False, stapled_2020=False,
        cdns_2016=["akamai", "fastly"], cdns_2020=["akamai"],
    ),
    "fiverr.com": _Case(
        entity="fiverr.com",
        dns_2016=DnsSetup(providers=["aws-dns"]),
        dns_2020=DnsSetup(providers=["aws-dns"]),
        https_2016=True, https_2020=True,
        ca_2016="sectigo", ca_2020="digicert",
        stapled_2016=False, stapled_2020=False,
        cdns_2016=["cloudfront", "fastly"], cdns_2020=["cloudfront"],
    ),
    "paypal.com": _Case(
        entity="paypal.com",
        dns_2016=DnsSetup(providers=["ultradns"]),
        dns_2020=DnsSetup(providers=["ultradns", "dyn"]),
        https_2016=True, https_2020=True,
        ca_2016="symantec", ca_2020="digicert",
        stapled_2016=False, stapled_2020=False,
        cdns_2016=["akamai"], cdns_2020=["akamai", "cloudfront"],
    ),
    "imdb.com": _Case(
        entity="amazon",
        dns_2016=DnsSetup(providers=["dyn", "ultradns"]),
        dns_2020=DnsSetup(providers=["aws-dns"]),
        https_2016=True, https_2020=True,
        ca_2016="symantec", ca_2020="amazon-ca",
        stapled_2016=False, stapled_2020=False,
        cdns_2016=["cloudfront"], cdns_2020=["cloudfront", "akamai"],
    ),
    "ebay.com": _Case(
        entity="ebay.com",
        dns_2016=DnsSetup(providers=["ultradns"]),
        dns_2020=DnsSetup(providers=["ultradns"]),
        https_2016=True, https_2020=True,
        ca_2016="symantec", ca_2020="digicert",
        stapled_2016=False, stapled_2020=False,
        cdns_2016=["edgecast"], cdns_2020=["edgecast", "akamai"],
    ),
    # -- Table 5 movers (stapling) -------------------------------------------
    "dropbox.com": _Case(
        entity="dropbox.com",
        dns_2016=_own(), dns_2020=_own(),
        https_2016=True, https_2020=True,
        ca_2016="digicert", ca_2020="digicert",
        stapled_2016=True, stapled_2020=False,
        cdns_2016=["akamai"], cdns_2020=["cloudflare-cdn"],
    ),
    "wordpress.com": _Case(
        entity="wordpress.com",
        dns_2016=_own(), dns_2020=_own(),
        https_2016=True, https_2020=True,
        ca_2016="sectigo", ca_2020="letsencrypt",
        stapled_2016=True, stapled_2020=False,
        cdns_2016=[], cdns_2020=[],
    ),
    "naver.com": _Case(
        entity="naver.com",
        dns_2016=_own(), dns_2020=_own(),
        https_2016=True, https_2020=True,
        ca_2016="digicert", ca_2020="digicert",
        stapled_2016=True, stapled_2020=True,
        cdns_2016=[], cdns_2020=["akamai"],
    ),
    "theguardian.com": _Case(
        entity="theguardian.com",
        # The Guardian's documented Dyn + Route 53 dual setup [23].
        dns_2016=DnsSetup(providers=["dyn", "aws-dns"]),
        dns_2020=DnsSetup(providers=["dyn", "aws-dns"]),
        https_2016=True, https_2020=True,
        ca_2016="globalsign", ca_2020="globalsign",
        stapled_2016=False, stapled_2020=False,
        cdns_2016=["fastly"], cdns_2020=["fastly"],
    ),
    "soundcloud.com": _Case(
        entity="soundcloud.com",
        dns_2016=DnsSetup(providers=["aws-dns"]),
        dns_2020=DnsSetup(providers=["aws-dns"]),
        https_2016=True, https_2020=True,
        # A GlobalSign revocation-incident victim (Section 2).
        ca_2016="globalsign", ca_2020="globalsign",
        stapled_2016=False, stapled_2020=False,
        cdns_2016=["edgecast"], cdns_2020=["cloudfront"],
    ),
    "wikipedia.org": _Case(
        entity="wikimedia",
        dns_2016=_own(), dns_2020=_own(),
        https_2016=True, https_2020=True,
        ca_2016="globalsign", ca_2020="letsencrypt",
        stapled_2016=True, stapled_2020=True,
        cdns_2016=[], cdns_2020=[],
    ),
}

PINNED_DOMAINS.update(_CASES)


def apply_corner_cases(spec: SnapshotSpec, year: int) -> None:
    """Overwrite pinned domains' specs with their hand-wired ground truth."""
    by_domain = spec.website_by_domain()
    for domain, case in _CASES.items():
        website = by_domain.get(domain)
        if website is None:
            continue
        _apply(website, case, year)


def _pick(year: int, v2016, v2020):
    return v2016 if year < 2020 else v2020


def _apply(website: WebsiteSpec, case: _Case, year: int) -> None:
    if case.entity is not None:
        website.entity = case.entity
    dns = _pick(year, case.dns_2016, case.dns_2020)
    if dns is not None:
        website.dns = dns.copy()
    cdns = _pick(year, case.cdns_2016, case.cdns_2020)
    if cdns is not None:
        website.cdns = list(cdns)
    https = _pick(year, case.https_2016, case.https_2020)
    if https is not None:
        website.https = https
    ca = _pick(year, case.ca_2016, case.ca_2020)
    if ca is not None:
        website.ca_key = ca if website.https else None
    stapled = _pick(year, case.stapled_2016, case.stapled_2020)
    if stapled is not None:
        website.ocsp_stapled = stapled and website.https
    website.alias_sans = case.alias_sans
    website.internal_alias_domain = case.internal_alias_domain
    if case.external_domains:
        website.external_resource_domains = list(case.external_domains)
