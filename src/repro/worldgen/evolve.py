"""Evolving the 2016 snapshot into 2020.

Per-website transitions are applied as *quotas per rank annulus*, derived
from the cumulative per-bucket percentages the paper reports in Tables 3,
4 and 5 — so the comparison analysis reproduces those tables by
construction, and the 2020 headline aggregates (+4.7% DNS critical
dependency etc.) follow, exactly as they do in the paper.

Provider *markets* also evolve: kept customers are re-balanced towards the
2020 market shares (Dyn's post-attack exodus, Symantec's absorption into
DigiCert, Let's Encrypt's rise), and the provider population itself is
rebuilt from the catalog's 2020 fields (Tables 6-9 come from that).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.worldgen import rankmodel
from repro.worldgen.alexa import AlexaList, ListChurn, churn_2016_to_2020
from repro.worldgen.config import WorldConfig
from repro.worldgen.corner_cases import PINNED_DOMAINS, apply_corner_cases
from repro.worldgen.generate import (
    build_ca_market,
    build_cdn_market,
    build_dns_market,
    generate_websites,
)
from repro.worldgen.spec import (
    PRIVATE,
    DnsSetup,
    SnapshotSpec,
    WebsiteSpec,
)

_PAPER_BUCKETS = (100, 1_000, 10_000, 100_000)


@dataclass(frozen=True)
class CumulativeRates:
    """A table row: percentage of websites in each cumulative top-k bucket."""

    k100: float
    k1k: float
    k10k: float
    k100k: float

    def annulus_rates(self) -> tuple[float, ...]:
        """Convert cumulative bucket percentages to per-annulus percentages.

        Annuli: (0,100], (100,1K], (1K,10K], (10K,100K]. Negative values
        (possible when a rate falls with k) clamp to zero.
        """
        cums = (self.k100, self.k1k, self.k10k, self.k100k)
        rates = []
        prev_k = 0
        prev_total = 0.0
        for k, cum in zip(_PAPER_BUCKETS, cums):
            total = cum * k / 100.0  # affected-site count at paper scale
            width = k - prev_k
            rates.append(max(0.0, (total - prev_total) / width * 100.0))
            prev_k, prev_total = k, total
        return tuple(rates)


# Table 3: website -> DNS trends (percent of websites per bucket).
DNS_PVT_TO_SINGLE_THIRD = CumulativeRates(0.0, 7.4, 9.8, 10.7)
DNS_SINGLE_THIRD_TO_PVT = CumulativeRates(1.0, 1.6, 4.2, 6.0)
DNS_RED_TO_NO_RED = CumulativeRates(1.0, 1.6, 1.0, 0.5)
DNS_NO_RED_TO_RED = CumulativeRates(2.0, 1.9, 1.1, 0.5)

# Table 4: website -> CDN trends (percent of CDN-using websites per bucket).
CDN_PVT_TO_SINGLE_THIRD = CumulativeRates(0.0, 0.3, 0.8, 0.5)
CDN_RED_TO_NO_RED = CumulativeRates(3.0, 2.7, 1.2, 1.1)
CDN_NO_RED_TO_RED = CumulativeRates(9.0, 6.8, 3.0, 1.6)

# Table 5: website -> CA stapling trends (percent of 2016-HTTPS websites).
CA_STAPLE_TO_NONE = CumulativeRates(7.5, 6.2, 9.1, 9.7)
CA_NONE_TO_STAPLE = CumulativeRates(3.7, 14.7, 12.9, 9.9)

# Section 4.1 adoption numbers (fractions of the 2016 population). The
# paper reports 18.6% adoption on the 2016 list but 33.2% total CDN usage
# on the 2020 list; one population cannot show both, and the Table 1 /
# Figure 3 headline (33.2%) wins — so adoption is scaled down accordingly.
CDN_ADOPTION_RATE = 0.132
CDN_ABANDON_RATE = 0.068
# The paper reports 78% HTTPS on the 2020 list (Table 1) and 69,725 HTTPS
# sites among 2016-list survivors (Table 2); one population cannot show
# both, so the Table 1 figure wins (EXPERIMENTS.md notes the deviation).
HTTPS_TARGET_2020 = 0.78
NEW_HTTPS_STAPLING_RATE = 0.119


def _annulus_of(eff_rank: float) -> Optional[int]:
    """Bucket index for an effective rank, or ``None`` beyond top-100K.

    The paper's tables only describe the top 100K; sites a small world's
    ``rank_scale`` pushes past that boundary belong to no annulus and must
    not inflate the (10K,100K] quota base.
    """
    for i, k in enumerate(_PAPER_BUCKETS):
        if eff_rank <= k:
            return i
    return None


def _apply_quota(
    websites: list[WebsiteSpec],
    config: WorldConfig,
    rates: CumulativeRates,
    eligible: Callable[[WebsiteSpec], bool],
    action: Callable[[WebsiteSpec], Optional[bool]],
    rng: random.Random,
    base: Optional[Callable[[WebsiteSpec], bool]] = None,
) -> int:
    """Apply ``action`` to a quota of eligible websites per annulus.

    The quota is ``annulus_rate x (number of base-population websites in
    the annulus)``; ``base`` defaults to everyone. Pinned corner-case
    domains are never selected (their transitions are hand-wired), and
    sites whose effective rank falls outside the paper's top-100K buckets
    are excluded from both the base counts and the candidate pools. An
    action may decline a site by returning ``False``; declined sites do
    not consume quota and the next shuffled candidate is tried instead.
    """
    annulus_rates = rates.annulus_rates()
    by_annulus: dict[int, list[WebsiteSpec]] = {i: [] for i in range(4)}
    base_counts = {i: 0 for i in range(4)}
    for website in websites:
        annulus = _annulus_of(config.effective_rank(website.rank))
        if annulus is None:
            continue
        if base is None or base(website):
            base_counts[annulus] += 1
        if website.domain in PINNED_DOMAINS:
            continue
        if eligible(website):
            by_annulus[annulus].append(website)
    applied = 0
    for annulus, candidates in by_annulus.items():
        quota = round(annulus_rates[annulus] / 100.0 * base_counts[annulus])
        rng.shuffle(candidates)
        taken = 0
        for website in candidates:
            if taken >= quota:
                break
            if action(website) is False:
                continue
            taken += 1
            applied += 1
    return applied


def _market_weights(market: dict, eff_rank: float) -> tuple[list[str], list[float]]:
    keys = [k for k, spec in market.items() if spec.share_weight > 0]
    weights = [
        rankmodel.biased_weight(
            market[k].share_weight, getattr(market[k], "top_bias", 1.0), eff_rank
        )
        for k in keys
    ]
    return keys, weights


def _rebalance_market(
    websites: list[WebsiteSpec],
    market_2020: dict,
    rng: random.Random,
    get_keys: Callable[[WebsiteSpec], list[str]],
    set_key: Callable[[WebsiteSpec, int, str], None],
    tolerance: float = 0.0,
) -> None:
    """Move kept customers so provider marginals match the 2020 shares.

    Two-sided: over-target providers (Dyn after the attack, Symantec after
    the acquisition, the fat 2016 DNS tail) shed the excess; the shed
    customers re-draw weighted by each under-target provider's *deficit*,
    so the 2020 composition lands on the catalog's 2020 shares. Only the
    provider identity changes — setup shape (redundancy, criticality) is
    preserved, keeping the Table 3-5 quotas intact.

    ``tolerance`` widens each provider's target into a dead-band of
    ``tolerance x sqrt(target)`` slots. The one-shot evolution runs with 0
    (exact landing). Epoch-by-epoch timelines pass ~1: each epoch's
    newcomer and quota draws perturb the marginals by sampling noise of
    exactly that order, and without the band the rebalance would churn
    O(sqrt(n)) customers per epoch merely undoing it — movement that no
    longer scales with the per-epoch drift.
    """
    slots: list[tuple[WebsiteSpec, int, str]] = []
    for website in websites:
        if website.domain in PINNED_DOMAINS:
            continue
        for i, key in enumerate(get_keys(website)):
            if key != PRIVATE:
                slots.append((website, i, key))
    if not slots:
        return
    total_weight = sum(
        spec.share_weight for spec in market_2020.values() if spec.share_weight > 0
    )
    if total_weight <= 0:
        return
    targets = {
        key: spec.share_weight / total_weight * len(slots)
        for key, spec in market_2020.items()
        if spec.share_weight > 0
    }
    counts: dict[str, int] = {}
    for _, _, key in slots:
        counts[key] = counts.get(key, 0) + 1

    def slack(target: float) -> float:
        return tolerance * math.sqrt(max(1.0, target))

    movers: list[tuple[WebsiteSpec, int]] = []
    for website, i, key in slots:
        target = targets.get(key, 0.0)
        ceiling = target + slack(target)
        current = counts.get(key, 0)
        if current <= ceiling:
            continue
        if rng.random() < (current - ceiling) / current:
            movers.append((website, i))
            counts[key] = counts.get(key, 0) - 1  # approximate live count

    deficits = {
        key: max(0.0, target - slack(target) - counts.get(key, 0))
        for key, target in targets.items()
    }
    deficit_keys = [k for k, d in deficits.items() if d > 0]
    if not deficit_keys:
        return
    for website, i in movers:
        current_keys = set(get_keys(website))
        choices = [
            k for k in deficit_keys
            if deficits[k] > 0 and k not in current_keys
        ]
        if not choices:
            continue
        weights = [deficits[k] for k in choices]
        new_key = rankmodel.weighted_choice(rng, choices, weights)
        set_key(website, i, new_key)
        deficits[new_key] = max(0.0, deficits[new_key] - 1)
        if deficits[new_key] == 0:
            deficit_keys = [k for k in deficit_keys if deficits[k] > 0]
            if not deficit_keys:
                break


def evolve_to_2020(
    spec_2016: SnapshotSpec, config: WorldConfig
) -> tuple[SnapshotSpec, ListChurn]:
    """Produce the 2020 snapshot (and the list churn) from the 2016 one."""
    rng = random.Random(config.seed + 2020)
    alexa_2016 = AlexaList(
        year=2016, domains=[w.domain for w in spec_2016.websites]
    )
    alexa_2020, churn = churn_2016_to_2020(alexa_2016, rng)

    dns_market = build_dns_market(config, 2020, rng)
    cdn_market = build_cdn_market(config, 2020, dns_market, rng)
    ca_market = build_ca_market(config, 2020, dns_market, cdn_market, rng)

    survivors = {
        w.domain: w.copy()
        for w in spec_2016.websites
        if w.domain not in set(churn.dead)
    }
    rank_2020 = {domain: i + 1 for i, domain in enumerate(alexa_2020.domains)}
    evolved: list[WebsiteSpec] = []
    for domain in alexa_2020.domains:
        if domain in survivors:
            website = survivors[domain]
            website.rank = rank_2020[domain]
            evolved.append(website)
    _apply_website_transitions(evolved, config, dns_market, cdn_market, ca_market, rng)

    # Newcomers are drawn fresh with the 2020 curves.
    newcomer_list = AlexaList(year=2020, domains=list(churn.newcomers))
    newcomer_specs = generate_websites(
        config, newcomer_list, 2020, dns_market, cdn_market, ca_market, rng
    )
    for website in newcomer_specs:
        website.rank = rank_2020[website.domain]
        evolved.append(website)
    evolved.sort(key=lambda w: w.rank)

    spec_2020 = SnapshotSpec(
        year=2020,
        websites=evolved,
        dns_providers=dns_market,
        cdns=cdn_market,
        cas=ca_market,
    )
    if config.include_corner_cases:
        apply_corner_cases(spec_2020, 2020)
    _sanitize_against_market(spec_2020, rng, config)
    return spec_2020, churn


def _scaled(rates: CumulativeRates, factor: float) -> CumulativeRates:
    """Scale a table row, e.g. to spread it across several epochs."""
    return CumulativeRates(
        rates.k100 * factor,
        rates.k1k * factor,
        rates.k10k * factor,
        rates.k100k * factor,
    )


def _apply_website_transitions(
    websites: list[WebsiteSpec],
    config: WorldConfig,
    dns_market: dict,
    cdn_market: dict,
    ca_market: dict,
    rng: random.Random,
    *,
    rate_scale: float = 1.0,
    https_target: float = HTTPS_TARGET_2020,
    rebalance_tolerance: float = 0.0,
) -> None:
    def draw_dns(website: WebsiteSpec) -> str:
        eff = config.effective_rank(website.rank)
        keys, weights = _market_weights(dns_market, eff)
        return rankmodel.weighted_choice(rng, keys, weights)

    def draw_cdn(website: WebsiteSpec, exclude: list[str]) -> Optional[str]:
        eff = config.effective_rank(website.rank)
        keys, weights = _market_weights(cdn_market, eff)
        choices = [(k, w) for k, w in zip(keys, weights) if k not in exclude]
        if not choices:
            return None
        return rankmodel.weighted_choice(
            rng, [c[0] for c in choices], [c[1] for c in choices]
        )

    def scaled(rates: CumulativeRates) -> CumulativeRates:
        return _scaled(rates, rate_scale)

    # ---- Table 3: DNS setup transitions --------------------------------
    _apply_quota(
        websites, config, scaled(DNS_PVT_TO_SINGLE_THIRD),
        eligible=lambda w: not w.dns.uses_third_party,
        action=lambda w: setattr(w, "dns", DnsSetup(providers=[draw_dns(w)])),
        rng=rng,
    )
    _apply_quota(
        websites, config, scaled(DNS_SINGLE_THIRD_TO_PVT),
        eligible=lambda w: w.dns.is_critical,
        action=lambda w: setattr(
            w, "dns", DnsSetup(providers=[PRIVATE], soa_masked=False)
        ),
        rng=rng,
    )
    _apply_quota(
        websites, config, scaled(DNS_RED_TO_NO_RED),
        eligible=lambda w: w.dns.is_redundant and w.dns.uses_third_party,
        action=lambda w: setattr(
            w, "dns",
            DnsSetup(providers=[w.dns.third_party_providers[0]],
                     soa_masked=w.dns.soa_masked),
        ),
        rng=rng,
    )
    def add_redundancy(website: WebsiteSpec) -> None:
        extra = PRIVATE if rng.random() < 0.5 else draw_dns(website)
        website.dns = DnsSetup(
            providers=[*website.dns.providers, extra],
            soa_masked=website.dns.soa_masked,
        )

    _apply_quota(
        websites, config, scaled(DNS_NO_RED_TO_RED),
        eligible=lambda w: w.dns.is_critical,
        action=add_redundancy,
        rng=rng,
    )
    _rebalance_market(
        websites, dns_market, rng,
        get_keys=lambda w: w.dns.providers,
        set_key=lambda w, i, k: w.dns.providers.__setitem__(i, k),
        tolerance=rebalance_tolerance,
    )

    # ---- CDN adoption / abandonment / Table 4 ---------------------------
    def adopt_cdn(website: WebsiteSpec) -> None:
        choice = draw_cdn(website, exclude=[])
        if choice is not None:
            website.cdns = [choice]

    _apply_quota(
        websites, config,
        CumulativeRates(*(CDN_ADOPTION_RATE * rate_scale * 100,) * 4),
        eligible=lambda w: not w.uses_cdn,
        action=adopt_cdn,
        rng=rng,
    )
    _apply_quota(
        websites, config,
        CumulativeRates(*(CDN_ABANDON_RATE * rate_scale * 100,) * 4),
        eligible=lambda w: w.uses_cdn,
        action=lambda w: setattr(w, "cdns", []),
        rng=rng,
    )

    def cdn_user(w: WebsiteSpec) -> bool:
        """Base population for the CDN migration quotas below."""
        return w.uses_cdn

    _apply_quota(
        websites, config, scaled(CDN_PVT_TO_SINGLE_THIRD),
        eligible=lambda w: w.cdns == [PRIVATE],
        action=adopt_cdn,
        rng=rng,
        base=cdn_user,
    )
    _apply_quota(
        websites, config, scaled(CDN_RED_TO_NO_RED),
        eligible=lambda w: len(set(w.cdns)) > 1,
        action=lambda w: setattr(w, "cdns", [w.cdns[0]]),
        rng=rng,
        base=cdn_user,
    )
    def add_cdn_redundancy(website: WebsiteSpec) -> Optional[bool]:
        # A site whose CDN market has nothing new to offer cannot gain
        # redundancy — decline so the quota goes to the next candidate
        # instead of being burnt on a duplicate entry.
        choice = draw_cdn(website, exclude=website.cdns)
        if choice is None:
            return False
        website.cdns.append(choice)
        return True

    _apply_quota(
        websites, config, scaled(CDN_NO_RED_TO_RED),
        eligible=lambda w: w.cdn_is_critical,
        action=add_cdn_redundancy,
        rng=rng,
        base=cdn_user,
    )
    _rebalance_market(
        websites, cdn_market, rng,
        get_keys=lambda w: w.cdns,
        set_key=lambda w, i, k: w.cdns.__setitem__(i, k),
        tolerance=rebalance_tolerance,
    )

    # ---- HTTPS adoption and Table 5 stapling -----------------------------
    def adopt_https(website: WebsiteSpec) -> None:
        eff = config.effective_rank(website.rank)
        website.https = True
        if rng.random() < rankmodel.p_private_ca_given_https(eff):
            website.ca_key = PRIVATE
        else:
            keys = list(ca_market)
            weights = [c.share_weight for c in ca_market.values()]
            website.ca_key = rankmodel.weighted_choice(rng, keys, weights)
        website.ocsp_stapled = rng.random() < NEW_HTTPS_STAPLING_RATE

    # Table 5's denominators are "percent of 2016-HTTPS websites", so the
    # pre-adoption HTTPS set is snapshotted *before* the adoption loop runs:
    # newly-adopted sites already drew their stapling behaviour from
    # NEW_HTTPS_STAPLING_RATE and must feed neither the quota base nor the
    # candidate pools (double-applying would overshoot the paper's rates).
    https_before = {w.domain for w in websites if w.https}

    https_now = len(https_before)
    target = round(https_target * len(websites))
    adoption_rate = max(0.0, (target - https_now) / max(1, len(websites) - https_now))
    for website in websites:
        if website.domain in PINNED_DOMAINS or website.https:
            continue
        if rng.random() < adoption_rate:
            adopt_https(website)

    def https_2016(w: WebsiteSpec) -> bool:
        """Pre-adoption HTTPS population, the base for the CA quotas."""
        return w.domain in https_before

    _apply_quota(
        websites, config, scaled(CA_STAPLE_TO_NONE),
        eligible=lambda w: w.domain in https_before and w.ocsp_stapled,
        action=lambda w: setattr(w, "ocsp_stapled", False),
        rng=rng,
        base=https_2016,
    )
    _apply_quota(
        websites, config, scaled(CA_NONE_TO_STAPLE),
        eligible=lambda w: w.domain in https_before and not w.ocsp_stapled,
        action=lambda w: setattr(w, "ocsp_stapled", True),
        rng=rng,
        base=https_2016,
    )
    _rebalance_market(
        websites, ca_market, rng,
        get_keys=lambda w: [w.ca_key] if w.https and w.ca_key else [],
        set_key=lambda w, i, k: setattr(w, "ca_key", k),
        tolerance=rebalance_tolerance,
    )


def _sanitize_against_market(
    spec: SnapshotSpec, rng: random.Random, config: WorldConfig
) -> None:
    """Repair references to providers that no longer exist in 2020."""
    for website in spec.websites:
        for i, provider in enumerate(website.dns.providers):
            if provider != PRIVATE and provider not in spec.dns_providers:
                website.dns.providers[i] = PRIVATE
        if website.dns.providers.count(PRIVATE) > 1:
            # Two dead providers both repaired to PRIVATE describe one
            # in-house setup, not a redundant one — collapse them.
            seen_private = False
            deduped = []
            for provider in website.dns.providers:
                if provider == PRIVATE:
                    if seen_private:
                        continue
                    seen_private = True
                deduped.append(provider)
            website.dns.providers[:] = deduped
        website.cdns = [
            c for c in website.cdns if c == PRIVATE or c in spec.cdns
        ]
        if website.https and website.ca_key not in (None, PRIVATE):
            if website.ca_key not in spec.cas:
                keys = list(spec.cas)
                weights = [c.share_weight for c in spec.cas.values()]
                website.ca_key = rankmodel.weighted_choice(rng, keys, weights)
