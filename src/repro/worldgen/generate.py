"""Snapshot generation: the 2016 base world.

Builds a :class:`~repro.worldgen.spec.SnapshotSpec` for 2016 from the
provider catalog, rank curves, and synthetic long tails. The 2020 snapshot
is always produced by *evolving* this one (:mod:`repro.worldgen.evolve`),
so the comparison analysis sees a consistent population.

Synthetic tail providers absorb the market left over after the named
catalog entries, and their inter-service dependency choices are assigned
to hit the Table 6 counts for the year (see ``InterServiceTargets``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.worldgen import rankmodel
from repro.worldgen.alexa import AlexaList, generate_domains
from repro.worldgen.catalog import (
    CA_TAIL_SHARE_EACH,
    CDN_TAIL_SHARE_EACH,
    DNS_TAIL_WEIGHT_2016,
    DNS_TAIL_WEIGHT_2020,
    CaEntry,
    CdnEntry,
    provider_catalog,
)
from repro.worldgen.config import WorldConfig
from repro.worldgen.corner_cases import apply_corner_cases, private_cdn_specs
from repro.worldgen.spec import (
    PRIVATE,
    CaSpec,
    CdnSpec,
    DnsProviderSpec,
    DnsSetup,
    SnapshotSpec,
    WebsiteSpec,
)

# Domains serving third-party page content (trackers, fonts, widgets) that
# are *not* infrastructure dependencies — the crawler must see and the CDN
# pipeline must discard them, as the paper's internal-resource step does.
# Fraction of CDN-using websites serving a *different* CDN to clients in
# other regions (GeoDNS) — the dependency a single vantage point misses.
REGIONAL_CDN_RATE_2020 = 0.06
REGIONAL_CDN_RATE_2016 = 0.03

EXTERNAL_CONTENT_DOMAINS = (
    "metric-analytics.com", "adnet-serve.com", "fontkit-cdn.org",
    "social-widgets.net", "tagmanager-hub.com", "pixel-track.net",
    "embed-player.com", "consent-banner.net", "chat-widget.io",
    "maps-embed.org",
)


@dataclass(frozen=True)
class InterServiceTargets:
    """Table 6-style counts for one snapshot year."""

    cdn_third_party: int
    cdn_critical: int
    ca_dns_third_party: int
    ca_dns_critical: int
    ca_cdn_users: int
    ca_cdn_third_party: int


TARGETS_2016 = InterServiceTargets(
    cdn_third_party=12, cdn_critical=8,
    ca_dns_third_party=33, ca_dns_critical=24,
    ca_cdn_users=21, ca_cdn_third_party=18,
)
TARGETS_2020 = InterServiceTargets(
    cdn_third_party=31, cdn_critical=15,
    ca_dns_third_party=27, ca_dns_critical=18,
    ca_cdn_users=24, ca_cdn_third_party=21,
)


def _year_field(entry, name: str, year: int):
    return getattr(entry, f"{name}_{year}")


def _dns_setup_from_choice(choice, entity: str, dns_entities: dict[str, str]) -> DnsSetup:
    """Translate a catalog dns_choice into a DnsSetup, folding same-entity
    providers into PRIVATE (Amazon CA on Route 53 is not a third party)."""
    keys = (choice,) if isinstance(choice, str) else tuple(choice)
    providers = []
    for key in keys:
        if key == "private" or key == PRIVATE:
            providers.append(PRIVATE)
        elif dns_entities.get(key) == entity:
            providers.append(PRIVATE)
        else:
            providers.append(key)
    # Collapse duplicate PRIVATEs while preserving order.
    deduped: list[str] = []
    for p in providers:
        if p not in deduped:
            deduped.append(p)
    return DnsSetup(providers=deduped)


# --------------------------------------------------------------------------
# Markets
# --------------------------------------------------------------------------

def build_dns_market(config: WorldConfig, year: int, rng: random.Random) -> dict[str, DnsProviderSpec]:
    """Named providers active in ``year`` plus a Zipf long tail."""
    catalog = provider_catalog()
    market: dict[str, DnsProviderSpec] = {}
    for entry in catalog.dns_providers:
        share = _year_field(entry, "share", year)
        if share <= 0:
            continue
        market[entry.key] = DnsProviderSpec(
            key=entry.key,
            display=entry.display,
            entity=entry.entity,
            ns_domains=entry.ns_domains,
            share_weight=share,
            top_bias=_year_field(entry, "top_bias", year),
            secondary_rate=entry.secondary_rate,
        )
    per_1k = (
        config.tail_dns_providers_per_1k_sites
        if year >= 2020
        else config.tail_dns_providers_per_1k_sites_2016
    )
    tail_count = max(10, round(per_1k * config.n_websites / 1000))
    tail_total = DNS_TAIL_WEIGHT_2020 if year >= 2020 else DNS_TAIL_WEIGHT_2016
    # A flatter tail in 2016 (2705 providers covered 80% of websites then);
    # by 2020 the tail both shrank and steepened.
    weights = rankmodel.zipf_weights(tail_count, exponent=0.7 if year >= 2020 else 0.5)
    scale = tail_total / sum(weights)
    for i, weight in enumerate(weights):
        key = f"dns-tail-{i:04d}"
        market[key] = DnsProviderSpec(
            key=key,
            display=f"Hosting DNS #{i}",
            entity=key,
            ns_domains=(f"tail{i:04d}-dns.net",),
            share_weight=weight * scale,
            secondary_rate=0.02,
        )
    return market


def _named_cdn_specs(year: int, dns_entities: dict[str, str]) -> dict[str, CdnSpec]:
    catalog = provider_catalog()
    specs: dict[str, CdnSpec] = {}
    for entry in catalog.cdns:
        share = _year_field(entry, "share", year)
        if share <= 0:
            continue
        specs[entry.key] = CdnSpec(
            key=entry.key,
            display=entry.display,
            entity=entry.entity,
            cname_suffixes=entry.cname_suffixes,
            share_weight=share,
            dns=_dns_setup_from_choice(
                _year_field(entry, "dns_choice", year), entry.entity, dns_entities
            ),
            top_bias=_year_field(entry, "top_bias", year),
            redundancy_rate=entry.redundancy_rate,
        )
    for spec in private_cdn_specs(year, dns_entities):
        specs[spec.key] = spec
    return specs


def _assign_interservice_dns(
    specs: list,  # CdnSpec or CaSpec, mutated in place
    already_third: int,
    already_critical: int,
    target_third: int,
    target_critical: int,
    dns_keys: list[str],
    dns_weights: list[float],
    rng: random.Random,
) -> None:
    """Give synthetic providers DNS setups hitting the Table 6 counts.

    Critical = single third-party provider; non-critical third-party users
    get a private secondary (redundant).
    """
    need_critical = max(0, target_critical - already_critical)
    need_redundant = max(0, (target_third - target_critical) - (already_third - already_critical))
    pool = list(specs)
    rng.shuffle(pool)
    for spec in pool:
        if need_critical <= 0 and need_redundant <= 0:
            break
        provider = rankmodel.weighted_choice(rng, dns_keys, dns_weights)
        if need_critical > 0:
            spec.dns = DnsSetup(providers=[provider])
            need_critical -= 1
        else:
            spec.dns = DnsSetup(providers=[provider, PRIVATE])
            need_redundant -= 1


def build_cdn_market(
    config: WorldConfig,
    year: int,
    dns_market: dict[str, DnsProviderSpec],
    rng: random.Random,
) -> dict[str, CdnSpec]:
    """All CDNs for a year: named + private corner-case + synthetic tail."""
    dns_entities = {k: v.entity for k, v in dns_market.items()}
    market = _named_cdn_specs(year, dns_entities)
    total = config.targets.n_cdns if year >= 2020 else config.targets.n_cdns_2016
    synthetic: list[CdnSpec] = []
    i = 0
    while len(market) + len(synthetic) < total:
        key = f"cdn-tail-{i:03d}"
        if key not in market:
            synthetic.append(
                CdnSpec(
                    key=key,
                    display=f"Regional CDN #{i}",
                    entity=key,
                    cname_suffixes=(f"tail{i:03d}-cdnedge.net",),
                    share_weight=CDN_TAIL_SHARE_EACH,
                    redundancy_rate=0.05,
                )
            )
        i += 1
    targets = TARGETS_2020 if year >= 2020 else TARGETS_2016
    named = list(market.values())
    already_third = sum(1 for s in named if s.dns.uses_third_party)
    already_critical = sum(1 for s in named if s.dns.is_critical)
    # The paper: AWS DNS serves 16 CDNs (7 exclusively), so weight the
    # synthetic choices towards it; the rest spread over managed DNS.
    dns_keys = [k for k in ("aws-dns", "dnsmadeeasy", "ns1", "ultradns", "dyn", "cloudflare") if k in dns_market]
    dns_weights = [10.0, 2.0, 2.0, 2.0, 1.0, 2.0][: len(dns_keys)]
    _assign_interservice_dns(
        synthetic, already_third, already_critical,
        targets.cdn_third_party, targets.cdn_critical,
        dns_keys, dns_weights, rng,
    )
    for spec in synthetic:
        market[spec.key] = spec
    return market


def build_ca_market(
    config: WorldConfig,
    year: int,
    dns_market: dict[str, DnsProviderSpec],
    cdn_market: dict[str, CdnSpec],
    rng: random.Random,
) -> dict[str, CaSpec]:
    """All CAs for a year: named + synthetic tail, with inter-service deps."""
    catalog = provider_catalog()
    dns_entities = {k: v.entity for k, v in dns_market.items()}
    cdn_entities = {k: v.entity for k, v in cdn_market.items()}
    market: dict[str, CaSpec] = {}
    for entry in catalog.cas:
        share = _year_field(entry, "share", year)
        if share <= 0:
            continue
        cdn_choice = _year_field(entry, "cdn_choice", year)
        cdn_private = (
            cdn_choice is not None
            and cdn_entities.get(cdn_choice) == entry.entity
        )
        market[entry.key] = CaSpec(
            key=entry.key,
            display=entry.display,
            entity=entry.entity,
            ocsp_host=entry.ocsp_host,
            crl_host=entry.crl_host,
            share_weight=share,
            stapling_rate=_year_field(entry, "stapling_rate", year),
            dns=_dns_setup_from_choice(
                _year_field(entry, "dns_choice", year), entry.entity, dns_entities
            ),
            cdn_key=cdn_choice,
            cdn_private=cdn_private,
        )
    total = config.targets.n_cas if year >= 2020 else config.targets.n_cas_2016
    synthetic: list[CaSpec] = []
    i = 0
    while len(market) + len(synthetic) < total:
        key = f"ca-tail-{i:03d}"
        if key not in market:
            synthetic.append(
                CaSpec(
                    key=key,
                    display=f"Regional CA #{i}",
                    entity=key,
                    ocsp_host=f"ocsp.tail{i:03d}-pki.net",
                    crl_host=f"crl.tail{i:03d}-pki.net",
                    share_weight=CA_TAIL_SHARE_EACH,
                    stapling_rate=0.15,
                )
            )
        i += 1
    targets = TARGETS_2020 if year >= 2020 else TARGETS_2016
    named = list(market.values())
    already_third = sum(1 for s in named if s.dns.uses_third_party)
    already_critical = sum(1 for s in named if s.dns.is_critical)
    # Paper (2020): of the exclusively-dependent CAs, 4 use Comodo DNS,
    # 3 Akamai, 3 AWS DNS — mirrored in the weights.
    dns_keys = [k for k in ("comodo-dns", "akamai-dns", "aws-dns", "ultradns", "dnsmadeeasy", "cloudflare") if k in dns_market]
    dns_weights = [4.0, 3.0, 3.0, 2.0, 1.0, 1.0][: len(dns_keys)]
    _assign_interservice_dns(
        synthetic, already_third, already_critical,
        targets.ca_dns_third_party, targets.ca_dns_critical,
        dns_keys, dns_weights, rng,
    )
    # CA -> CDN assignments for synthetics: Akamai and Cloudflare dominate
    # (5 CAs each in the paper). Synthetic CAs only ever take third-party
    # CDNs; the private usages come from the named same-entity pairs.
    named_cdn_third = sum(1 for s in named if s.uses_third_party_cdn)
    need_third = max(0, targets.ca_cdn_third_party - named_cdn_third)
    cdn_keys = [k for k in ("akamai", "cloudflare-cdn", "cloudfront", "fastly", "stackpath") if k in cdn_market]
    cdn_weights = [5.0, 5.0, 2.0, 1.0, 1.0][: len(cdn_keys)]
    pool = list(synthetic)
    rng.shuffle(pool)
    for spec in pool:
        if need_third <= 0:
            break
        spec.cdn_key = rankmodel.weighted_choice(rng, cdn_keys, cdn_weights)
        need_third -= 1
    for spec in synthetic:
        market[spec.key] = spec
    return market


# --------------------------------------------------------------------------
# Websites
# --------------------------------------------------------------------------

def _draw_dns_setup(
    eff_rank: float,
    year: int,
    dns_market: dict[str, DnsProviderSpec],
    rng: random.Random,
) -> DnsSetup:
    if rng.random() >= rankmodel.p_third_party_dns(eff_rank, year):
        return DnsSetup(providers=[PRIVATE], soa_masked=False)
    keys = list(dns_market)
    weights = [
        rankmodel.biased_weight(p.share_weight, p.top_bias, eff_rank)
        for p in dns_market.values()
    ]
    primary = rankmodel.weighted_choice(rng, keys, weights)
    provider = dns_market[primary]
    p_red = min(
        0.9,
        rankmodel.dns_redundancy_multiplier(eff_rank) * provider.secondary_rate,
    )
    providers = [primary]
    if rng.random() < p_red:
        if rng.random() < rankmodel.p_private_secondary_given_redundant(eff_rank):
            providers.append(PRIVATE)
        else:
            others = [k for k in keys if k != primary]
            other_weights = [w for k, w in zip(keys, weights) if k != primary]
            if others:
                providers.append(rankmodel.weighted_choice(rng, others, other_weights))
    # Most third-party-hosted zones carry the provider's SOA (the Section
    # 3.1 trap); a minority keep their own SOA, like amazon.com.
    return DnsSetup(providers=providers, soa_masked=rng.random() < 0.8)


def _draw_cdns(
    eff_rank: float,
    year: int,
    cdn_market: dict[str, CdnSpec],
    rng: random.Random,
) -> list[str]:
    if rng.random() >= rankmodel.p_cdn_usage(eff_rank, year):
        return []
    if rng.random() < rankmodel.p_private_cdn_given_use(eff_rank):
        return [PRIVATE]
    # Only publicly-marketed CDNs are choosable; corner-case private CDNs
    # (entity-named) are wired explicitly.
    keys = [k for k, c in cdn_market.items() if c.share_weight > 0]
    weights = [
        rankmodel.biased_weight(cdn_market[k].share_weight, cdn_market[k].top_bias, eff_rank)
        for k in keys
    ]
    primary = rankmodel.weighted_choice(rng, keys, weights)
    cdns = [primary]
    p_multi = min(
        0.9,
        rankmodel.cdn_redundancy_multiplier(eff_rank)
        * cdn_market[primary].redundancy_rate,
    )
    if rng.random() < p_multi:
        others = [k for k in keys if k != primary]
        other_weights = [w for k, w in zip(keys, weights) if k != primary]
        if others:
            cdns.append(rankmodel.weighted_choice(rng, others, other_weights))
    return cdns


def _draw_ca(
    eff_rank: float,
    year: int,
    ca_market: dict[str, CaSpec],
    rng: random.Random,
) -> tuple[bool, str, bool]:
    """Returns (https, ca_key, stapled)."""
    if rng.random() >= rankmodel.p_https(eff_rank, year):
        return False, PRIVATE, False
    if rng.random() < rankmodel.p_private_ca_given_https(eff_rank):
        return True, PRIVATE, rng.random() < 0.25
    keys = list(ca_market)
    weights = [c.share_weight for c in ca_market.values()]
    ca_key = rankmodel.weighted_choice(rng, keys, weights)
    stapled = rng.random() < ca_market[ca_key].stapling_rate
    return True, ca_key, stapled


def generate_websites(
    config: WorldConfig,
    alexa: AlexaList,
    year: int,
    dns_market: dict[str, DnsProviderSpec],
    cdn_market: dict[str, CdnSpec],
    ca_market: dict[str, CaSpec],
    rng: random.Random,
) -> list[WebsiteSpec]:
    """Draw every website's spec for one year."""
    websites: list[WebsiteSpec] = []
    regional_rate = REGIONAL_CDN_RATE_2020 if year >= 2020 else REGIONAL_CDN_RATE_2016
    regional_candidates = [
        key for key in ("alibaba-cdn", "cdn77") if key in cdn_market
    ]
    for index, domain in enumerate(alexa.domains):
        rank = index + 1
        eff = config.effective_rank(rank)
        dns = _draw_dns_setup(eff, year, dns_market, rng)
        cdns = _draw_cdns(eff, year, cdn_market, rng)
        regional: dict[str, str] = {}
        if cdns and cdns != [PRIVATE] and regional_candidates:
            if rng.random() < regional_rate:
                choice = rng.choice(regional_candidates)
                if choice not in cdns:
                    regional["cn"] = choice
        https, ca_key, stapled = _draw_ca(eff, year, ca_market, rng)
        externals = rng.sample(
            EXTERNAL_CONTENT_DOMAINS, k=rng.randrange(0, 4)
        )
        websites.append(
            WebsiteSpec(
                domain=domain,
                rank=rank,
                entity=domain,
                dns=dns,
                https=https,
                ca_key=ca_key if https else None,
                ocsp_stapled=stapled,
                cdns=cdns,
                regional_cdns=regional,
                n_internal_resources=rng.randrange(2, 7),
                external_resource_domains=externals,
            )
        )
    return websites


def generate_snapshot(config: WorldConfig) -> SnapshotSpec:
    """Generate the base snapshot for ``config.year``.

    For 2020 worlds prefer :func:`repro.worldgen.world.build_world_pair`,
    which evolves a 2016 base so trend tables are consistent.
    """
    rng = random.Random(config.seed)
    year = config.year
    alexa = AlexaList(
        year=year,
        domains=generate_domains(
            config.n_websites, rng, config.include_corner_cases
        ),
    )
    dns_market = build_dns_market(config, year, rng)
    cdn_market = build_cdn_market(config, year, dns_market, rng)
    ca_market = build_ca_market(config, year, dns_market, cdn_market, rng)
    websites = generate_websites(
        config, alexa, year, dns_market, cdn_market, ca_market, rng
    )
    spec = SnapshotSpec(
        year=year,
        websites=websites,
        dns_providers=dns_market,
        cdns=cdn_market,
        cas=ca_market,
    )
    if config.include_corner_cases:
        apply_corner_cases(spec, year)
    return spec
