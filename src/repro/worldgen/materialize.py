"""Materialization: turning a :class:`SnapshotSpec` into live substrates.

Builds the full stack the measurement pipeline probes:

* a DNS tree (root → TLDs → provider/website/CDN/CA zones with delegations,
  glue, provider-masked SOAs),
* HTTP origin servers with rendered landing pages and TLS chains,
* CDN edge fabrics with wildcard edge zones and customer CNAMEs,
* CA OCSP/CRL endpoints — optionally CNAMEd onto CDNs (the paper's CA→CDN
  dependency) and hosted on third-party DNS (CA→DNS).

Ground truth never leaks into the materialized world except through
observable artifacts (names, SOAs, SANs, CNAMEs) — the measurement pipeline
has to *infer* it back, exactly like the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dnssim.clock import SimulatedClock
from repro.dnssim.network import DnsNetwork
from repro.dnssim.records import ARecord, CNAMERecord, NSRecord, SOARecord
from repro.dnssim.server import AuthoritativeServer
from repro.dnssim.zone import Zone
from repro.names.psl import icann_psl
from repro.names.registrable import registrable_domain
from repro.tlssim.ca import CertificateAuthority, IssuancePolicy
from repro.tlssim.certificate import CertificateChain
from repro.tlssim.ocsp import OCSPResponse
from repro.tlssim.validation import TrustStore
from repro.websim.cdn import CdnProvider
from repro.websim.http import HttpFabric, HttpResponse, HttpServer, VirtualHost
from repro.websim.page import PageBuilder, Resource, WebPage
from repro.worldgen.spec import (
    PRIVATE,
    CaSpec,
    CdnSpec,
    DnsProviderSpec,
    SnapshotSpec,
    WebsiteSpec,
)

_TLD_SERVER_NAME = "a.gtld-servers.net"
_ROOT_SERVER_NAME = "a.root-servers.net"


class IpAllocator:
    """Sequential 10.0.0.0/8 address allocation."""

    def __init__(self) -> None:
        self._next = 0

    def allocate(self) -> str:
        value = self._next
        self._next += 1
        if value >= 1 << 24:
            raise RuntimeError("IP space exhausted")
        return f"10.{(value >> 16) & 0xFF}.{(value >> 8) & 0xFF}.{value & 0xFF}"


@dataclass
class DnsHostingInfra:
    """A set of nameservers able to host customer zones."""

    key: str
    entity: str
    ns_hostnames: list[str]
    servers: list[AuthoritativeServer]
    primary_ns_domain: str  # e.g. "ns.cloudflare.com"

    @property
    def soa_identity(self) -> tuple[str, str]:
        """(mname, rname) this operator stamps on zones it masks."""
        base = (
            registrable_domain(self.primary_ns_domain, icann_psl())
            or self.primary_ns_domain
        )
        return (f"ns1.{self.primary_ns_domain}", f"hostmaster.{base}")

    def host(self, zone: Zone) -> None:
        for server in self.servers:
            server.serve_zone(zone)


@dataclass
class CdnInfra:
    """One materialized CDN."""

    spec: CdnSpec
    provider: CdnProvider
    edge_server: HttpServer
    dns_infras: list[DnsHostingInfra]


@dataclass
class CaInfra:
    """One materialized CA."""

    spec: CaSpec
    ca: CertificateAuthority
    service_server: Optional[HttpServer]
    dns_infras: list[DnsHostingInfra]


@dataclass
class WebsiteInfra:
    """One materialized website."""

    spec: WebsiteSpec
    zone: Zone
    origin_server: HttpServer
    chain: Optional[CertificateChain] = None
    issuing_ca: Optional[CertificateAuthority] = None
    landing_hosts: list[str] = field(default_factory=list)
    resource_hosts: list[str] = field(default_factory=list)
    dns_infras: list[DnsHostingInfra] = field(default_factory=list)


@dataclass
class MaterializedWorld:
    """Everything :class:`repro.worldgen.world.World` wraps."""

    spec: SnapshotSpec
    clock: SimulatedClock
    dns_network: DnsNetwork
    http_fabric: HttpFabric
    trust_store: TrustStore
    root_hints: dict[str, str]
    dns_infra: dict[str, DnsHostingInfra]
    cdn_infra: dict[str, CdnInfra]
    ca_infra: dict[str, CaInfra]
    website_infra: dict[str, WebsiteInfra]
    external_servers: dict[str, HttpServer]


class Materializer:
    """Single-use builder turning one spec into a materialized world."""

    def __init__(self, spec: SnapshotSpec, clock: Optional[SimulatedClock] = None):
        self.spec = spec
        self.clock = clock or SimulatedClock(start=1_000_000.0)
        self.ip = IpAllocator()
        self.dns_network = DnsNetwork()
        self.http_fabric = HttpFabric()
        self.trust_store = TrustStore()
        self.psl = icann_psl()  # the DNS tree is organized by ICANN suffixes
        self._tld_zones: dict[str, Zone] = {}
        self._zones: dict[str, Zone] = {}
        self._dns_infra: dict[str, DnsHostingInfra] = {}
        self._cdn_infra: dict[str, CdnInfra] = {}
        self._ca_infra: dict[str, CaInfra] = {}
        self._website_infra: dict[str, WebsiteInfra] = {}
        self._external_servers: dict[str, HttpServer] = {}
        self._page_builder = PageBuilder()
        self.root_hints: dict[str, str] = {}
        self._tld_server: Optional[AuthoritativeServer] = None
        self._root_zone: Optional[Zone] = None
        self._entity_primary_domain: dict[str, str] = {}

    # -- top-level ----------------------------------------------------------

    def build(self) -> MaterializedWorld:
        self._build_root()
        self._index_entities()
        for provider in self.spec.dns_providers.values():
            self._build_dns_provider(provider)
        for cdn in self.spec.cdns.values():
            self._build_cdn(cdn)
        for ca in self.spec.cas.values():
            self._build_ca(ca)
        self._build_external_content_servers()
        for website in self.spec.websites:
            self._build_website(website)
        return MaterializedWorld(
            spec=self.spec,
            clock=self.clock,
            dns_network=self.dns_network,
            http_fabric=self.http_fabric,
            trust_store=self.trust_store,
            root_hints=self.root_hints,
            dns_infra=self._dns_infra,
            cdn_infra=self._cdn_infra,
            ca_infra=self._ca_infra,
            website_infra=self._website_infra,
            external_servers=self._external_servers,
        )

    # -- the DNS tree -------------------------------------------------------

    def _build_root(self) -> None:
        root_ip = self.ip.allocate()
        tld_ip = self.ip.allocate()
        self._root_zone = Zone(
            "", SOARecord(_ROOT_SERVER_NAME, "nstld.verisign-grs.com")
        )
        root_server = AuthoritativeServer(
            _ROOT_SERVER_NAME, [root_ip], operator="iana"
        )
        root_server.serve_zone(self._root_zone)
        self.dns_network.register_server(root_server)
        self.root_hints = {_ROOT_SERVER_NAME: root_ip}
        self._tld_server = AuthoritativeServer(
            _TLD_SERVER_NAME, [tld_ip], operator="registry"
        )
        self.dns_network.register_server(self._tld_server)
        self._root_zone.add(_ROOT_SERVER_NAME, ARecord(root_ip))

    def _tld_zone(self, suffix: str) -> Zone:
        zone = self._tld_zones.get(suffix)
        if zone is None:
            zone = Zone(
                suffix, SOARecord(_TLD_SERVER_NAME, "registry.iana.org")
            )
            self._tld_zones[suffix] = zone
            assert self._tld_server is not None and self._root_zone is not None
            self._tld_server.serve_zone(zone)
            self._root_zone.add(suffix, NSRecord(_TLD_SERVER_NAME))
            self._root_zone.add(
                _TLD_SERVER_NAME, ARecord(self._tld_server.ips[0])
            )
        return zone

    def _delegate(self, domain: str, infras: list[DnsHostingInfra]) -> None:
        """Register ``domain``'s delegation in its TLD zone, with glue for
        in-bailiwick nameservers."""
        suffix = self.psl.public_suffix(domain)
        if suffix is None or suffix == domain:
            raise ValueError(f"cannot delegate a bare public suffix: {domain!r}")
        tld_zone = self._tld_zone(suffix)
        for infra in infras:
            for ns_hostname in infra.ns_hostnames:
                tld_zone.add(domain, NSRecord(ns_hostname))
                if ns_hostname == domain or ns_hostname.endswith("." + domain):
                    for server in infra.servers:
                        if server.name == ns_hostname:
                            for ip in server.ips:
                                tld_zone.add(ns_hostname, ARecord(ip))

    def _new_zone(
        self,
        origin: str,
        infras: list[DnsHostingInfra],
        soa_identity: Optional[tuple[str, str]] = None,
    ) -> Zone:
        """Create a zone, host it on ``infras``, delegate it, add NS rrset.

        If the zone already exists (a redundant setup's private leg built it
        first), the remaining infras are attached to it instead.
        """
        existing = self._zones.get(origin)
        if existing is not None:
            for infra in infras:
                for ns_hostname in infra.ns_hostnames:
                    existing.add(origin, NSRecord(ns_hostname))
                infra.host(existing)
            self._delegate(origin, infras)
            return existing
        if soa_identity is None:
            soa_identity = (f"ns1.{origin}", f"hostmaster.{origin}")
        zone = Zone(origin, SOARecord(soa_identity[0], soa_identity[1]))
        for infra in infras:
            for ns_hostname in infra.ns_hostnames:
                zone.add(origin, NSRecord(ns_hostname))
            infra.host(zone)
        self._delegate(origin, infras)
        self._zones[origin] = zone
        return zone

    # -- DNS hosting infrastructures -----------------------------------------

    def _make_hosting_infra(
        self,
        key: str,
        entity: str,
        ns_domains: tuple[str, ...],
        operator: str,
        apex_ns: bool = True,
        delegate: bool = True,
    ) -> DnsHostingInfra:
        """Build nameserver hosts + self-hosted zones for an operator.

        ``apex_ns=False`` keeps the infra's NS hostnames out of its base
        zone's apex NS rrset (private infra under a website domain must not
        make the website look self-hosted); ``delegate=False`` defers the
        TLD delegation to whoever consumes the zone.
        """
        servers: list[AuthoritativeServer] = []
        ns_hostnames: list[str] = []
        for ns_domain in ns_domains:
            for label in ("ns1", "ns2"):
                hostname = f"{label}.{ns_domain}"
                server = AuthoritativeServer(
                    hostname, [self.ip.allocate()], operator=operator
                )
                self.dns_network.register_server(server)
                servers.append(server)
                ns_hostnames.append(hostname)
        infra = DnsHostingInfra(
            key=key,
            entity=entity,
            ns_hostnames=ns_hostnames,
            servers=servers,
            primary_ns_domain=ns_domains[0],
        )
        # Self-hosted zones for each ns_domain's registrable domain, all
        # carrying the operator's shared SOA identity (alicdn.com and
        # alibabadns.com share an MNAME — the Section 3.1 entity signal).
        mname, rname = infra.soa_identity
        for ns_domain in ns_domains:
            base = registrable_domain(ns_domain, icann_psl()) or ns_domain
            zone = self._zones.get(base)
            if zone is None:
                zone = Zone(base, SOARecord(mname, rname))
                self._zones[base] = zone
                if delegate:
                    self._delegate(base, [infra])
            if apex_ns:
                for ns_hostname in infra.ns_hostnames:
                    zone.add(base, NSRecord(ns_hostname))
            infra.host(zone)
            for server in servers:
                if server.name.endswith("." + base) or server.name == base:
                    for ip_addr in server.ips:
                        zone.add(server.name, ARecord(ip_addr))
        return infra

    def _build_dns_provider(self, provider: DnsProviderSpec) -> None:
        infra = self._make_hosting_infra(
            provider.key, provider.entity, provider.ns_domains, provider.entity
        )
        self._dns_infra[provider.key] = infra

    def _private_infra_for(self, owner_key: str, entity: str, base_domain: str) -> DnsHostingInfra:
        """Own-branded nameservers for an entity (ns1.dns.<base_domain>...).

        Apex NS records and the TLD delegation are left to the consumers:
        a website with this infra in its setup gets them via ``_new_zone``,
        so a CA's private infra never makes its entity's website look
        self-hosted when it is not.
        """
        key = f"_private:{owner_key}"
        infra = self._dns_infra.get(key)
        if infra is None:
            infra = self._make_hosting_infra(
                key, entity, (f"dns.{base_domain}",), entity,
                apex_ns=False, delegate=False,
            )
            self._dns_infra[key] = infra
        return infra

    def _index_entities(self) -> None:
        """Map entities to their highest-ranked domain (for alias NS names)."""
        for website in sorted(self.spec.websites, key=lambda w: w.rank):
            self._entity_primary_domain.setdefault(website.entity, website.domain)

    def _infras_for_setup(
        self, providers: list[str], owner_key: str, entity: str, base_domain: str
    ) -> list[DnsHostingInfra]:
        """Resolve a DnsSetup's provider keys to hosting infrastructures.

        PRIVATE resolves to the entity's own nameservers: the ones under
        its primary website domain when the entity runs a website (so
        ocsp.pki.goog ends up on ns1.google.com, sharing Google's SOA
        identity — the signal that rescues the heuristics), otherwise
        own-branded nameservers under ``base_domain``.
        """
        infras: list[DnsHostingInfra] = []
        for provider in providers:
            if provider == PRIVATE:
                entity_domain = self._entity_primary_domain.get(entity)
                if entity_domain is not None:
                    infras.append(
                        self._private_infra_for(
                            f"site:{entity}", entity, entity_domain
                        )
                    )
                else:
                    infras.append(
                        self._private_infra_for(owner_key, entity, base_domain)
                    )
            else:
                infras.append(self._dns_infra[provider])
        return infras

    # -- CDNs ----------------------------------------------------------------

    def _build_cdn(self, cdn: CdnSpec) -> None:
        edge_ips = [self.ip.allocate(), self.ip.allocate()]
        edge_server = HttpServer(
            f"edge.{cdn.cname_suffixes[0]}", edge_ips, operator=cdn.entity
        )
        self.http_fabric.register_server(edge_server)
        provider = CdnProvider(
            name=cdn.display,
            operator=cdn.entity,
            cname_suffixes=list(cdn.cname_suffixes),
            edge_server=edge_server,
        )
        base_domain = (
            registrable_domain(cdn.cname_suffixes[0], icann_psl())
            or cdn.cname_suffixes[0]
        )
        infras = self._infras_for_setup(
            cdn.dns.providers, f"cdn:{cdn.key}", cdn.entity, base_domain
        )
        # Private zones carry the operating entity's SOA identity; zones on
        # third-party DNS carry the provider's when masked, their own when
        # not (the amazon.com pattern).
        mask = (
            None
            if (cdn.dns.uses_third_party and not cdn.dns.soa_masked)
            else infras[0].soa_identity
        )
        for suffix in cdn.cname_suffixes:
            origin = registrable_domain(suffix, icann_psl()) or suffix
            # _new_zone attaches NS records and the TLD delegation even when
            # the private-leg infra pre-created the zone object.
            zone = self._new_zone(origin, infras, soa_identity=mask)
            zone.add(f"*.{suffix}", ARecord(edge_ips[0]))
            zone.add(f"*.{suffix}", ARecord(edge_ips[1]))
            if suffix != origin:
                zone.add(suffix, ARecord(edge_ips[0]))
        self._cdn_infra[cdn.key] = CdnInfra(
            spec=cdn, provider=provider, edge_server=edge_server, dns_infras=infras
        )

    # -- CAs ------------------------------------------------------------------

    def _build_ca(self, ca_spec: CaSpec) -> None:
        ca = CertificateAuthority(
            name=ca_spec.display,
            operator=ca_spec.entity,
            ocsp_host=ca_spec.ocsp_host,
            crl_host=ca_spec.crl_host,
            now=self.clock.now(),
        )
        self.trust_store.add(ca.root)
        service_server = HttpServer(
            f"svc.{ca_spec.ocsp_host}", [self.ip.allocate()], operator=ca_spec.entity
        )
        self.http_fabric.register_server(service_server)
        ocsp_handler, crl_handler = self._revocation_handlers(ca)
        base_domain = (
            registrable_domain(ca_spec.ocsp_host, icann_psl()) or ca_spec.ocsp_host
        )
        infras = self._infras_for_setup(
            ca_spec.dns.providers, f"ca:{ca_spec.key}", ca_spec.entity, base_domain
        )
        mask = (
            None
            if (ca_spec.dns.uses_third_party and not ca_spec.dns.soa_masked)
            else infras[0].soa_identity
        )
        zone = self._new_zone(base_domain, infras, soa_identity=mask)
        crl_base = (
            registrable_domain(ca_spec.crl_host, icann_psl()) or ca_spec.crl_host
        )
        crl_zone = zone
        if crl_base != base_domain:
            crl_zone = self._new_zone(crl_base, infras, soa_identity=mask)

        if ca_spec.cdn_key is not None and ca_spec.cdn_key in self._cdn_infra:
            cdn = self._cdn_infra[ca_spec.cdn_key]
            label = f"ca-{ca_spec.key}"
            deployment = cdn.provider.deploy(
                label,
                customer_hostnames=[ca_spec.ocsp_host, ca_spec.crl_host],
                handler=lambda host, path: (
                    ocsp_handler(host, path) if "/ocsp" in path else crl_handler(host, path)
                ),
            )
            zone.add(ca_spec.ocsp_host, CNAMERecord(deployment.edge_hostname))
            if ca_spec.crl_host != ca_spec.ocsp_host:
                crl_zone.add(ca_spec.crl_host, CNAMERecord(deployment.edge_hostname))
        else:
            service_server.add_vhost(VirtualHost(ca_spec.ocsp_host, ocsp_handler))
            zone.add(ca_spec.ocsp_host, ARecord(service_server.ips[0]))
            if ca_spec.crl_host != ca_spec.ocsp_host:
                service_server.add_vhost(VirtualHost(ca_spec.crl_host, crl_handler))
                crl_zone.add(ca_spec.crl_host, ARecord(service_server.ips[0]))
            else:
                service_server.add_vhost(VirtualHost(ca_spec.crl_host, crl_handler))

        self._ca_infra[ca_spec.key] = CaInfra(
            spec=ca_spec, ca=ca, service_server=service_server, dns_infras=infras
        )

    def _revocation_handlers(self, ca: CertificateAuthority):
        clock = self.clock

        def ocsp_handler(host: str, path: str) -> HttpResponse:
            serial = 0
            if "serial=" in path:
                try:
                    serial = int(path.split("serial=", 1)[1].split("&")[0])
                except ValueError:
                    return HttpResponse(status=400, body="bad serial")
            response = ca.ocsp_responder.status_of(serial, clock.now())
            return HttpResponse(status=200, body="ocsp", payload=response)

        def crl_handler(host: str, path: str) -> HttpResponse:
            return HttpResponse(
                status=200, body="crl", payload=ca.cdp.current_crl(clock.now())
            )

        return ocsp_handler, crl_handler

    def _private_ca_for(self, website: WebsiteSpec) -> CaInfra:
        """A per-entity private CA whose OCSP host sits under the entity's
        own domain (ocsp.<primary-domain>)."""
        key = f"_private-ca:{website.entity}"
        infra = self._ca_infra.get(key)
        if infra is not None:
            return infra
        base = self._entity_primary_domain.get(website.entity, website.domain)
        ca = CertificateAuthority(
            name=f"{website.entity} internal CA",
            operator=website.entity,
            ocsp_host=f"ocsp.{base}",
            crl_host=f"crl.{base}",
            now=self.clock.now(),
            # Self-run PKI typically ships certificates without AIA/CDP
            # endpoints — which is also what keeps the observed-CA count at
            # the market's size, as in the paper's 59.
            policy=IssuancePolicy(include_ocsp=False, include_crl=False),
        )
        self.trust_store.add(ca.root)
        infra = CaInfra(
            spec=CaSpec(
                key=key,
                display=ca.name,
                entity=website.entity,
                ocsp_host=ca.ocsp_host,
                crl_host=ca.crl_host,
                share_weight=0.0,
            ),
            ca=ca,
            service_server=None,  # endpoints ride the website's origin server
            dns_infras=[],
        )
        self._ca_infra[key] = infra
        return infra

    # -- external content providers -------------------------------------------

    def _build_external_content_servers(self) -> None:
        domains = set()
        for website in self.spec.websites:
            domains.update(website.external_resource_domains)
        for domain in sorted(domains):
            server = HttpServer(
                f"web.{domain}", [self.ip.allocate()], operator=domain
            )
            self.http_fabric.register_server(server)
            infra = self._private_infra_for(f"ext:{domain}", domain, domain)
            zone = self._new_zone(domain, [infra])
            for host in (domain, f"cdn.{domain}", f"static.{domain}"):
                zone.add(host, ARecord(server.ips[0]))
                server.add_vhost(
                    VirtualHost(host, _static_object_handler(domain))
                )
            self._external_servers[domain] = server

    # -- websites ---------------------------------------------------------------

    def _build_website(self, website: WebsiteSpec) -> None:
        domain = website.domain
        origin_server = HttpServer(
            f"origin.{domain}", [self.ip.allocate()], operator=website.entity
        )
        self.http_fabric.register_server(origin_server)

        # DNS infrastructure and zone.
        entity_base = self._entity_primary_domain.get(website.entity, domain)
        infras = self._infras_for_setup(
            website.dns.providers, f"site:{website.entity}", website.entity, entity_base
        )
        if website.dns.soa_masked and website.dns.uses_third_party:
            first_third = website.dns.third_party_providers[0]
            mask = self._dns_infra[first_third].soa_identity
        elif website.dns.has_private or not website.dns.uses_third_party:
            private = self._private_infra_for(
                f"site:{website.entity}", website.entity, entity_base
            )
            mask = private.soa_identity
        else:
            mask = (f"ns1.{domain}", f"hostmaster.{domain}")
        zone = self._new_zone(domain, infras, soa_identity=mask)
        # A private-leg infra may have pre-created the zone with its own
        # identity; the website's intended SOA always wins.
        zone.set_soa(SOARecord(mask[0], mask[1]))
        origin_ip = origin_server.ips[0]
        zone.add(domain, ARecord(origin_ip))
        zone.add(f"www.{domain}", ARecord(origin_ip))

        # Certificate.
        chain: Optional[CertificateChain] = None
        ca_infra: Optional[CaInfra] = None
        if website.https:
            if website.ca_key in (None, PRIVATE):
                ca_infra = self._private_ca_for(website)
                # Private revocation endpoints ride the origin server.
                if ca_infra.service_server is None:
                    ocsp_handler, crl_handler = self._revocation_handlers(ca_infra.ca)
                    base = self._entity_primary_domain.get(website.entity, domain)
                    if base == domain:
                        origin_server.add_vhost(VirtualHost(ca_infra.ca.ocsp_host, ocsp_handler))
                        origin_server.add_vhost(VirtualHost(ca_infra.ca.crl_host, crl_handler))
                        zone.add(ca_infra.ca.ocsp_host, ARecord(origin_ip))
                        zone.add(ca_infra.ca.crl_host, ARecord(origin_ip))
                        ca_infra.service_server = origin_server
            else:
                ca_infra = self._ca_infra[website.ca_key]
            san = (domain, f"*.{domain}", f"www.{domain}") + website.alias_sans
            leaf = ca_infra.ca.issue(subject=domain, san=san, now=self.clock.now())
            chain = ca_infra.ca.chain_for(leaf)

        staple_source = None
        if website.https and website.ocsp_stapled and chain is not None:
            staple_source = _staple_source(ca_infra.ca, self.clock)

        # Landing page and resources.
        resources, resource_hosts = self._website_resources(website, zone, origin_ip, chain)
        page = WebPage(
            url=f"{'https' if website.https else 'http'}://www.{domain}/",
            title=domain,
            resources=resources,
        )
        html = self._page_builder.render(page)
        handler = _landing_handler(html, domain)
        # A realistic fraction of sites canonicalize the apex to www with a
        # 301 (deterministic per domain so measurement runs are repeatable).
        canonicalizes = sum(ord(c) for c in domain) % 5 == 0
        scheme = "https" if website.https else "http"
        apex_handler = (
            _redirect_handler(f"{scheme}://www.{domain}/")
            if canonicalizes
            else handler
        )
        for host, host_handler in ((domain, apex_handler), (f"www.{domain}", handler)):
            origin_server.add_vhost(
                VirtualHost(
                    hostname=host,
                    handler=host_handler,
                    chain=chain,
                    staple_ocsp=website.ocsp_stapled,
                    staple_source=staple_source,
                )
            )
        for host in resource_hosts["origin"]:
            zone.add(host, ARecord(origin_ip))
            origin_server.add_vhost(
                VirtualHost(host, _static_object_handler(domain), chain=chain)
            )

        self._website_infra[domain] = WebsiteInfra(
            spec=website,
            zone=zone,
            origin_server=origin_server,
            chain=chain,
            issuing_ca=ca_infra.ca if ca_infra else None,
            landing_hosts=[domain, f"www.{domain}"],
            resource_hosts=resource_hosts["all"],
            dns_infras=infras,
        )

    def _website_resources(
        self,
        website: WebsiteSpec,
        zone: Zone,
        origin_ip: str,
        chain: Optional[CertificateChain],
    ) -> tuple[list[Resource], dict[str, list[str]]]:
        """Create resource hostnames, CDN deployments, and CNAMEs."""
        domain = website.domain
        scheme = "https" if website.https else "http"
        resources: list[Resource] = [
            Resource(url="/assets/app.css", kind="stylesheet"),
        ]
        hosts: dict[str, list[str]] = {"origin": [], "cdn": [], "all": []}
        kinds = ("script", "image", "media", "image", "script", "image")

        cdn_keys = [c for c in website.cdns if c != PRIVATE]
        n = website.n_internal_resources
        n_cdn = 0
        if website.cdns:
            n_cdn = max(1, round(n * 0.7))
        for i in range(n):
            kind = kinds[i % len(kinds)]
            if i < n_cdn and cdn_keys:
                cdn_key = cdn_keys[i % len(cdn_keys)]
                cdn = self._cdn_infra[cdn_key]
                if website.internal_alias_domain and any(
                    website.internal_alias_domain == s or s.endswith(website.internal_alias_domain)
                    for s in cdn.spec.cname_suffixes
                ):
                    # yimg-style: the resource host *is* an edge name of the
                    # (private) CDN, no CNAME hop.
                    host = f"static{i}.{cdn.spec.cname_suffixes[0]}"
                else:
                    host = f"static{i}.{domain}"
                    label = f"{domain.replace('.', '-')}-{i}"
                    deployment = cdn.provider.deploy(
                        label, customer_hostnames=[host], chain=chain
                    )
                    zone.add(host, CNAMERecord(deployment.edge_hostname))
                    # GeoDNS: clients in other regions may be steered to a
                    # different CDN entirely (invisible from the default
                    # vantage point).
                    for region, regional_key in website.regional_cdns.items():
                        regional_cdn = self._cdn_infra.get(regional_key)
                        if regional_cdn is None:
                            continue
                        regional_deployment = regional_cdn.provider.deploy(
                            f"{label}-{region}",
                            customer_hostnames=[host],
                            chain=chain,
                        )
                        zone.add_regional(
                            host, region,
                            CNAMERecord(regional_deployment.edge_hostname),
                        )
                hosts["cdn"].append(host)
            elif i < n_cdn and website.cdns == [PRIVATE]:
                # Undetectable private CDN: CNAME within the same domain.
                host = f"static{i}.{domain}"
                zone.add(host, CNAMERecord(f"cdn-origin.{domain}"))
                if f"cdn-origin.{domain}" not in zone:
                    zone.add(f"cdn-origin.{domain}", ARecord(origin_ip))
                hosts["origin"].append(f"cdn-origin.{domain}")
            else:
                host = f"img{i}.{domain}"
                hosts["origin"].append(host)
            hosts["all"].append(host)
            resources.append(Resource(url=f"{scheme}://{host}/objects/{i}", kind=kind))

        for ext in website.external_resource_domains:
            resources.append(
                Resource(url=f"https://cdn.{ext}/lib.js", kind="script")
            )
        return resources, hosts


def _redirect_handler(target: str):
    def handle(host: str, path: str) -> HttpResponse:
        if path in ("/", "/index.html"):
            return HttpResponse(
                status=301, body="", headers={"location": target}
            )
        return HttpResponse(status=200, body=f"object {path}")

    return handle


def _landing_handler(html: str, domain: str):
    def handle(host: str, path: str) -> HttpResponse:
        if path in ("/", "/index.html"):
            return HttpResponse(status=200, body=html, headers={"server": domain})
        return HttpResponse(status=200, body=f"object {path} from {domain}")

    return handle


def _static_object_handler(domain: str):
    def handle(host: str, path: str) -> HttpResponse:
        return HttpResponse(status=200, body=f"object {path} from {domain}")

    return handle


def _staple_source(ca: CertificateAuthority, clock: SimulatedClock):
    """Server-side stapling: the web server fetches and caches OCSP proofs
    from its CA's responder out of band."""
    cache: dict[int, OCSPResponse] = {}

    def source(serial: int) -> Optional[OCSPResponse]:
        cached = cache.get(serial)
        if cached is not None and cached.is_fresh_at(clock.now()):
            return cached
        response = ca.ocsp_responder.status_of(serial, clock.now())
        cache[serial] = response
        return response

    return source


def materialize(
    spec: SnapshotSpec, clock: Optional[SimulatedClock] = None
) -> MaterializedWorld:
    """Materialize a snapshot spec into live substrate objects."""
    return Materializer(spec, clock).build()
