"""Rank-dependent adoption curves and weighted-choice helpers.

All curves are piecewise-linear in ``log10(effective rank)`` with knots at
the paper's reporting buckets (100, 1K, 10K, 100K). Because ranks are
uniformly distributed, the population average is dominated by the last
decade, so the knot values below were chosen to land the paper's headline
aggregates (DESIGN.md §5) while matching the per-bucket figures (Figures
2-4) in shape.
"""

from __future__ import annotations

import math
import random
from typing import Sequence, TypeVar

T = TypeVar("T")

_KNOT_RANKS = (2.0, 3.0, 4.0, 5.0)  # log10 of 100, 1K, 10K, 100K


def _interp(eff_rank: float, values: Sequence[float]) -> float:
    """Piecewise-linear interpolation over the knots, clamped at the ends."""
    if len(values) != len(_KNOT_RANKS):
        raise ValueError("need one value per knot")
    x = math.log10(max(eff_rank, 1.0))
    if x <= _KNOT_RANKS[0]:
        return values[0]
    if x >= _KNOT_RANKS[-1]:
        return values[-1]
    for i in range(len(_KNOT_RANKS) - 1):
        x0, x1 = _KNOT_RANKS[i], _KNOT_RANKS[i + 1]
        if x0 <= x <= x1:
            t = (x - x0) / (x1 - x0)
            return values[i] + t * (values[i + 1] - values[i])
    return values[-1]


# -- website -> DNS ----------------------------------------------------------

def p_third_party_dns(eff_rank: float, year: int) -> float:
    """Probability a website uses (at least one) third-party DNS provider."""
    if year >= 2020:
        return _interp(eff_rank, (0.49, 0.72, 0.84, 0.905))
    return _interp(eff_rank, (0.52, 0.70, 0.82, 0.875))


def dns_redundancy_multiplier(eff_rank: float) -> float:
    """Rank multiplier applied to a provider's ``secondary_rate``."""
    return _interp(eff_rank, (3.0, 1.8, 1.0, 0.6))


def p_private_secondary_given_redundant(eff_rank: float) -> float:
    """When redundant, chance the second 'provider' is private infra."""
    return _interp(eff_rank, (0.6, 0.5, 0.4, 0.35))


# -- website -> CDN ----------------------------------------------------------

def p_cdn_usage(eff_rank: float, year: int) -> float:
    """Probability a website serves content from a CDN."""
    if year >= 2020:
        return _interp(eff_rank, (0.70, 0.55, 0.42, 0.315))
    return _interp(eff_rank, (0.66, 0.48, 0.33, 0.235))


def p_private_cdn_given_use(eff_rank: float) -> float:
    """CDN users running their own CDN (yahoo-style) — rare, top-heavy."""
    return _interp(eff_rank, (0.12, 0.06, 0.03, 0.02))


def cdn_redundancy_multiplier(eff_rank: float) -> float:
    """Rank multiplier applied to a CDN's ``redundancy_rate``."""
    return _interp(eff_rank, (2.6, 2.0, 1.2, 0.9))


# -- website -> CA -----------------------------------------------------------

def p_https(eff_rank: float, year: int) -> float:
    """Probability a website supports HTTPS."""
    if year >= 2020:
        return _interp(eff_rank, (0.95, 0.90, 0.83, 0.772))
    return _interp(eff_rank, (0.80, 0.65, 0.52, 0.455))


def p_private_ca_given_https(eff_rank: float) -> float:
    """HTTPS sites using a private CA (Google/Microsoft style)."""
    return _interp(eff_rank, (0.29, 0.26, 0.24, 0.228))


def top_bias_factor(eff_rank: float) -> float:
    """How strongly a provider's ``top_bias`` applies at this rank.

    Full strength for the top-100, fading to none beyond rank 10K.
    """
    return _interp(eff_rank, (1.0, 0.7, 0.2, 0.0))


# -- sampling helpers ---------------------------------------------------------

def weighted_choice(
    rng: random.Random,
    items: Sequence[T],
    weights: Sequence[float],
) -> T:
    """Draw one item proportionally to ``weights`` (must not all be zero)."""
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("all weights are zero")
    point = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if point <= cumulative:
            return item
    return items[-1]


def biased_weight(share: float, top_bias: float, eff_rank: float) -> float:
    """A provider's selection weight at a given rank.

    ``top_bias`` > 1 concentrates the provider among popular websites
    (Akamai, Dyn); < 1 pushes it down-rank (Cloudflare, GoDaddy).
    """
    factor = top_bias_factor(eff_rank)
    effective_bias = top_bias ** factor if top_bias > 0 else 0.0
    return share * effective_bias


def zipf_weights(count: int, exponent: float = 1.1) -> list[float]:
    """Zipf-ish weights for synthetic long-tail providers."""
    return [1.0 / (i ** exponent) for i in range(1, count + 1)]
