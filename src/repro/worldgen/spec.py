"""Intermediate representation of a generated snapshot.

The generator first produces a :class:`SnapshotSpec` — pure data describing
who uses whom — and only then materializes it into live substrate objects.
Keeping the IR separate makes the 2016→2020 evolution a plain data
transformation and gives validation tests a ground truth to compare the
measurement pipeline against.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

PRIVATE = "_private"

ProviderChoice = str  # a provider key, or PRIVATE


@dataclass
class DnsSetup:
    """A customer's authoritative-DNS arrangement.

    ``providers`` lists provider keys; :data:`PRIVATE` denotes self-hosted
    nameservers. ``soa_masked`` reproduces the trap in Section 3.1: many
    third-party-hosted zones carry the *provider's* SOA, which breaks the
    naive SOA-matching heuristic (e.g. twitter.com's SOA pointed to Dyn).
    """

    providers: list[ProviderChoice] = field(default_factory=lambda: [PRIVATE])
    soa_masked: bool = True

    def __post_init__(self) -> None:
        if not self.providers:
            raise ValueError("a DNS setup needs at least one provider")
        if PRIVATE in self.providers:
            # A private leg means the zone's master is in-house, so the SOA
            # carries the owner's identity, not a provider's — which is also
            # what makes private+third redundancy measurable (Section 3.1).
            self.soa_masked = False

    @property
    def third_party_providers(self) -> list[str]:
        return [p for p in self.providers if p != PRIVATE]

    @property
    def uses_third_party(self) -> bool:
        return bool(self.third_party_providers)

    @property
    def has_private(self) -> bool:
        return PRIVATE in self.providers

    @property
    def is_redundant(self) -> bool:
        """More than one distinct provider (private counts as one)."""
        return len(set(self.providers)) > 1

    @property
    def is_critical(self) -> bool:
        """Exactly one third-party provider and nothing else."""
        return self.uses_third_party and not self.is_redundant

    def copy(self) -> "DnsSetup":
        return DnsSetup(list(self.providers), self.soa_masked)


@dataclass
class WebsiteSpec:
    """Ground truth for one website in one snapshot."""

    domain: str
    rank: int
    entity: str
    dns: DnsSetup = field(default_factory=DnsSetup)
    https: bool = False
    ca_key: Optional[ProviderChoice] = None  # PRIVATE = self-run CA
    ocsp_stapled: bool = False
    cdns: list[ProviderChoice] = field(default_factory=list)  # empty = none
    # GeoDNS CDN mappings: region -> CDN key. Clients in that region are
    # CNAMEd to a different CDN — invisible from the default vantage (the
    # paper's §3.5 single-vantage limitation, made measurable).
    regional_cdns: dict[str, ProviderChoice] = field(default_factory=dict)
    n_internal_resources: int = 3
    external_resource_domains: list[str] = field(default_factory=list)
    # Corner-case machinery (Section 3's heuristic traps):
    alias_sans: tuple[str, ...] = ()          # extra SAN entries (youtube→google)
    internal_alias_domain: Optional[str] = None  # yimg-style internal domain

    @property
    def uses_cdn(self) -> bool:
        return bool(self.cdns)

    @property
    def third_party_cdns(self) -> list[str]:
        return [c for c in self.cdns if c != PRIVATE]

    @property
    def cdn_is_critical(self) -> bool:
        """Exactly one CDN, and it is third-party (paper's Section 3.3)."""
        return len(set(self.cdns)) == 1 and bool(self.third_party_cdns)

    @property
    def ca_is_third_party(self) -> bool:
        return self.https and self.ca_key is not None and self.ca_key != PRIVATE

    @property
    def ca_is_critical(self) -> bool:
        """Third-party CA without OCSP stapling (Section 3.2)."""
        return self.ca_is_third_party and not self.ocsp_stapled

    def copy(self) -> "WebsiteSpec":
        return replace(
            self,
            dns=self.dns.copy(),
            cdns=list(self.cdns),
            regional_cdns=dict(self.regional_cdns),
            external_resource_domains=list(self.external_resource_domains),
        )


@dataclass
class DnsProviderSpec:
    """One managed-DNS provider in a snapshot."""

    key: str
    display: str
    entity: str
    ns_domains: tuple[str, ...]
    share_weight: float
    top_bias: float = 1.0
    secondary_rate: float = 0.05


@dataclass
class CdnSpec:
    """One CDN in a snapshot, including its own DNS arrangement."""

    key: str
    display: str
    entity: str
    cname_suffixes: tuple[str, ...]
    share_weight: float
    dns: DnsSetup = field(default_factory=DnsSetup)
    top_bias: float = 1.0
    redundancy_rate: float = 0.08

    def copy(self) -> "CdnSpec":
        return replace(self, dns=self.dns.copy())


@dataclass
class CaSpec:
    """One CA in a snapshot, including its DNS and CDN arrangements."""

    key: str
    display: str
    entity: str
    ocsp_host: str
    crl_host: str
    share_weight: float
    stapling_rate: float = 0.15
    dns: DnsSetup = field(default_factory=DnsSetup)
    cdn_key: Optional[ProviderChoice] = None  # None = no CDN
    # True when the chosen CDN belongs to the CA's own entity (Amazon Trust
    # Services on CloudFront) — used, not a third-party dependency.
    cdn_private: bool = False

    @property
    def uses_third_party_cdn(self) -> bool:
        return self.cdn_key is not None and not self.cdn_private

    def copy(self) -> "CaSpec":
        return replace(self, dns=self.dns.copy())


@dataclass
class SnapshotSpec:
    """A complete generated snapshot: the market plus every website."""

    year: int
    websites: list[WebsiteSpec]
    dns_providers: dict[str, DnsProviderSpec]
    cdns: dict[str, CdnSpec]
    cas: dict[str, CaSpec]

    def website_by_domain(self) -> dict[str, WebsiteSpec]:
        return {w.domain: w for w in self.websites}

    def summary(self) -> dict[str, int]:
        """Quick counts used by tests and examples."""
        return {
            "websites": len(self.websites),
            "dns_providers": len(self.dns_providers),
            "cdns": len(self.cdns),
            "cas": len(self.cas),
            "https_sites": sum(1 for w in self.websites if w.https),
            "cdn_sites": sum(1 for w in self.websites if w.uses_cdn),
        }
