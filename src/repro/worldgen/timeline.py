"""N-epoch evolving world — the longitudinal generalization of evolve.py.

The one-shot 2016→2020 evolution is a single application of the paper's
Table 3-5 transition quotas. A :class:`Timeline` spreads those quotas over
``epochs`` snapshots: epoch 0 is the ordinary 2016 base snapshot, and each
later epoch applies

* one round of *slot-preserving* list churn (:func:`~repro.worldgen.alexa.
  churn_step` — a dead domain's rank slot is taken by its newcomer
  replacement, so survivor ranks are stable and the changed-site set stays
  proportional to the churn rate),
* provider-market drift: share weights, top biases and stapling rates are
  linearly interpolated between the epoch-0 market and a 2020 endpoint
  market, while *structural* fields (nameserver domains, CNAME suffixes,
  OCSP/CRL hosts, provider DNS arrangements) stay frozen at their
  first-seen values so an unchanged website measures byte-identically
  across epochs,
* the Table 3-5 transition quotas scaled by ``1/(epochs-1)``, plus the
  matching fraction of CDN and HTTPS adoption.

Every epoch's randomness comes from an independent stream derived as
``sha256(seed, epoch)`` via :class:`repro.faults.prng.SeededFaultSource`,
so epoch ``k`` is a pure function of the :class:`TimelineConfig` — the
same seed and epoch count give byte-identical worlds on any machine, at
any worker count, regardless of which epochs were built before.

Alongside each epoch the timeline emits an :class:`EpochChange`: the set
of domains whose ground-truth spec differs from the previous epoch (plus
the dead and newcomer lists). The incremental remeasurement scheduler
(:mod:`repro.engine.epochs`) re-measures exactly those sites and splices
everything else forward from the previous epoch's records.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.faults.prng import SeededFaultSource
from repro.worldgen.alexa import AlexaList, churn_step
from repro.worldgen.config import WorldConfig
from repro.worldgen.corner_cases import apply_corner_cases
from repro.worldgen.evolve import (
    HTTPS_TARGET_2020,
    _apply_website_transitions,
    _sanitize_against_market,
)
from repro.worldgen.generate import (
    build_ca_market,
    build_cdn_market,
    build_dns_market,
    generate_snapshot,
    generate_websites,
)
from repro.worldgen.materialize import materialize
from repro.worldgen.spec import (
    CaSpec,
    CdnSpec,
    DnsProviderSpec,
    SnapshotSpec,
)
from repro.worldgen.world import World


def _epoch_year(epoch: int, epochs: int) -> int:
    """Calendar label for an epoch: 2016..2020 spread evenly.

    The label drives the year-dependent pieces of the generator (rank
    curves, corner-case wiring picks 2016-style below 2020) — epoch 0 is
    always 2016 and the final epoch is always 2020, so the endpoints match
    the paper's snapshots whatever the epoch count.
    """
    if epochs <= 1 or epoch <= 0:
        return 2016
    return 2016 + round(4 * epoch / (epochs - 1))


@dataclass(frozen=True)
class TimelineConfig:
    """Everything that controls one N-epoch world lineage."""

    n_websites: int = 1_000
    seed: int = 42
    epochs: int = 4
    churn_rate: float = 0.10
    include_corner_cases: bool = True

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("a timeline needs at least one epoch")
        if not 0.0 <= self.churn_rate < 0.5:
            raise ValueError("per-epoch churn must be in [0, 0.5)")

    def world_config(self, epoch: int) -> WorldConfig:
        """The :class:`WorldConfig` labelling one epoch's world."""
        if not 0 <= epoch < self.epochs:
            raise ValueError(
                f"epoch {epoch} outside timeline of {self.epochs} epochs"
            )
        return WorldConfig(
            n_websites=self.n_websites,
            seed=self.seed,
            year=_epoch_year(epoch, self.epochs),
            include_corner_cases=self.include_corner_cases,
        )


@dataclass(frozen=True)
class EpochChange:
    """What moved between epoch ``epoch - 1`` and ``epoch``."""

    epoch: int
    year: int
    #: Sorted domains whose ground-truth spec differs from the previous
    #: epoch (newcomers included) — the remeasurement work list.
    changed: tuple[str, ...]
    dead: tuple[str, ...]
    newcomers: tuple[str, ...]


def _lerp(a: float, b: float, t: float) -> float:
    return a + (b - a) * t


def _blend_dns_market(
    m16: dict[str, DnsProviderSpec],
    m20: dict[str, DnsProviderSpec],
    t: float,
) -> dict[str, DnsProviderSpec]:
    out: dict[str, DnsProviderSpec] = {}
    for key in list(m16) + [k for k in m20 if k not in m16]:
        share = _lerp(
            m16[key].share_weight if key in m16 else 0.0,
            m20[key].share_weight if key in m20 else 0.0,
            t,
        )
        if share <= 0.0 and key not in m20:
            continue
        base = m16[key] if key in m16 else m20[key]
        tb16 = m16[key].top_bias if key in m16 else base.top_bias
        tb20 = m20[key].top_bias if key in m20 else base.top_bias
        out[key] = replace(
            base, share_weight=share, top_bias=_lerp(tb16, tb20, t)
        )
    return out


def _blend_cdn_market(
    m16: dict[str, CdnSpec], m20: dict[str, CdnSpec], t: float
) -> dict[str, CdnSpec]:
    out: dict[str, CdnSpec] = {}
    for key in list(m16) + [k for k in m20 if k not in m16]:
        share = _lerp(
            m16[key].share_weight if key in m16 else 0.0,
            m20[key].share_weight if key in m20 else 0.0,
            t,
        )
        if share <= 0.0 and key not in m20:
            continue
        base = m16[key] if key in m16 else m20[key]
        tb16 = m16[key].top_bias if key in m16 else base.top_bias
        tb20 = m20[key].top_bias if key in m20 else base.top_bias
        out[key] = replace(
            base.copy(), share_weight=share, top_bias=_lerp(tb16, tb20, t)
        )
    return out


def _blend_ca_market(
    m16: dict[str, CaSpec], m20: dict[str, CaSpec], t: float
) -> dict[str, CaSpec]:
    out: dict[str, CaSpec] = {}
    for key in list(m16) + [k for k in m20 if k not in m16]:
        share = _lerp(
            m16[key].share_weight if key in m16 else 0.0,
            m20[key].share_weight if key in m20 else 0.0,
            t,
        )
        if share <= 0.0 and key not in m20:
            continue
        base = m16[key] if key in m16 else m20[key]
        sr16 = m16[key].stapling_rate if key in m16 else base.stapling_rate
        sr20 = m20[key].stapling_rate if key in m20 else base.stapling_rate
        out[key] = replace(
            base.copy(),
            share_weight=share,
            stapling_rate=_lerp(sr16, sr20, t),
        )
    return out


class Timeline:
    """Lazily-built sequence of epoch snapshots plus their change sets."""

    def __init__(self, config: TimelineConfig):
        self.config = config
        self._source = SeededFaultSource(config.seed)
        self._specs: list[SnapshotSpec] = []
        self._changes: list[EpochChange] = []
        self._markets_2020: Optional[
            tuple[
                dict[str, DnsProviderSpec],
                dict[str, CdnSpec],
                dict[str, CaSpec],
            ]
        ] = None

    # -- epoch accessors ----------------------------------------------------

    def spec(self, epoch: int) -> SnapshotSpec:
        """Ground truth for one epoch (building predecessors as needed)."""
        if not 0 <= epoch < self.config.epochs:
            raise ValueError(
                f"epoch {epoch} outside timeline of {self.config.epochs} epochs"
            )
        while len(self._specs) <= epoch:
            self._build_next()
        return self._specs[epoch]

    def changes(self, epoch: int) -> EpochChange:
        """The changed/dead/newcomer sets entering one epoch."""
        self.spec(epoch)
        return self._changes[epoch]

    def world(self, epoch: int) -> World:
        """Materialize one epoch into a live measurable world.

        Each call materializes afresh: a live world is *stateful* (its
        resolver caches answers and its clock advances as measurements
        run), so sharing one instance between two campaigns would leak
        state from the first into the second and break reproducibility.
        """
        return World(
            materialize(self.spec(epoch)), self.config.world_config(epoch)
        )

    # -- construction -------------------------------------------------------

    def _endpoint_markets(
        self,
    ) -> tuple[
        dict[str, DnsProviderSpec], dict[str, CdnSpec], dict[str, CaSpec]
    ]:
        """The 2020 endpoint markets, built once from a dedicated stream."""
        if self._markets_2020 is None:
            rng = self._source.stream("market-2020")
            wconfig = replace(self.config.world_config(0), year=2020)
            dns = build_dns_market(wconfig, 2020, rng)
            cdn = build_cdn_market(wconfig, 2020, dns, rng)
            ca = build_ca_market(wconfig, 2020, dns, cdn, rng)
            self._markets_2020 = (dns, cdn, ca)
        return self._markets_2020

    def _build_next(self) -> None:
        epoch = len(self._specs)
        if epoch == 0:
            spec = generate_snapshot(self.config.world_config(0))
            domains = tuple(sorted(w.domain for w in spec.websites))
            self._specs.append(spec)
            self._changes.append(
                EpochChange(
                    epoch=0,
                    year=spec.year,
                    changed=domains,
                    dead=(),
                    newcomers=domains,
                )
            )
            return
        prev = self._specs[epoch - 1]
        spec, change = self._evolve_epoch(prev, epoch)
        self._specs.append(spec)
        self._changes.append(change)

    def _evolve_epoch(
        self, prev: SnapshotSpec, epoch: int
    ) -> tuple[SnapshotSpec, EpochChange]:
        cfg = self.config
        year = _epoch_year(epoch, cfg.epochs)
        steps = max(1, cfg.epochs - 1)
        t = epoch / steps
        rng = self._source.stream(f"epoch-{epoch}")
        wconfig = cfg.world_config(epoch)

        alexa_prev = AlexaList(
            year=prev.year, domains=[w.domain for w in prev.websites]
        )
        alexa_new, churn = churn_step(
            alexa_prev, rng, death_rate=cfg.churn_rate, year=year
        )

        spec0 = self._specs[0]
        dns20, cdn20, ca20 = self._endpoint_markets()
        dns_market = _blend_dns_market(spec0.dns_providers, dns20, t)
        cdn_market = _blend_cdn_market(spec0.cdns, cdn20, t)
        ca_market = _blend_ca_market(spec0.cas, ca20, t)

        dead = set(churn.dead)
        survivors = {
            w.domain: w.copy() for w in prev.websites if w.domain not in dead
        }
        rank_of = {
            domain: i + 1 for i, domain in enumerate(alexa_new.domains)
        }
        evolved = [
            survivors[d] for d in alexa_new.domains if d in survivors
        ]
        for website in evolved:
            website.rank = rank_of[website.domain]

        h0 = sum(1 for w in spec0.websites if w.https) / max(
            1, len(spec0.websites)
        )
        _apply_website_transitions(
            evolved,
            wconfig,
            dns_market,
            cdn_market,
            ca_market,
            rng,
            rate_scale=1.0 / steps,
            https_target=_lerp(h0, HTTPS_TARGET_2020, t),
            # One sigma of dead-band: per-epoch newcomer/quota draws move
            # each provider's marginal by sampling noise of ~sqrt(target);
            # without the band the rebalance would churn that many
            # customers every epoch just to undo it.
            rebalance_tolerance=1.0,
        )

        newcomer_specs = generate_websites(
            wconfig,
            AlexaList(year=year, domains=list(churn.newcomers)),
            year,
            dns_market,
            cdn_market,
            ca_market,
            rng,
        )
        for website in newcomer_specs:
            website.rank = rank_of[website.domain]
        websites = evolved + newcomer_specs
        websites.sort(key=lambda w: w.rank)

        spec = SnapshotSpec(
            year=year,
            websites=websites,
            dns_providers=dns_market,
            cdns=cdn_market,
            cas=ca_market,
        )
        if cfg.include_corner_cases:
            apply_corner_cases(spec, year)
        _sanitize_against_market(spec, rng, wconfig)

        prev_by_domain = prev.website_by_domain()
        changed = tuple(
            sorted(
                w.domain
                for w in spec.websites
                if w.domain not in prev_by_domain
                or prev_by_domain[w.domain] != w
            )
        )
        change = EpochChange(
            epoch=epoch,
            year=year,
            changed=changed,
            dead=tuple(churn.dead),
            newcomers=tuple(churn.newcomers),
        )
        return spec, change
