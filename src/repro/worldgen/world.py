"""The :class:`World`: a live simulated internet plus measurement handles.

Wraps a materialized snapshot with a caching resolver, a dig client, a web
client, and a crawler — the toolbox a vantage point has — plus fault
injection (provider outages) used by the incident-replay experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.dnssim.cache import DnsCache
from repro.dnssim.client import DigClient
from repro.dnssim.resolver import IterativeResolver
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.tlssim.validation import RevocationPolicy
from repro.websim.client import WebClient
from repro.websim.crawler import Crawler
from repro.worldgen.alexa import ListChurn
from repro.worldgen.config import WorldConfig
from repro.worldgen.evolve import evolve_to_2020
from repro.worldgen.generate import generate_snapshot
from repro.worldgen.materialize import MaterializedWorld, materialize
from repro.worldgen.spec import SnapshotSpec


@dataclass
class VantagePoint:
    """One measurement vantage: a region-tagged resolver and its tools."""

    region: Optional[str]
    resolver: IterativeResolver
    dig: DigClient
    web_client: WebClient
    crawler: Crawler


class World:
    """One live snapshot of the simulated internet."""

    def __init__(self, materialized: MaterializedWorld, config: WorldConfig):
        self._m = materialized
        self.config = config
        self.resolver = IterativeResolver(
            materialized.dns_network,
            materialized.root_hints,
            clock=materialized.clock,
        )
        self.dig = DigClient(self.resolver)
        self.web_client = WebClient(
            dns=self.dig,
            fabric=materialized.http_fabric,
            trust_store=materialized.trust_store,
            clock=materialized.clock,
            revocation_policy=RevocationPolicy.SOFT_FAIL,
        )
        self.crawler = Crawler(self.web_client, clock=materialized.clock)
        self.fault_injector: Optional[FaultInjector] = None

    # -- accessors ---------------------------------------------------------

    @property
    def spec(self) -> SnapshotSpec:
        return self._m.spec

    @property
    def year(self) -> int:
        return self._m.spec.year

    @property
    def clock(self):
        return self._m.clock

    @property
    def dns_network(self):
        return self._m.dns_network

    @property
    def http_fabric(self):
        return self._m.http_fabric

    @property
    def trust_store(self):
        return self._m.trust_store

    @property
    def dns_infra(self):
        return self._m.dns_infra

    @property
    def cdn_infra(self):
        return self._m.cdn_infra

    @property
    def ca_infra(self):
        return self._m.ca_infra

    @property
    def website_infra(self):
        return self._m.website_infra

    def fresh_client(
        self,
        policy: RevocationPolicy = RevocationPolicy.HARD_FAIL,
        region: Optional[str] = None,
    ) -> WebClient:
        """A new client with a cold resolver cache (an independent user),
        optionally resolving from a specific region (GeoDNS views)."""
        resolver = IterativeResolver(
            self._m.dns_network,
            self._m.root_hints,
            clock=self._m.clock,
            cache=DnsCache(self._m.clock),
            region=region,
        )
        return WebClient(
            dns=DigClient(resolver),
            fabric=self._m.http_fabric,
            trust_store=self._m.trust_store,
            clock=self._m.clock,
            revocation_policy=policy,
        )

    def vantage(self, region: Optional[str]) -> "VantagePoint":
        """A full measurement vantage (resolver/dig/client/crawler) in
        ``region`` — the multi-vantage extension of the paper's §3.5."""
        resolver = IterativeResolver(
            self._m.dns_network,
            self._m.root_hints,
            clock=self._m.clock,
            cache=DnsCache(self._m.clock),
            region=region,
        )
        dig = DigClient(resolver)
        client = WebClient(
            dns=dig,
            fabric=self._m.http_fabric,
            trust_store=self._m.trust_store,
            clock=self._m.clock,
            revocation_policy=RevocationPolicy.SOFT_FAIL,
        )
        return VantagePoint(
            region=region,
            resolver=resolver,
            dig=dig,
            web_client=client,
            crawler=Crawler(client, clock=self._m.clock),
        )

    # -- fault injection -----------------------------------------------------

    def install_faults(self, plan: FaultPlan) -> Optional[FaultInjector]:
        """Thread a seeded fault plan through every simulated layer.

        An empty plan is equivalent to :meth:`clear_faults`: all fast
        paths stay fault-free and output is byte-identical to a run that
        never called this.
        """
        plan.validate()
        if plan.empty:
            self.clear_faults()
            return None
        injector = FaultInjector(plan)
        self.fault_injector = injector
        self._m.dns_network.install_faults(injector, self._m.clock)
        self._m.http_fabric.install_faults(injector)
        for infra in self._m.ca_infra.values():
            responder = infra.ca.ocsp_responder
            responder.fault_injector = injector
            responder.fault_host = infra.spec.ocsp_host
            cdp = infra.ca.cdp
            cdp.fault_injector = injector
            cdp.fault_host = infra.spec.crl_host
        return injector

    def clear_faults(self) -> None:
        """Detach any installed fault injector from every layer."""
        self.fault_injector = None
        self._m.dns_network.install_faults(None, None)
        self._m.http_fabric.install_faults(None)
        for infra in self._m.ca_infra.values():
            infra.ca.ocsp_responder.fault_injector = None
            infra.ca.cdp.fault_injector = None

    def take_down_dns_provider(self, key: str, available: bool = False) -> None:
        """Stop (or restore) every nameserver a managed-DNS provider runs.

        This is the Dyn scenario: the provider's listener IPs stop
        answering; zones hosted *only* there become unresolvable.
        """
        infra = self._m.dns_infra[key]
        for server in infra.servers:
            self._m.dns_network.set_server_available(server, available)

    def take_down_cdn(self, key: str, available: bool = False) -> None:
        """Stop (or restore) a CDN's edge servers."""
        infra = self._m.cdn_infra[key]
        self._m.http_fabric.set_server_available(infra.edge_server, available)

    def take_down_ca(self, key: str, available: bool = False) -> None:
        """Stop (or restore) a CA's directly-hosted revocation endpoints.

        Endpoints deployed on a CDN keep serving — which is the CA→CDN
        dependency cutting the other way.
        """
        infra = self._m.ca_infra[key]
        if infra.service_server is not None:
            self._m.http_fabric.set_server_available(
                infra.service_server, available
            )

    def misconfigure_ca_revocations(self, key: str, broken: bool = True) -> None:
        """Flip a CA's OCSP responder into revoke-everything mode — the
        GlobalSign 2016 incident."""
        self._m.ca_infra[key].ca.ocsp_responder.misconfigured_revoke_all = broken

    def restore_all(self) -> None:
        """Bring every failed component back."""
        for ip in list(self._m.dns_network.down_ips()):
            self._m.dns_network.set_ip_available(ip, True)
        for infra in self._m.cdn_infra.values():
            self._m.http_fabric.set_server_available(infra.edge_server, True)
        for infra in self._m.ca_infra.values():
            if infra.service_server is not None:
                self._m.http_fabric.set_server_available(
                    infra.service_server, True
                )

    def __repr__(self) -> str:
        return (
            f"World(year={self.year}, websites={len(self.spec.websites)}, "
            f"dns_providers={len(self.spec.dns_providers)}, "
            f"cdns={len(self.spec.cdns)}, cas={len(self.spec.cas)})"
        )


def build_world(config: Optional[WorldConfig] = None) -> World:
    """Generate, (optionally) evolve, and materialize one world."""
    config = config or WorldConfig()
    if config.year == 2016:
        spec = generate_snapshot(config)
    elif config.year == 2020:
        base = generate_snapshot(replace(config, year=2016))
        spec, _ = evolve_to_2020(base, config)
    else:
        raise ValueError(
            "build_world only knows the paper's endpoint snapshots; "
            "intermediate years come from repro.worldgen.timeline"
        )
    return World(materialize(spec), config)


def build_world_pair(
    config: Optional[WorldConfig] = None,
) -> tuple[World, World, ListChurn]:
    """The 2016 and 2020 worlds sharing one evolved population."""
    config = config or WorldConfig()
    base_config = replace(config, year=2016)
    spec_2016 = generate_snapshot(base_config)
    spec_2020, churn = evolve_to_2020(spec_2016, config)
    world_2016 = World(materialize(spec_2016), base_config)
    world_2020 = World(materialize(spec_2020), replace(config, year=2020))
    return world_2016, world_2020, churn
