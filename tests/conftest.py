"""Shared fixtures: session-scoped worlds so integration tests are fast.

The small world (600 sites) is enough for structural assertions; rate
assertions use loose bounds at this scale and are tightened in the
benchmarks, which run at larger N.
"""

from __future__ import annotations

import pytest

from repro import WorldConfig, analyze_world, build_world, build_world_pair

SMALL_N = 600
SEED = 11


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden-corpus files under tests/goldens/ "
        "instead of comparing against them",
    )


@pytest.fixture(scope="session")
def regen_goldens(request) -> bool:
    return request.config.getoption("--regen-goldens")


@pytest.fixture(scope="session")
def world_2020():
    return build_world(WorldConfig(n_websites=SMALL_N, seed=SEED))


@pytest.fixture(scope="session")
def snapshot_2020(world_2020):
    return analyze_world(world_2020)


@pytest.fixture(scope="session")
def world_pair():
    return build_world_pair(WorldConfig(n_websites=SMALL_N, seed=SEED))


@pytest.fixture(scope="session")
def snapshot_pair(world_pair):
    world_2016, world_2020, _churn = world_pair
    return analyze_world(world_2016), analyze_world(world_2020)
