"""Bad fixture: REP006 — the analysis core growing an observability
dependency (legal by the layer DAG, forbidden by contract)."""

from repro.telemetry.metrics import MetricsRegistry


def classify_and_count(records):
    registry = MetricsRegistry()
    for record in records:
        registry.count("records")
    return registry
