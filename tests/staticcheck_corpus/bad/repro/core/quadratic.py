"""Quadratic patterns on provably-list values (REP010)."""


def drain(events: list) -> int:
    total = 0
    while events:
        total += events.pop(0)
    return total


def count_known(queries, known: list) -> int:
    hits = 0
    for query in queries:
        if query in known:
            hits += 1
    return hits


def schedule(jobs: list) -> list:
    done = []
    while jobs:
        job = min(jobs)
        jobs.remove(job)
        done.append(job)
    return done


def pairs(nodes: list) -> list:
    out = []
    for a in nodes:
        for b in nodes:
            out.append((a, b))
    return out
