"""Bad fixture: REP003 — a simulator reaching up and sideways."""

import repro.tlssim
from repro.engine.plan import plan_campaign

__all__ = ["plan_campaign", "repro"]
