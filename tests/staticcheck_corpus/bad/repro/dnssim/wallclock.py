"""Bad fixture: REP001 — ambient nondeterminism in measurement code."""

import os
import random
import time
import uuid
from random import random as rand


def stamp():
    started = time.time()
    nonce = os.urandom(8)
    token = uuid.uuid4()
    rng = random.Random()
    jitter = random.random()
    return started, nonce, token, rng, jitter, rand
