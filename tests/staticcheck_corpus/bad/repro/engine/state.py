"""Worker task that mutates module state through a helper (REP009).

The task itself never touches ``_RESULTS`` — it calls ``_record``,
which does. REP004's direct-rebind check cannot see that; the REP009
call-graph reachability walk can.
"""

_RESULTS: dict = {}


def _record(key, value):
    _RESULTS[key] = value


def run_shard(shard):
    value = len(shard)
    _record(shard, value)
    return value


def launch(pool, shards):
    return list(pool.imap(run_shard, shards))
