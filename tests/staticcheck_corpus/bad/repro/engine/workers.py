"""Bad fixture: REP004 — unpicklable and state-mutating workers."""

_CACHE = {}


def run(pool, shards):
    def measure(shard):
        return shard

    list(pool.imap_unordered(lambda shard: shard, shards))
    list(pool.map(measure, shards))
    return pool.submit(run_shard, shards)


def run_shard(shard):
    global _CACHE
    _CACHE = {}
    return shard
