"""Bad fixture: REP002 — set iteration order leaking into output."""


def emit(hostnames: set) -> list:
    rows = [host for host in hostnames]
    for host in hostnames:
        rows.append(host)
    return rows


def render(tags: frozenset) -> str:
    return ",".join(tags)


def header_row(columns: set) -> str:
    # dict.fromkeys inherits the set's (non)order; REP002's syntactic
    # tracker loses the trail here — only REP008's flow analysis keeps it.
    ordered = dict.fromkeys(columns)
    return "|".join(ordered)
