"""Bad fixture: REP002 — set iteration order leaking into output."""


def emit(hostnames: set) -> list:
    rows = [host for host in hostnames]
    for host in hostnames:
        rows.append(host)
    return rows


def render(tags: frozenset) -> str:
    return ",".join(tags)
