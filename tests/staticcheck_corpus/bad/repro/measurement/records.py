"""Bad fixture: REP005 — record-contract violations."""

from dataclasses import dataclass


@dataclass
class MutableRecord:
    domain: str

    def to_dict(self):
        return {"domain": self.domain}

    @classmethod
    def from_dict(cls, data):
        return cls(domain=data["domain"])


@dataclass(frozen=True)
class DriftingRecord:
    domain: str
    rank: int

    def to_dict(self):
        return {"domain": self.domain, "extra": 1}

    @classmethod
    def from_dict(cls, data):
        return cls(domain=data["domain"], rank=0)
