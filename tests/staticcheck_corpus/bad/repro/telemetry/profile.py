"""Wall-clock profiler that launders elapsed time into its serialized
form.

``repro.telemetry.profile`` is the quarantined wall-clock module, so
REP001 and REP006 both *allow* the ``time.time()`` reads below. Only
the REP007 taint analysis sees that the value then flows — through two
locals — into ``to_dict``'s return, i.e. into a serialized artifact.
"""

import time


class PhaseTimer:
    def __init__(self) -> None:
        self.started = time.time()

    def to_dict(self) -> dict:
        elapsed = time.time()
        payload = {"phase": "run", "elapsed": elapsed}
        return payload
