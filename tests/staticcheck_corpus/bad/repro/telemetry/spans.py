"""Bad fixture: REP006 — wall-clock values on the serialization path."""

import time

from repro.telemetry.profile import PhaseTimer


def stamp_span(span):
    span.start = time.monotonic()
    span.timer = PhaseTimer()
    return span
