"""Good fixture: linear counterparts to the REP010 quadratic smells."""

from collections import deque


def drain(events: list) -> int:
    queue = deque(events)
    total = 0
    while queue:
        total += queue.popleft()
    return total


def count_known(queries, known: list) -> int:
    known_set = set(known)
    hits = 0
    for query in queries:
        if query in known_set:
            hits += 1
    return hits


def schedule(jobs: list) -> list:
    return sorted(jobs)
