"""Good fixture: the analysis core as a pure function of records —
no observability dependency (REP006 keeps core ↛ telemetry)."""


def count_critical(records):
    return sum(1 for record in records if record.is_critical)
