"""Good fixture: the allowlisted clock module may read ``time.*``."""

import time


def now() -> float:
    return time.monotonic()
