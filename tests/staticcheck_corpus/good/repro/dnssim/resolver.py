"""Good fixture: seeded randomness and strictly-downward imports."""

import random

from repro.names import psl

__all__ = ["psl", "shuffled"]


def shuffled(items: list, seed: int) -> list:
    rng = random.Random(seed)
    out = list(items)
    rng.shuffle(out)
    return out
