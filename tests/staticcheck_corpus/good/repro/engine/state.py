"""Good fixture: workers read module state seeded by the initializer.

The initializer is the one sanctioned place to rebind module state
(REP004), and the task only *reads* ``_WORLD`` — so the REP009
reachability walk finds no mutation.
"""

_WORLD = None


def _init_worker(world):
    global _WORLD
    _WORLD = world


def run_shard(shard):
    return 0 if _WORLD is None else len(shard)


def launch(pool_cls, world, shards):
    with pool_cls(initializer=_init_worker, initargs=(world,)) as pool:
        return list(pool.imap(run_shard, shards))
