"""Good fixture: REP004 — module-level, initializer-disciplined workers."""

_CONFIG = None


def _init_worker(config):
    global _CONFIG
    _CONFIG = config


def measure_shard(shard):
    return (_CONFIG, shard)


def run(pool_factory, shards, config):
    pool = pool_factory(initializer=_init_worker, initargs=(config,))
    return list(pool.imap_unordered(measure_shard, shards))
