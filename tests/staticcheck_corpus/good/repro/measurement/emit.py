"""Good fixture: REP002 — ``sorted()`` at every set-iteration point,
plus one justified suppression (exercises the noqa path end to end)."""


def emit(hostnames: set) -> list:
    rows = [host for host in sorted(hostnames)]
    if len(hostnames) and "www" in hostnames:
        rows.append("www")
    return rows


def render(tags: frozenset) -> str:
    return ",".join(sorted(tags))


def digest(tags: set) -> int:
    total = 0
    for tag in tags:  # repro: noqa[REP002] -- XOR fold is order-insensitive
        total ^= len(tag)
    return total
