"""Good fixture: sanitized order flows REP007/REP008 must not flag.

``checksum`` is the pattern the flow-sensitive REP008 exists for: the
syntactic REP002 cannot tell an XOR fold from an order leak (hence the
waiver), but REP008 stays quiet on its own because ``iterorder`` taint
does not survive commutative accumulation.
"""


def hostnames_in_order(hostnames: set) -> list:
    out = []
    for name in sorted(hostnames):
        out.append(name)
    return out


def tag_line(tags: set) -> str:
    return ",".join(sorted(tags))


def checksum(values: set) -> int:
    total = 0
    for value in values:  # repro: noqa[REP002] -- XOR fold is order-insensitive; REP008 agrees by analysis
        total ^= value
    return total
