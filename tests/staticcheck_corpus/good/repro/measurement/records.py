"""Good fixture: REP005 — a contract-compliant record."""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GoodRecord:
    domain: str
    rank: int = 0
    tags: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "domain": self.domain,
            "rank": self.rank,
            "tags": list(self.tags),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GoodRecord":
        return cls(
            domain=data["domain"],
            rank=data["rank"],
            tags=list(data.get("tags", [])),
        )
