"""Good fixture: the quarantined wall-clock side of telemetry.

``repro.telemetry.profile`` is the one telemetry module allowed to read
real time (REP001 allowlist); its values are operator-facing only and
never serialized, so REP006 does not police it.
"""

import time


class PhaseTimer:
    def __init__(self):
        self._start = time.monotonic()

    def elapsed(self):
        return time.monotonic() - self._start
