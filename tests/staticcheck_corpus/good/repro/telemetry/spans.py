"""Good fixture: spans stamped from an injected simulated clock only."""


class Tracer:
    def __init__(self, now):
        self._now = now
        self.spans = []

    def open_span(self, name):
        self.spans.append((name, self._now()))
