"""Tests for the table/figure builders and rendering."""

import pytest

from repro.analysis import (
    figure2_dns_by_rank,
    figure3_cdn_by_rank,
    figure4_ca_by_rank,
    figure5_dependency_graphs,
    figure6_provider_cdfs,
    figure7_ca_dns_amplification,
    figure8_ca_cdn_amplification,
    figure9_cdn_dns_amplification,
    render_figure,
    render_table,
    table1_dataset_summary,
    table2_comparison_summary,
    table3_dns_trends,
    table4_cdn_trends,
    table5_ca_trends,
    table6_interservice_summary,
    table7_ca_dns_trends,
    table8_ca_cdn_trends,
    table9_cdn_dns_trends,
    table10_hospitals,
    table11_smart_home,
)
from repro.analysis.artifacts import TableArtifact
from repro.worldgen.case_studies import smart_home_companies


class TestTableArtifacts:
    def test_table1(self, snapshot_2020):
        table = table1_dataset_summary(snapshot_2020)
        assert len(table.rows) == 5
        measured_pct = dict(
            (row[0], row[2]) for row in table.rows
        )
        assert measured_pct["Websites supporting HTTPS"] == pytest.approx(78, abs=6)

    def test_table2(self, snapshot_pair):
        old, new = snapshot_pair
        table = table2_comparison_summary(old, new)
        assert len(table.rows) == 5
        assert any("no longer exist" in note for note in table.notes)

    def test_trend_tables_have_paper_rows(self, snapshot_pair):
        old, new = snapshot_pair
        for build in (table3_dns_trends, table4_cdn_trends, table5_ca_trends):
            table = build(old, new)
            assert table.paper_rows is not None
            assert len(table.paper_rows) == len(table.rows)

    def test_table6(self, snapshot_2020):
        table = table6_interservice_summary(snapshot_2020)
        rows = {row[0]: row for row in table.rows}
        assert set(rows) == {"CDN -> DNS", "CA -> DNS", "CA -> CDN"}
        for row in table.rows:
            total, third, critical = row[1], row[2], row[4]
            assert 0 <= critical <= third <= total

    def test_interservice_trend_tables(self, snapshot_pair):
        old, new = snapshot_pair
        for build in (table7_ca_dns_trends, table8_ca_cdn_trends, table9_cdn_dns_trends):
            table = build(old, new)
            assert len(table.rows) == 5

    def test_table11_static(self):
        table = table11_smart_home(smart_home_companies())
        rows = {row[0]: row for row in table.rows}
        # Calibrated to the paper: 21/23 third-party DNS, 8 critical...
        assert rows["DNS"][1] == 21
        assert rows["DNS"][5] == pytest.approx(34.7, abs=0.5)
        # ...15 third-party cloud, 5 critical.
        assert rows["Cloud"][1] == 15
        assert rows["Cloud"][4] == 5

    def test_add_row_validates_width(self):
        table = TableArtifact(id="x", title="t", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)


class TestFigureArtifacts:
    def test_bucket_figures(self, snapshot_2020):
        for build in (figure2_dns_by_rank, figure3_cdn_by_rank, figure4_ca_by_rank):
            figure = build(snapshot_2020)
            assert figure.series
            for series in figure.series.values():
                assert [x for x, _ in series] == [100, 1000, 10000, 100000]
            assert figure.paper_stats

    def test_figure5(self, snapshot_2020):
        figure = figure5_dependency_graphs(snapshot_2020)
        assert "dns_concentration" in figure.series
        assert len(figure.series["dns_concentration"]) == 5
        assert figure.stats["websites"] == len(snapshot_2020.websites)

    def test_figure6(self, snapshot_pair):
        old, new = snapshot_pair
        figure = figure6_provider_cdfs(old, new)
        assert "dns_2016" in figure.series and "ca_2020" in figure.series
        # The DNS tail collapse: far fewer providers needed for 80% in 2020.
        assert (
            figure.stats["dns_2020_providers_for_80pct"]
            < figure.stats["dns_2016_providers_for_80pct"]
        )

    def test_figure7_amplification(self, snapshot_2020):
        figure = figure7_ca_dns_amplification(snapshot_2020)
        assert (
            figure.stats["top3_impact_with_indirect"]
            > figure.stats["top3_impact_direct"]
        )

    def test_figure8_amplification(self, snapshot_2020):
        figure = figure8_ca_cdn_amplification(snapshot_2020)
        assert (
            figure.stats["top3_impact_with_indirect"]
            >= figure.stats["top3_impact_direct"] + 10.0
        )

    def test_figure9_null_result(self, snapshot_2020):
        figure = figure9_cdn_dns_amplification(snapshot_2020)
        # Major CDNs run private DNS: amplification should be small.
        delta = (
            figure.stats["top3_impact_with_indirect"]
            - figure.stats["top3_impact_direct"]
        )
        assert abs(delta) <= 6.0


class TestRendering:
    def test_render_table_text(self, snapshot_2020):
        text = render_table(table1_dataset_summary(snapshot_2020))
        assert "table1" in text and "paper" in text.lower()

    def test_render_figure_text(self, snapshot_2020):
        text = render_figure(figure2_dns_by_rank(snapshot_2020))
        assert "figure2" in text and "stats:" in text

    def test_render_handles_missing_values(self):
        table = TableArtifact(id="x", title="t", columns=["a"])
        table.add_row(None)
        assert "-" in render_table(table)
