"""Tests for CSV export of artifacts."""

import csv
import io

import pytest

from repro.analysis import figure2_dns_by_rank, table1_dataset_summary
from repro.analysis.export import (
    artifact_to_csv,
    export_artifact,
    figure_to_csv,
    table_to_csv,
)


class TestTableCsv:
    def test_parses_back(self, snapshot_2020):
        table = table1_dataset_summary(snapshot_2020)
        rows = list(csv.reader(io.StringIO(table_to_csv(table))))
        assert rows[0] == table.columns
        assert len(rows) >= 1 + len(table.rows)

    def test_none_becomes_empty(self, snapshot_2020):
        from repro.analysis.artifacts import TableArtifact

        table = TableArtifact(id="t", title="t", columns=["a", "b"])
        table.add_row("x", None)
        rows = list(csv.reader(io.StringIO(table_to_csv(table))))
        assert rows[1] == ["x", ""]


class TestFigureCsv:
    def test_long_format(self, snapshot_2020):
        figure = figure2_dns_by_rank(snapshot_2020)
        rows = list(csv.reader(io.StringIO(figure_to_csv(figure))))
        assert rows[0] == ["series", "x", "y"]
        point_rows = [r for r in rows[1:] if len(r) == 3 and r[0] in figure.series]
        total_points = sum(len(p) for p in figure.series.values())
        assert len(point_rows) == total_points

    def test_stats_appended(self, snapshot_2020):
        figure = figure2_dns_by_rank(snapshot_2020)
        text = figure_to_csv(figure)
        assert "third_party_top100k" in text


class TestDispatchAndFiles:
    def test_dispatch(self, snapshot_2020):
        assert "series" in artifact_to_csv(figure2_dns_by_rank(snapshot_2020))
        assert "population" in artifact_to_csv(table1_dataset_summary(snapshot_2020))
        with pytest.raises(TypeError):
            artifact_to_csv("not an artifact")  # type: ignore[arg-type]

    def test_export_to_directory(self, snapshot_2020, tmp_path):
        path = export_artifact(table1_dataset_summary(snapshot_2020), tmp_path)
        assert path.name == "table1.csv"
        assert path.read_text().startswith("population")
