"""Tests for the whole-paper report builder."""

import pytest

from repro.analysis.report import PaperReport, build_report, export_report_csvs


class TestBuildReport:
    def test_single_snapshot_subset(self, snapshot_2020):
        report = build_report(snapshot_2020)
        assert {"table1", "table6", "table11"} <= set(report.tables)
        assert "table2" not in report.tables  # needs the 2016 snapshot
        assert {"figure2", "figure5", "figure8"} <= set(report.figures)
        assert "figure6" not in report.figures

    def test_pair_builds_everything_but_hospitals(self, snapshot_pair):
        old, new = snapshot_pair
        report = build_report(new, snapshot_2016=old)
        assert len(report.tables) == 10  # all but table10
        assert len(report.figures) == 8

    def test_markdown_rendering(self, snapshot_2020):
        report = build_report(snapshot_2020)
        markdown = report.to_markdown(title="Test run")
        assert markdown.startswith("# Test run")
        assert "table1" in markdown and "figure2" in markdown

    def test_write_markdown(self, snapshot_2020, tmp_path):
        report = build_report(snapshot_2020)
        path = report.write_markdown(tmp_path / "report.md")
        assert path.read_text().startswith("# Paper artifacts")

    def test_csv_export(self, snapshot_2020, tmp_path):
        report = build_report(snapshot_2020)
        paths = export_report_csvs(report, tmp_path)
        assert len(paths) == len(report.artifacts())
        assert all(p.exists() for p in paths)

    def test_empty_report(self):
        report = PaperReport()
        assert report.artifacts() == []
        assert report.to_markdown().startswith("# Paper artifacts")
