"""Tests for repro.cascade: engine, config, attribution, report, export.

The heavyweight pieces run on the shared session world (600 sites).
The structural pieces use tiny hand-built graphs via the config layer
only — the engine itself always runs over an analyzed snapshot.
"""

from __future__ import annotations

import io
import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.cascade import (
    CascadeConfig,
    CascadeConfigError,
    CascadeEngine,
    NodeState,
    Shock,
    blast_radius_by_root,
    build_report,
    ca_outage_config,
    cdn_outage_config,
    dns_outage_config,
    query_loop,
    render_report,
    trajectory_from_json,
    trajectory_to_json,
    validate_static_equivalence,
    why,
)
from repro.cascade.export import TrajectoryFormatError
from repro.failures import predicted_dns_victims

GOLDEN_DIR = Path(__file__).parent / "goldens"
CASCADE_GOLDEN = GOLDEN_DIR / "cascade_dyn.json"


@pytest.fixture(scope="module")
def dyn_config(world_2020):
    return dns_outage_config(world_2020, "dyn")


@pytest.fixture(scope="module")
def dyn_trajectory(snapshot_2020, dyn_config):
    return CascadeEngine(snapshot_2020, dyn_config).run()


class TestShock:
    def test_label_defaults_to_target(self):
        assert Shock("dns", "dynect.net").label == "dns:dynect.net"
        assert Shock("dns", "dynect.net", name="x").label == "x"

    def test_active_window(self):
        shock = Shock("dns", "dynect.net", tick=2, duration=3)
        assert [shock.active_at(t) for t in range(7)] == [
            False, False, True, True, True, False, False,
        ]

    def test_permanent_shock_never_lifts(self):
        shock = Shock("dns", "dynect.net", tick=1)
        assert shock.active_at(1) and shock.active_at(10_000)

    def test_validation(self):
        assert Shock("dns", "dynect.net").validate() == []
        assert Shock("smtp", "x").validate()
        assert Shock("dns", "").validate()
        assert Shock("dns", "x", tick=-1).validate()
        assert Shock("dns", "x", duration=0).validate()


class TestCascadeConfig:
    def test_defaults_are_valid_with_a_shock(self):
        config = CascadeConfig(shocks=(Shock("dns", "dynect.net"),))
        assert config.validate() == []

    def test_needs_a_shock(self):
        assert "at least one shock" in "; ".join(CascadeConfig().validate())

    def test_rejects_out_of_range_knobs(self):
        shocks = (Shock("dns", "dynect.net"),)
        assert CascadeConfig(shocks=shocks, alpha=1.5).validate()
        assert CascadeConfig(shocks=shocks, threshold=0.0).validate()
        assert CascadeConfig(shocks=shocks, cooldown=-2).validate()
        assert CascadeConfig(shocks=shocks, heal_to=0.1).validate()
        assert CascadeConfig(shocks=shocks, ticks=0).validate()
        assert CascadeConfig(shocks=shocks, noncritical_weight=1.0).validate()
        assert CascadeConfig(shocks=shocks, jitter=0.6).validate()
        assert CascadeConfig(shocks=shocks, tick_duration=0.0).validate()

    def test_rejects_duplicate_shock_labels(self):
        shocks = (Shock("dns", "a", name="x"), Shock("cdn", "b", name="x"))
        assert any(
            "duplicate" in problem
            for problem in CascadeConfig(shocks=shocks).validate()
        )

    def test_json_round_trip_preserves_digest(self):
        config = CascadeConfig(
            shocks=(Shock("dns", "dynect.net", tick=2, duration=5),),
            alpha=0.8,
            cooldown=3,
            jitter=0.1,
            seed=7,
        )
        restored = CascadeConfig.from_json(config.to_json())
        assert restored == config
        assert restored.digest() == config.digest()

    def test_digest_tracks_every_knob(self):
        base = CascadeConfig(shocks=(Shock("dns", "dynect.net"),))
        assert base.digest() != replace(base, alpha=0.9).digest()
        assert base.digest() != replace(base, seed=1).digest()

    def test_from_json_rejects_garbage(self):
        with pytest.raises(CascadeConfigError):
            CascadeConfig.from_json("not json")
        with pytest.raises(CascadeConfigError):
            CascadeConfig.from_json("[1, 2]")
        with pytest.raises(CascadeConfigError):
            CascadeConfig.from_json(json.dumps({"alpha": 2.0}))

    def test_static_equivalent_regime(self):
        shocks = (Shock("dns", "dynect.net"),)
        assert CascadeConfig(shocks=shocks).static_equivalent
        assert not CascadeConfig(shocks=shocks, cooldown=3).static_equivalent
        assert not CascadeConfig(shocks=shocks, alpha=0.9).static_equivalent
        assert not CascadeConfig(shocks=shocks, jitter=0.1).static_equivalent
        # redundant damage that can cross the failure line breaks it
        assert not CascadeConfig(
            shocks=shocks, noncritical_weight=0.5
        ).static_equivalent
        lifted = (Shock("dns", "dynect.net", duration=5),)
        assert not CascadeConfig(shocks=lifted).static_equivalent


class TestEngineDynScenario:
    def test_quiesces_and_latches(self, dyn_trajectory):
        assert dyn_trajectory.quiesced_at is not None
        assert dyn_trajectory.ticks_run <= dyn_trajectory.config.ticks
        # no recovery: the failed set never shrinks, tick over tick
        previous: set = set()
        for tick in range(dyn_trajectory.ticks_run):
            current = set(dyn_trajectory.failed_sites(tick))
            assert previous <= current
            previous = current

    def test_endpoint_equals_static_prediction(
        self, snapshot_2020, world_2020, dyn_config, dyn_trajectory
    ):
        equivalence = validate_static_equivalence(
            snapshot_2020, world_2020, "dyn",
            config=dyn_config, trajectory=dyn_trajectory,
        )
        assert equivalence.consistent, (
            equivalence.only_cascade, equivalence.only_predicted
        )
        predicted = predicted_dns_victims(
            snapshot_2020, world_2020, "dyn", critical_only=True
        )
        assert dyn_trajectory.failed_sites() == sorted(predicted)
        assert len(predicted) > 0  # the scenario must actually bite

    def test_byte_identical_across_runs(self, snapshot_2020, dyn_config):
        first = CascadeEngine(snapshot_2020, dyn_config).run()
        second = CascadeEngine(snapshot_2020, dyn_config).run()
        assert trajectory_to_json(first) == trajectory_to_json(second)

    def test_every_casualty_has_a_cause(self, dyn_trajectory):
        for domain in dyn_trajectory.failed_sites():
            cause = dyn_trajectory.causes[domain]
            assert cause.roots
            assert cause.via is not None

    def test_health_point_queries(self, dyn_trajectory):
        shocked = dyn_trajectory.config.shocks[0]
        node = f"{shocked.service}:{shocked.provider}"
        assert dyn_trajectory.health_at(node, 0) == 0.0
        assert dyn_trajectory.state_at(node, 0) is NodeState.FAILED
        # an untouched node reads healthy at every tick
        untouched = next(
            site for site in dyn_trajectory.websites
            if site not in dyn_trajectory.causes
        )
        assert dyn_trajectory.health_at(untouched, 0) == 1.0
        assert dyn_trajectory.final_state(untouched) is NodeState.HEALTHY

    def test_transitions_are_band_crossings(self, dyn_trajectory):
        for transition in dyn_trajectory.transitions:
            assert transition.from_state is not transition.to_state
            assert 0 <= transition.tick < dyn_trajectory.ticks_run

    def test_unknown_shock_target_rejected(self, snapshot_2020):
        config = CascadeConfig(shocks=(Shock("dns", "no-such-provider.net"),))
        with pytest.raises(CascadeConfigError, match="unknown provider"):
            CascadeEngine(snapshot_2020, config)

    def test_duplicate_shock_targets_rejected(self, snapshot_2020, dyn_config):
        doubled = replace(
            dyn_config,
            shocks=dyn_config.shocks + tuple(
                replace(shock, name=shock.name + ":again")
                for shock in dyn_config.shocks
            ),
        )
        with pytest.raises(CascadeConfigError, match="multiple shocks"):
            CascadeEngine(snapshot_2020, doubled)

    def test_invalid_config_rejected_at_construction(self, snapshot_2020):
        with pytest.raises(CascadeConfigError):
            CascadeEngine(snapshot_2020, CascadeConfig())


class TestRecovery:
    def test_lifted_shock_heals_everything(self, snapshot_2020, world_2020):
        config = dns_outage_config(
            world_2020, "dyn", duration=5, cooldown=3, heal_to=1.0
        )
        trajectory = CascadeEngine(snapshot_2020, config).run()
        assert trajectory.quiesced_at is not None
        peak = max(
            len(trajectory.failed_sites(tick))
            for tick in range(trajectory.ticks_run)
        )
        assert peak > 0
        assert trajectory.failed_sites() == []
        assert trajectory.degraded_sites() == []
        # recovery transitions exist (failed -> healthy/degraded)
        assert any(
            t.from_state is NodeState.FAILED for t in trajectory.transitions
        )

    def test_cooldown_is_honored(self, snapshot_2020, world_2020):
        config = dns_outage_config(
            world_2020, "dyn", duration=2, cooldown=6, heal_to=1.0
        )
        trajectory = CascadeEngine(snapshot_2020, config).run()
        shocked = f"dns:{config.shocks[0].provider}"
        # pinned for ticks 0-1, then must stay down until >= 6 ticks
        # after it first failed (tick 0), i.e. heal no earlier than t6.
        for tick in range(6):
            assert trajectory.state_at(shocked, tick) is NodeState.FAILED
        assert trajectory.final_state(shocked) is NodeState.HEALTHY

    def test_partial_heal_reenters_at_heal_to(self, snapshot_2020, world_2020):
        config = dns_outage_config(
            world_2020, "dyn", duration=3, cooldown=1, heal_to=0.8
        )
        trajectory = CascadeEngine(snapshot_2020, config).run()
        shocked = f"dns:{config.shocks[0].provider}"
        recovery = next(
            t for t in trajectory.transitions
            if t.node == shocked and t.from_state is NodeState.FAILED
        )
        # comes back at heal_to (degraded), then converges to what its
        # healthy dependencies support
        assert recovery.health == 0.8
        assert recovery.to_state is NodeState.DEGRADED
        assert trajectory.final_state(shocked) is NodeState.HEALTHY


class TestScenarioBuilders:
    def test_unknown_keys_rejected(self, world_2020):
        with pytest.raises(CascadeConfigError):
            dns_outage_config(world_2020, "nope")
        with pytest.raises(CascadeConfigError):
            cdn_outage_config(world_2020, "nope")
        with pytest.raises(CascadeConfigError):
            ca_outage_config(world_2020, "nope")

    def test_cdn_and_ca_scenarios_run(self, snapshot_2020, world_2020):
        for config in (
            cdn_outage_config(world_2020, "akamai"),
            ca_outage_config(world_2020, "digicert"),
        ):
            trajectory = CascadeEngine(snapshot_2020, config).run()
            assert trajectory.quiesced_at is not None

    def test_validate_refuses_non_equivalent_config(
        self, snapshot_2020, world_2020
    ):
        config = dns_outage_config(world_2020, "dyn", cooldown=3)
        with pytest.raises(CascadeConfigError, match="static equivalence"):
            validate_static_equivalence(
                snapshot_2020, world_2020, "dyn", config=config
            )


class TestAttribution:
    def test_why_reaches_the_shocked_provider(self, dyn_trajectory):
        site = dyn_trajectory.failed_sites()[0]
        chain = why(dyn_trajectory, site)
        assert chain.explained
        assert chain.links[0].node == site
        last = chain.links[-1]
        assert dyn_trajectory.causes[last.node].via is None
        assert chain.roots[0].startswith("outage:dyn:")
        assert site in chain.render() and "root:" in chain.render()

    def test_why_on_untouched_node(self, dyn_trajectory):
        untouched = next(
            site for site in dyn_trajectory.websites
            if site not in dyn_trajectory.causes
        )
        chain = why(dyn_trajectory, untouched)
        assert not chain.explained
        assert "unaffected" in chain.render()

    def test_blast_radius_counts_failed_sites(self, dyn_trajectory):
        counts = blast_radius_by_root(dyn_trajectory)
        assert sum(counts.values()) >= len(dyn_trajectory.failed_sites())
        assert all(label.startswith("outage:dyn:") for label in counts)


class TestReport:
    def test_report_matches_trajectory(self, snapshot_2020, dyn_trajectory):
        report = build_report(snapshot_2020, dyn_trajectory)
        assert report.failed_sites == len(dyn_trajectory.failed_sites())
        assert report.total_sites == len(dyn_trajectory.websites)
        assert report.quiesced_at == dyn_trajectory.quiesced_at
        assert 0.0 < report.affected_fraction < 1.0
        # in the static regime, observed blast radius == static impact
        for blast in report.blast_radii:
            assert blast.failed_sites <= blast.predicted_impact
        # remediation is ranked by sites held down, descending
        held = [entry.sites_held_down for entry in report.remediation]
        assert held == sorted(held, reverse=True)

    def test_render_and_to_dict(self, snapshot_2020, dyn_trajectory):
        report = build_report(snapshot_2020, dyn_trajectory)
        text = render_report(report)
        assert "Cascade:" in text
        assert "Blast radius" in text and "Remediation priority" in text
        payload = report.to_dict()
        assert payload["failed_sites"] == report.failed_sites
        json.dumps(payload)  # must be JSON-ready as-is


class TestExport:
    def test_round_trip_is_byte_identical(self, dyn_trajectory):
        text = trajectory_to_json(dyn_trajectory)
        assert trajectory_to_json(trajectory_from_json(text)) == text

    def test_round_trip_preserves_queries(self, dyn_trajectory):
        restored = trajectory_from_json(trajectory_to_json(dyn_trajectory))
        assert restored.failed_sites() == dyn_trajectory.failed_sites()
        assert restored.quiesced_at == dyn_trajectory.quiesced_at
        site = dyn_trajectory.failed_sites()[0]
        assert why(restored, site).render() == why(dyn_trajectory, site).render()

    def test_schema_and_digest_guards(self, dyn_trajectory):
        with pytest.raises(TrajectoryFormatError, match="schema"):
            trajectory_from_json(json.dumps({"schema": "bogus/9"}))
        data = json.loads(trajectory_to_json(dyn_trajectory))
        data["config"]["alpha"] = 0.5  # no longer matches the digest
        with pytest.raises(TrajectoryFormatError, match="digest"):
            trajectory_from_json(json.dumps(data))
        with pytest.raises(TrajectoryFormatError, match="JSON"):
            trajectory_from_json("{nope")

    def test_golden_dyn_trajectory(self, dyn_trajectory, regen_goldens):
        text = trajectory_to_json(dyn_trajectory) + "\n"
        if regen_goldens:
            CASCADE_GOLDEN.write_text(text, encoding="utf-8")
            return
        assert CASCADE_GOLDEN.exists(), (
            f"{CASCADE_GOLDEN} missing; run "
            f"'pytest tests/test_cascade.py --regen-goldens' to create it"
        )
        assert CASCADE_GOLDEN.read_text(encoding="utf-8") == text, (
            "cascade trajectory drifted from the golden; regenerate with "
            "--regen-goldens and commit the diff if the change is intended"
        )


class TestQueryLoop:
    def _run(self, snapshot, trajectory, script: str) -> str:
        report = build_report(snapshot, trajectory)
        out = io.StringIO()
        query_loop(trajectory, report, io.StringIO(script), out)
        return out.getvalue()

    def test_why_top_tick_and_quit(self, snapshot_2020, dyn_trajectory):
        site = dyn_trajectory.failed_sites()[0]
        output = self._run(
            snapshot_2020, dyn_trajectory,
            f"why {site}\ntop 2\ntick 0\nsummary\nquit\n",
        )
        assert "root: outage:dyn:" in output
        assert "1. " in output
        assert "tick 0:" in output
        assert output.count("Cascade:") == 2  # banner + summary command

    def test_bad_input_is_survivable(self, snapshot_2020, dyn_trajectory):
        output = self._run(
            snapshot_2020, dyn_trajectory,
            "why\nwhy nosuch.example\ntop x\ntick 99\nfrobnicate\n\n",
        )
        assert "usage: why <site>" in output
        assert "not a node" in output
        assert "usage: top [k]" in output
        assert "out of range" in output
        assert "unknown command" in output

    def test_eof_terminates(self, snapshot_2020, dyn_trajectory):
        handled = query_loop(
            dyn_trajectory,
            build_report(snapshot_2020, dyn_trajectory),
            io.StringIO(""),
            io.StringIO(),
        )
        assert handled == 0
