"""Property-based tests (hypothesis) for the cascade engine's contracts.

Three laws, checked across randomized model parameters on the shared
session world's Dyn scenario:

* **Determinism** — same (snapshot, config) ⇒ byte-identical trajectory
  JSON, whatever the knobs (including jitter: it draws from the seeded
  fault PRNG, never OS entropy).
* **Alpha monotonicity** — a stronger propagation coefficient never
  shrinks the affected set, at any tick: whoever takes damage at
  ``alpha`` also takes damage at ``alpha' >= alpha`` by then.
* **Quiescence** — with recovery disabled the failed set is monotone
  non-decreasing tick over tick and the engine reaches a fixed point
  well inside the tick budget.

Alphas/thresholds are drawn from coarse grids: the engine rounds health
to 6 decimals, and the laws are about model structure, not about
adversarial float dust at the rounding boundary.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.cascade import CascadeEngine, dns_outage_config, trajectory_to_json

_alphas = st.sampled_from([0.3, 0.5, 0.7, 0.8, 0.9, 1.0])
_thresholds = st.sampled_from([0.4, 0.6, 0.7, 0.8])
_jitters = st.sampled_from([0.0, 0.1, 0.25, 0.5])
_cooldowns = st.sampled_from([-1, 0, 2, 5])
_seeds = st.integers(min_value=0, max_value=2**31 - 1)


@pytest.fixture(scope="module")
def base_config(world_2020):
    return dns_outage_config(world_2020, "dyn")


class TestDeterminism:
    @settings(max_examples=12, deadline=None)
    @given(
        alpha=_alphas,
        threshold=_thresholds,
        jitter=_jitters,
        cooldown=_cooldowns,
        seed=_seeds,
    )
    def test_same_config_same_bytes(
        self, snapshot_2020, base_config, alpha, threshold, jitter,
        cooldown, seed,
    ):
        config = replace(
            base_config,
            alpha=alpha,
            threshold=threshold,
            jitter=jitter,
            cooldown=cooldown,
            seed=seed,
            shocks=tuple(
                replace(shock, duration=6 if cooldown >= 0 else None)
                for shock in base_config.shocks
            ),
        )
        first = CascadeEngine(snapshot_2020, config).run()
        second = CascadeEngine(snapshot_2020, config).run()
        assert trajectory_to_json(first) == trajectory_to_json(second)

    @settings(max_examples=6, deadline=None)
    @given(seed=_seeds)
    def test_jitter_seed_changes_bytes_only_via_config(
        self, snapshot_2020, base_config, seed
    ):
        # the seed is part of the digest-bound config, so two trajectories
        # from the same seeded config agree even with jitter enabled
        config = replace(base_config, jitter=0.3, seed=seed)
        first = CascadeEngine(snapshot_2020, config).run()
        second = CascadeEngine(snapshot_2020, config).run()
        assert trajectory_to_json(first) == trajectory_to_json(second)


class TestAlphaMonotonicity:
    @settings(max_examples=10, deadline=None)
    @given(pair=st.tuples(_alphas, _alphas))
    def test_higher_alpha_never_shrinks_the_affected_set(
        self, snapshot_2020, base_config, pair
    ):
        low, high = sorted(pair)
        weak = CascadeEngine(
            snapshot_2020, replace(base_config, alpha=low)
        ).run()
        strong = CascadeEngine(
            snapshot_2020, replace(base_config, alpha=high)
        ).run()
        horizon = max(weak.ticks_run, strong.ticks_run)
        for tick in range(horizon):
            weak_affected = set(weak.affected_nodes(tick))
            strong_affected = set(strong.affected_nodes(tick))
            assert weak_affected <= strong_affected, (
                f"alpha={low} affected nodes missing at alpha={high}, "
                f"tick {tick}: {sorted(weak_affected - strong_affected)[:5]}"
            )


class TestQuiescence:
    @settings(max_examples=10, deadline=None)
    @given(alpha=_alphas, threshold=_thresholds)
    def test_no_recovery_failed_set_is_monotone_and_converges(
        self, snapshot_2020, base_config, alpha, threshold
    ):
        config = replace(
            base_config, alpha=alpha, threshold=threshold, cooldown=-1
        )
        trajectory = CascadeEngine(snapshot_2020, config).run()
        assert trajectory.quiesced_at is not None
        assert trajectory.quiesced_at < config.ticks - 1
        previous: set = set()
        for tick in range(trajectory.ticks_run):
            current = set(
                trajectory.failed_sites(tick)
                + trajectory.failed_providers(tick)
            )
            assert previous <= current, f"failed set shrank at tick {tick}"
            previous = current
        # quiesced means quiesced: re-running with a larger budget
        # changes nothing
        longer = CascadeEngine(
            snapshot_2020, replace(config, ticks=config.ticks * 2)
        ).run()
        assert longer.failed_sites() == trajectory.failed_sites()
        assert longer.quiesced_at == trajectory.quiesced_at
