"""Tests for the Section 6 case-study populations."""

import pytest

from repro.analysis import table10_hospitals, table11_smart_home
from repro.core import analyze_world
from repro.worldgen import WorldConfig, hospital_snapshot, materialize
from repro.worldgen.case_studies import smart_home_companies
from repro.worldgen.spec import PRIVATE
from repro.worldgen.world import World


@pytest.fixture(scope="module")
def hospital_analyzed():
    config = WorldConfig(n_websites=1000, seed=11)
    spec = hospital_snapshot(config, n_hospitals=200)
    world = World(materialize(spec), config)
    return analyze_world(world)


class TestHospitals:
    def test_population(self, hospital_analyzed):
        assert len(hospital_analyzed.websites) == 200

    def test_all_support_https(self, hospital_analyzed):
        assert all(w.ca.https for w in hospital_analyzed.websites)

    def test_table10_rates_near_paper(self, hospital_analyzed):
        table = table10_hospitals(hospital_analyzed)
        rows = {row[0]: row for row in table.rows}
        assert rows["DNS"][2] == pytest.approx(51.0, abs=10.0)
        assert rows["CDN"][2] == pytest.approx(16.0, abs=7.0)
        assert rows["CA"][2] == pytest.approx(100.0, abs=5.0)
        assert rows["CA"][4] == pytest.approx(78.0, abs=10.0)

    def test_dns_redundancy_rare(self, hospital_analyzed):
        third = [w for w in hospital_analyzed.websites if w.dns.uses_third_party]
        redundant = [w for w in third if w.dns.is_redundant]
        assert len(redundant) / max(len(third), 1) <= 0.25  # paper: ~10%

    def test_cdn_usage_all_critical(self, hospital_analyzed):
        users = [w for w in hospital_analyzed.websites if w.uses_cdn]
        critical = [w for w in users if w.cdn_is_critical]
        assert len(critical) == len(users)  # hospitals never multi-CDN


class TestSmartHome:
    def test_roster_size(self):
        assert len(smart_home_companies()) == 23

    def test_cloud_only_count(self):
        companies = smart_home_companies()
        assert sum(1 for c in companies if c.cloud_only) == 9

    def test_table11_counts(self):
        table = table11_smart_home(smart_home_companies())
        rows = {row[0]: row for row in table.rows}
        assert rows["DNS"][1] == 21       # third-party
        assert rows["DNS"][3] == 1        # redundancy
        assert rows["DNS"][4] == 8        # critical
        assert rows["Cloud"][1] == 15
        assert rows["Cloud"][4] == 5

    def test_amazon_concentration(self):
        companies = smart_home_companies()
        amazon_cloud = [
            c for c in companies if c.cloud_provider == "amazon-cloud"
        ]
        aws_dns = [c for c in companies if "aws-dns" in c.dns_providers]
        assert len(amazon_cloud) == 11  # paper: 11 of 15 cloud users
        assert len(aws_dns) == 13       # paper: 13 use Amazon DNS

    def test_named_critical_set(self):
        companies = {c.name: c for c in smart_home_companies()}
        for name in (
            "Logitech Harmony", "Yonomi", "Brilliant Tech", "IFTTT",
            "Petnet", "Ecobee", "Ring Security",
        ):
            assert companies[name].dns_is_critical, name

    def test_local_failover_blocks_criticality(self):
        companies = {c.name: c for c in smart_home_companies()}
        smartthings = companies["Samsung SmartThings"]
        assert smartthings.dns_is_third_party
        assert not smartthings.dns_is_critical
