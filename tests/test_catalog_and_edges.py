"""Catalog consistency checks and assorted edge-path tests."""

import pytest

from repro.worldgen.catalog import provider_catalog
from repro.worldgen.spec import PRIVATE


class TestCatalogConsistency:
    def test_unique_keys(self):
        catalog = provider_catalog()
        for entries in (catalog.dns_providers, catalog.cdns, catalog.cas):
            keys = [e.key for e in entries]
            assert len(keys) == len(set(keys))

    def test_lookup_helpers(self):
        catalog = provider_catalog()
        assert catalog.dns_by_key()["dyn"].display == "Dyn (Oracle)"
        assert catalog.cdn_by_key()["fastly"].entity == "fastly"
        assert catalog.ca_by_key()["digicert"].share_2020 > 0

    def test_dns_choices_reference_real_providers(self):
        catalog = provider_catalog()
        dns_keys = {e.key for e in catalog.dns_providers} | {"private", PRIVATE}
        for cdn in catalog.cdns:
            for choice in (cdn.dns_choice_2016, cdn.dns_choice_2020):
                keys = (choice,) if isinstance(choice, str) else choice
                for key in keys:
                    assert key in dns_keys, (cdn.key, key)
        for ca in catalog.cas:
            for choice in (ca.dns_choice_2016, ca.dns_choice_2020):
                keys = (choice,) if isinstance(choice, str) else choice
                for key in keys:
                    assert key in dns_keys, (ca.key, key)

    def test_cdn_choices_reference_real_cdns(self):
        catalog = provider_catalog()
        cdn_keys = {e.key for e in catalog.cdns}
        for ca in catalog.cas:
            for choice in (ca.cdn_choice_2016, ca.cdn_choice_2020):
                if choice is not None:
                    assert choice in cdn_keys, (ca.key, choice)

    def test_shares_nonnegative(self):
        catalog = provider_catalog()
        for entries in (catalog.dns_providers, catalog.cdns, catalog.cas):
            for entry in entries:
                assert entry.share_2016 >= 0 and entry.share_2020 >= 0

    def test_dyn_shrank_after_attack(self):
        dyn = provider_catalog().dns_by_key()["dyn"]
        assert dyn.share_2020 < dyn.share_2016

    def test_marquee_amplifiers_present(self):
        catalog = provider_catalog()
        digicert = catalog.ca_by_key()["digicert"]
        assert digicert.dns_choice_2020 == "dnsmadeeasy"
        assert digicert.cdn_choice_2020 == "incapsula"
        lets = catalog.ca_by_key()["letsencrypt"]
        assert lets.cdn_choice_2016 is None  # adopted a CDN by 2020
        assert lets.cdn_choice_2020 == "cloudflare-cdn"

    def test_ns_domains_unique_across_providers(self):
        catalog = provider_catalog()
        seen: dict[str, str] = {}
        for provider in catalog.dns_providers:
            for domain in provider.ns_domains:
                assert domain not in seen, (domain, provider.key, seen[domain])
                seen[domain] = provider.key

    def test_cname_suffixes_unique_across_cdns(self):
        catalog = provider_catalog()
        seen: dict[str, str] = {}
        for cdn in catalog.cdns:
            for suffix in cdn.cname_suffixes:
                assert suffix not in seen, (suffix, cdn.key)
                seen[suffix] = cdn.key


class TestDigClientEdges:
    def test_cname_chain_of_plain_host(self, world_2020):
        spec = world_2020.spec.websites[0]
        assert world_2020.dig.cname_chain(spec.domain) == []

    def test_ns_of_unresolvable_name(self, world_2020):
        assert world_2020.dig.ns("nope.invalid-tld-xyz") == []

    def test_soa_of_unresolvable_name(self, world_2020):
        # Unknown TLD: the root answers NXDOMAIN with the root SOA.
        soa = world_2020.dig.soa("nope.invalid-tld-xyz")
        assert soa is None or soa.mname  # never raises

    def test_query_passthrough(self, world_2020):
        from repro.dnssim.records import RRType

        result = world_2020.dig.query("twitter.com", RRType.NS)
        assert result.records


class TestWorldApi:
    def test_repr(self, world_2020):
        text = repr(world_2020)
        assert "World(year=2020" in text

    def test_restore_all_idempotent(self, world_2020):
        world_2020.take_down_dns_provider("dyn")
        world_2020.take_down_cdn("akamai")
        world_2020.take_down_ca("digicert")
        world_2020.restore_all()
        world_2020.restore_all()
        assert not world_2020.dns_network.down_ips()

    def test_fresh_client_has_cold_cache(self, world_2020):
        spec = world_2020.spec.websites[0]
        world_2020.dig.is_resolvable(spec.domain)  # warm the shared cache
        client = world_2020.fresh_client()
        queries_before = client._dns.resolver.stats.queries  # noqa: SLF001
        client.get(f"http://www.{spec.domain}/")
        assert client._dns.resolver.stats.queries > queries_before  # noqa: SLF001

    def test_misconfigure_ca_toggles(self, world_2020):
        infra = world_2020.ca_infra["digicert"]
        world_2020.misconfigure_ca_revocations("digicert", broken=True)
        assert infra.ca.ocsp_responder.misconfigured_revoke_all
        world_2020.misconfigure_ca_revocations("digicert", broken=False)
        assert not infra.ca.ocsp_responder.misconfigured_revoke_all


class TestRestrictedGraph:
    def test_empty_restriction_drops_interservice_edges(self, snapshot_2020):
        direct = snapshot_2020.restricted_graph(())
        for consumer, provider, _critical in snapshot_2020.interservice_edges:
            assert provider not in direct.provider_dependencies(consumer)

    def test_full_restriction_matches_main_graph(self, snapshot_2020):
        full = snapshot_2020.restricted_graph(("ca-dns", "ca-cdn", "cdn-dns"))
        from repro.core.graph import ProviderNode, ServiceType

        node = ProviderNode("dnsmadeeasy.com", ServiceType.DNS)
        assert full.impact(node) == snapshot_2020.graph.impact(node)

    def test_unknown_kind_is_noop(self, snapshot_2020):
        graph = snapshot_2020.restricted_graph(("smtp-dns",))
        assert graph.websites()
