"""Tests for the command-line interface (small worlds, captured output)."""

import pytest

from repro.cli import build_parser, main


ARGS = ["--n", "300", "--seed", "3"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "12"])

    def test_year_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["summary", "--year", "2019"])


class TestCommands:
    def test_summary(self, capsys):
        assert main(["summary", *ARGS]) == 0
        out = capsys.readouterr().out
        assert "DNS:" in out and "Top-3 impact" in out

    def test_table_single_snapshot(self, capsys):
        assert main(["table", "1", *ARGS]) == 0
        assert "table1" in capsys.readouterr().out

    def test_table_11_is_static(self, capsys):
        assert main(["table", "11"]) == 0
        assert "smart-home" in capsys.readouterr().out

    def test_figure(self, capsys):
        assert main(["figure", "2", *ARGS]) == 0
        out = capsys.readouterr().out
        assert "figure2" in out and "stats:" in out

    def test_audit_known_domain(self, capsys):
        assert main(["audit", "academia.edu", *ARGS]) == 0
        assert "single points of failure" in capsys.readouterr().out

    def test_audit_unknown_domain(self, capsys):
        assert main(["audit", "not-in-world.example", *ARGS]) == 1
        assert "not in this world" in capsys.readouterr().err

    def test_outage(self, capsys):
        assert main(["outage", "cloudflare", *ARGS]) == 0
        assert "Outage of cloudflare" in capsys.readouterr().out

    def test_outage_unknown_provider(self, capsys):
        assert main(["outage", "nonexistent-dns", *ARGS]) == 1
        assert "unknown provider" in capsys.readouterr().err
