"""Tests for the command-line interface (small worlds, captured output)."""

import json

import pytest

from repro.cli import build_parser, main


ARGS = ["--n", "300", "--seed", "3"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_every_subcommand_is_documented(self):
        """The module docstring's usage block must list every registered
        subparser — it is the CLI's front page and must not rot."""
        import argparse

        import repro.cli as cli_module

        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        registered = set(subparsers.choices)
        assert registered  # the probe itself must keep working
        for command in sorted(registered):
            assert f"python -m repro {command}" in cli_module.__doc__, (
                f"subcommand {command!r} is missing from the repro.cli "
                f"module docstring usage block"
            )

    def test_every_subcommand_is_dispatchable(self):
        import argparse

        from repro.cli import _COMMANDS

        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        assert set(subparsers.choices) == set(_COMMANDS)

    def test_table_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "12"])

    def test_year_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["summary", "--year", "2019"])


class TestCommands:
    def test_summary(self, capsys):
        assert main(["summary", *ARGS]) == 0
        out = capsys.readouterr().out
        assert "DNS:" in out and "Top-3 impact" in out

    def test_table_single_snapshot(self, capsys):
        assert main(["table", "1", *ARGS]) == 0
        assert "table1" in capsys.readouterr().out

    def test_table_11_is_static(self, capsys):
        assert main(["table", "11"]) == 0
        assert "smart-home" in capsys.readouterr().out

    def test_figure(self, capsys):
        assert main(["figure", "2", *ARGS]) == 0
        out = capsys.readouterr().out
        assert "figure2" in out and "stats:" in out

    def test_audit_known_domain(self, capsys):
        assert main(["audit", "academia.edu", *ARGS]) == 0
        assert "single points of failure" in capsys.readouterr().out

    def test_audit_unknown_domain(self, capsys):
        assert main(["audit", "not-in-world.example", *ARGS]) == 1
        assert "not in this world" in capsys.readouterr().err

    def test_outage(self, capsys):
        assert main(["outage", "cloudflare", *ARGS]) == 0
        assert "Outage of cloudflare" in capsys.readouterr().out

    def test_outage_unknown_provider(self, capsys):
        assert main(["outage", "nonexistent-dns", *ARGS]) == 1
        assert "unknown provider" in capsys.readouterr().err

    def test_outage_json(self, capsys):
        assert main(["outage", "dyn", *ARGS, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["provider"] == "dyn"
        assert payload["service"] == "dns"
        assert payload["total_probed"] == (
            len(payload["unreachable"])
            + len(payload["degraded"])
            + len(payload["unaffected"])
        )
        assert "prediction" not in payload

    def test_outage_json_with_predict(self, capsys):
        assert main(["outage", "dyn", *ARGS, "--predict", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        prediction = payload["prediction"]
        assert set(prediction) == {
            "predicted", "predicted_only", "observed_only"
        }
        assert prediction["predicted"] == sorted(prediction["predicted"])


class TestCascadeCli:
    def test_report_and_validate(self, capsys):
        assert main(["cascade", "dyn", *ARGS, "--validate"]) == 0
        out = capsys.readouterr().out
        assert "Static equivalence EXACT" in out
        assert "Cascade:" in out and "Blast radius" in out

    def test_json_report_carries_the_config_digest(self, capsys):
        assert main(["cascade", "dyn", *ARGS, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["config_digest"]) == 64
        assert payload["failed_sites"] >= 1
        assert payload["blast_radii"]

    def test_trajectory_out_round_trips(self, capsys, tmp_path):
        from repro.cascade import trajectory_from_json

        path = tmp_path / "traj.json"
        assert main(["cascade", "dyn", *ARGS, "--out", str(path)]) == 0
        capsys.readouterr()
        trajectory = trajectory_from_json(path.read_text(encoding="utf-8"))
        assert trajectory.quiesced_at is not None
        assert trajectory.failed_sites()

    def test_config_file_scenario(self, capsys, tmp_path):
        from repro.cascade import dns_outage_config
        from repro import WorldConfig, build_world

        world = build_world(WorldConfig(n_websites=300, seed=3))
        config = dns_outage_config(world, "dyn")
        path = tmp_path / "cascade.json"
        path.write_text(config.to_json(), encoding="utf-8")
        assert main(["cascade", *ARGS, "--config", str(path)]) == 0
        assert "Cascade:" in capsys.readouterr().out

    def test_config_file_excludes_model_flags(self, capsys, tmp_path):
        path = tmp_path / "cascade.json"
        path.write_text("{}", encoding="utf-8")
        assert main(
            ["cascade", "dyn", *ARGS, "--config", str(path)]
        ) == 1
        assert "whole scenario" in capsys.readouterr().err

    def test_provider_or_config_required(self, capsys):
        assert main(["cascade", *ARGS]) == 1
        assert "provider key" in capsys.readouterr().err

    def test_unknown_provider(self, capsys):
        assert main(["cascade", "nonexistent-dns", *ARGS]) == 1
        assert "unknown DNS provider" in capsys.readouterr().err

    def test_why_flag(self, capsys):
        assert main(["cascade", "dyn", *ARGS, "--json"]) == 0
        site = json.loads(capsys.readouterr().out)["remediation"][0]
        assert main(["cascade", "dyn", *ARGS, "--top", "3"]) == 0
        top = capsys.readouterr().out
        assert top.startswith("1. ")
        assert site["provider"] in top

    def test_tick_flag(self, capsys):
        assert main(["cascade", "dyn", *ARGS, "--tick", "0"]) == 0
        out = capsys.readouterr().out
        assert "healthy -> failed" in out
        assert main(["cascade", "dyn", *ARGS, "--tick", "999"]) == 1
        assert "out of range" in capsys.readouterr().err

    def test_interactive_loop(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("top 1\nquit\n"))
        assert main(["cascade", "dyn", *ARGS, "--interactive"]) == 0
        out = capsys.readouterr().out
        assert "cascade>" in out and "1. " in out

    def test_validate_requires_dns_service(self, capsys):
        assert main(
            ["cascade", "akamai", *ARGS, "--service", "cdn", "--validate"]
        ) == 1
        assert "dns provider key" in capsys.readouterr().err

    def test_validate_refuses_recovery_configs(self, capsys):
        assert main(
            ["cascade", "dyn", *ARGS, "--cooldown", "3", "--validate"]
        ) == 1
        assert "static equivalence" in capsys.readouterr().err


class TestMeasureAnalyze:
    def test_measure_to_stdout_is_dataset_json(self, capsys):
        assert main(["measure", *ARGS, "--quiet", "--limit", "50"]) == 0
        out = capsys.readouterr().out
        from repro.measurement.io import dataset_from_json

        dataset = dataset_from_json(out)
        assert len(dataset.websites) == 50

    def test_measure_then_analyze_workflow(self, capsys, tmp_path):
        path = tmp_path / "dataset.json"
        assert main(
            ["measure", *ARGS, "--quiet", "--shards", "4", "--out", str(path)]
        ) == 0
        capsys.readouterr()
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2020 snapshot, 300 websites" in out
        assert "Top-3 impact" in out

    def test_analyze_renders_single_snapshot_table(self, capsys, tmp_path):
        path = tmp_path / "dataset.json"
        assert main(
            ["measure", *ARGS, "--quiet", "--limit", "120", "--out", str(path)]
        ) == 0
        capsys.readouterr()
        assert main(["analyze", str(path), "--table", "1"]) == 0
        assert "table1" in capsys.readouterr().out

    def test_analyze_missing_file(self, capsys, tmp_path):
        assert main(["analyze", str(tmp_path / "nope.json")]) == 1
        assert "cannot load" in capsys.readouterr().err

    def test_analyze_rejects_wrong_version(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99, "year": 2020}')
        assert main(["analyze", str(path)]) == 1
        err = capsys.readouterr().err
        from repro.measurement.io import FORMAT_VERSION

        assert "99" in err and f"supports version {FORMAT_VERSION}" in err

    def test_measure_checkpoint_resume_flags(self, capsys, tmp_path):
        ckpt = tmp_path / "ckpt"
        args = [
            "measure", *ARGS, "--quiet", "--limit", "40", "--shards", "2",
            "--checkpoint-dir", str(ckpt),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main([*args, "--resume"]) == 0
        assert capsys.readouterr().out == first


class TestFaultsCli:
    PLAN = """{
 "seed": 7,
 "rules": [
  {"name": "dyn-outage", "layer": "dns", "kind": "drop",
   "server": "dynect.net", "probability": 0.5},
  {"name": "brownout", "layer": "web", "kind": "http_error",
   "status": 502, "rank_window": [1, 5]}
 ]
}"""

    def _write_plan(self, tmp_path, text=None):
        path = tmp_path / "plan.json"
        path.write_text(text if text is not None else self.PLAN)
        return str(path)

    def test_faults_validate_summarizes_the_plan(self, capsys, tmp_path):
        assert main(["faults", "validate", self._write_plan(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fault plan OK: 2 rule(s), seed=7" in out
        assert "dyn-outage" in out and "brownout" in out

    def test_faults_validate_rejects_bad_plan(self, capsys, tmp_path):
        bad = self._write_plan(
            tmp_path, '{"rules": [{"name": "x", "layer": "dns", "kind": "nope"}]}'
        )
        assert main(["faults", "validate", bad]) == 1
        assert "unknown dns fault kind" in capsys.readouterr().err

    def test_faults_validate_missing_file(self, capsys, tmp_path):
        assert main(["faults", "validate", str(tmp_path / "nope.json")]) == 1
        assert capsys.readouterr().err

    def test_measure_with_fault_plan_produces_degraded_records(
        self, capsys, tmp_path
    ):
        plan = self._write_plan(
            tmp_path,
            '{"seed": 1, "rules": [{"name": "brownout", "layer": "web",'
            ' "kind": "http_error", "status": 502, "rank_window": [1, 5]}]}',
        )
        assert main(
            ["measure", *ARGS, "--quiet", "--limit", "20", "--fault-plan", plan]
        ) == 0
        from repro.measurement.io import dataset_from_json

        dataset = dataset_from_json(capsys.readouterr().out)
        degraded = {w.rank for w in dataset.websites if w.tls.degraded}
        assert degraded == {1, 2, 3, 4, 5}

    def test_measure_fault_seed_override_changes_output(self, capsys, tmp_path):
        plan = self._write_plan(tmp_path)
        base = ["measure", *ARGS, "--quiet", "--limit", "20", "--fault-plan", plan]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert main([*base, "--fault-seed", "7"]) == 0
        same_seed = capsys.readouterr().out
        assert same_seed == first  # explicit seed equal to the plan's
        assert main([*base, "--fault-seed", "8"]) == 0
        reseeded = capsys.readouterr().out
        assert reseeded != first

    def test_measure_rejects_bad_fault_plan(self, capsys, tmp_path):
        bad = self._write_plan(tmp_path, "not json")
        assert main(
            ["measure", *ARGS, "--quiet", "--fault-plan", bad]
        ) == 1
        assert "cannot load fault plan" in capsys.readouterr().err


class TestTelemetryCommands:
    def test_trace_writes_chrome_trace_to_stdout(self, capsys):
        assert main(["trace", "google.com", *ARGS, "--quiet"]) == 0
        payload = json.loads(capsys.readouterr().out)
        phases = [e["ph"] for e in payload["traceEvents"]]
        assert phases[:2] == ["M", "M"]
        assert phases.count("B") == phases.count("E") > 0

    def test_trace_is_deterministic(self, capsys):
        assert main(["trace", "google.com", *ARGS, "--quiet"]) == 0
        first = capsys.readouterr().out
        assert main(["trace", "google.com", *ARGS, "--quiet"]) == 0
        assert capsys.readouterr().out == first

    def test_trace_prints_diagnostics_on_stderr(self, capsys):
        assert main(["trace", "google.com", *ARGS]) == 0
        err = capsys.readouterr().err
        assert "diagnostics for google.com" in err
        assert "dns.queries" in err

    def test_trace_unknown_domain_warns_but_traces(self, capsys, tmp_path):
        out = tmp_path / "t.json"
        assert main(
            ["trace", "no-such-site.example", *ARGS,
             "--out", str(out), "--quiet"]
        ) == 0
        assert "not in this world" in capsys.readouterr().err
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert any(
            e.get("name") == "site.measure" for e in payload["traceEvents"]
        )

    def test_measure_metrics_out_then_stats_json(self, capsys, tmp_path):
        metrics_path = tmp_path / "m.json"
        dataset_path = tmp_path / "d.json"
        assert main(
            ["measure", *ARGS, "--limit", "12", "--quiet",
             "--out", str(dataset_path), "--metrics-out", str(metrics_path)]
        ) == 0
        payload = json.loads(metrics_path.read_text(encoding="utf-8"))
        assert payload["format"] == "repro-metrics/1"
        assert payload["counters"]["sites"] == 12
        # ``stats`` over the frozen dataset recomputes the same
        # shard-stable site counters offline.
        assert main(["stats", str(dataset_path), "--json"]) == 0
        recomputed = json.loads(capsys.readouterr().out)
        assert recomputed["counters"]["sites"] == 12
        assert (
            recomputed["counters"]["sites.https"]
            == payload["counters"]["sites.https"]
        )

    def test_stats_summary_over_checkpoint_dir(self, capsys, tmp_path):
        ckpt = tmp_path / "ckpt"
        assert main(
            ["measure", *ARGS, "--limit", "10", "--shards", "2", "--quiet",
             "--checkpoint-dir", str(ckpt), "--out", str(tmp_path / "d.json"),
             "--metrics-out", str(tmp_path / "m.json")]
        ) == 0
        assert main(["stats", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "checkpoint metrics (2 shard(s))" in out
        assert "sites" in out

    def test_stats_refuses_metrics_less_checkpoints(self, capsys, tmp_path):
        ckpt = tmp_path / "ckpt"
        assert main(
            ["measure", *ARGS, "--limit", "10", "--shards", "2", "--quiet",
             "--checkpoint-dir", str(ckpt), "--out", str(tmp_path / "d.json")]
        ) == 0
        assert main(["stats", str(ckpt)]) == 1
        assert "without" in capsys.readouterr().err

    def test_stats_unreadable_path(self, capsys, tmp_path):
        assert main(["stats", str(tmp_path / "nope.json")]) == 1
        assert "cannot load" in capsys.readouterr().err

    def test_measure_trace_sites_requires_serial_workers(self, capsys):
        assert main(
            ["measure", *ARGS, "--quiet", "--workers", "2",
             "--trace-sites", "google.com", "--trace-out", "t.json"]
        ) == 1
        assert "--workers 1" in capsys.readouterr().err

    def test_measure_trace_sites_requires_trace_out(self, capsys):
        assert main(
            ["measure", *ARGS, "--quiet", "--trace-sites", "google.com"]
        ) == 1
        assert "--trace-out" in capsys.readouterr().err

    def test_measure_trace_out_requires_trace_sites(self, capsys):
        assert main(
            ["measure", *ARGS, "--quiet", "--trace-out", "t.json"]
        ) == 1
        assert "--trace-sites" in capsys.readouterr().err

    def test_measure_traces_exactly_the_requested_sites(self, tmp_path):
        trace_path = tmp_path / "t.json"
        assert main(
            ["measure", *ARGS, "--limit", "5", "--quiet",
             "--out", str(tmp_path / "d.json"),
             "--trace-sites", "google.com,youtube.com",
             "--trace-out", str(trace_path)]
        ) == 0
        payload = json.loads(trace_path.read_text(encoding="utf-8"))
        traced = {
            e["args"]["domain"]
            for e in payload["traceEvents"]
            if e.get("name") == "site.measure" and e["ph"] == "B"
        }
        assert traced == {"google.com", "youtube.com"}


class TestStoreCli:
    @pytest.fixture()
    def dataset_path(self, tmp_path):
        path = tmp_path / "d.json"
        assert main(
            ["measure", *ARGS, "--limit", "15", "--quiet",
             "--out", str(path)]
        ) == 0
        return path

    def test_compile_then_query_top(self, capsys, dataset_path, tmp_path):
        store = tmp_path / "d.rstore"
        assert main(
            ["compile", str(dataset_path), "--out", str(store)]
        ) == 0
        err = capsys.readouterr().err
        assert str(store) in err and "byte(s)" in err
        assert main(
            ["query", str(store), "--top", "3", "--service", "dns"]
        ) == 0
        out = capsys.readouterr().out
        assert "dns" in out

    def test_compile_default_out_is_dataset_rstore(self, capsys, dataset_path):
        assert main(["compile", str(dataset_path), "--quiet"]) == 0
        store = str(dataset_path) + ".rstore"
        assert main(["query", store, "--top", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["query"]["kind"] == "top"
        assert payload["store"]["schema"] == "repro-store/1"

    def test_query_site_and_whatif_json(self, capsys, dataset_path, tmp_path):
        store = tmp_path / "d.rstore"
        assert main(["compile", str(dataset_path), "--out", str(store),
                     "--quiet"]) == 0
        assert main(
            ["query", str(store), "--site", "google.com", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["site"]["domain"] == "google.com"
        provider = payload["site"]["dependencies"][0]["provider"]
        assert main(
            ["query", str(store), "--whatif", provider, "--json"]
        ) == 0
        whatif = json.loads(capsys.readouterr().out)
        assert whatif["counts"]["down"] == len(whatif["down"])

    def test_query_unknown_subject_fails(self, capsys, dataset_path, tmp_path):
        store = tmp_path / "d.rstore"
        assert main(["compile", str(dataset_path), "--out", str(store),
                     "--quiet"]) == 0
        assert main(["query", str(store), "--site", "nope.example"]) == 1
        assert "nope.example" in capsys.readouterr().err

    def test_query_requires_a_question(self, capsys, dataset_path, tmp_path):
        store = tmp_path / "d.rstore"
        assert main(["compile", str(dataset_path), "--out", str(store),
                     "--quiet"]) == 0
        assert main(["query", str(store)]) == 1
        assert "name a query" in capsys.readouterr().err

    def test_query_rejects_corrupt_store(self, capsys, tmp_path):
        bad = tmp_path / "bad.rstore"
        bad.write_bytes(b"not a store at all")
        assert main(["query", str(bad), "--top", "1"]) == 1
        assert "bad.rstore" in capsys.readouterr().err

    def test_compile_missing_dataset_fails(self, capsys, tmp_path):
        missing = tmp_path / "nope.json"
        assert main(["compile", str(missing)]) == 1
        assert "nope.json" in capsys.readouterr().err

    def test_query_interactive_loop(self, capsys, dataset_path, tmp_path,
                                    monkeypatch):
        import io as _io

        store = tmp_path / "d.rstore"
        assert main(["compile", str(dataset_path), "--out", str(store),
                     "--quiet"]) == 0
        monkeypatch.setattr(
            "sys.stdin", _io.StringIO("top 3\nsite google.com\nstats\nquit\n")
        )
        assert main(["query", str(store), "--interactive"]) == 0
        out = capsys.readouterr().out
        assert "google.com" in out


class TestStatsDatasetCache:
    def test_stats_reuses_the_parsed_dataset(
        self, capsys, tmp_path, monkeypatch
    ):
        """Two ``stats`` runs over the same unchanged file must parse
        the JSON once; editing the file must trigger a re-parse."""
        from repro.measurement import io as io_module

        dataset_path = tmp_path / "d.json"
        assert main(
            ["measure", *ARGS, "--limit", "10", "--quiet",
             "--out", str(dataset_path)]
        ) == 0
        first_text = dataset_path.read_text(encoding="utf-8")
        assert main(
            ["measure", *ARGS, "--limit", "12", "--quiet",
             "--out", str(dataset_path)]
        ) == 0
        second_text = dataset_path.read_text(encoding="utf-8")
        dataset_path.write_text(first_text, encoding="utf-8")

        calls = {"n": 0}
        real_parse = io_module.dataset_from_json

        def counting_parse(text):
            calls["n"] += 1
            return real_parse(text)

        monkeypatch.setattr(io_module, "dataset_from_json", counting_parse)
        io_module._dataset_cache.clear()

        assert main(["stats", str(dataset_path), "--json"]) == 0
        assert main(["stats", str(dataset_path), "--json"]) == 0
        assert calls["n"] == 1  # second run served from the cache
        capsys.readouterr()

        dataset_path.write_text(second_text, encoding="utf-8")
        assert main(["stats", str(dataset_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert calls["n"] == 2  # edited file re-parsed exactly once
        assert payload["counters"]["sites"] == 12


class TestServeClientCli:
    """The `serve`/`client` subcommands and the query `--stats` flag."""

    @pytest.fixture(scope="class")
    def store_path(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("servecli")
        dataset = base / "d.json"
        assert main(
            ["measure", *ARGS, "--limit", "15", "--quiet",
             "--out", str(dataset)]
        ) == 0
        store = base / "d.rstore"
        assert main(
            ["compile", str(dataset), "--out", str(store), "--quiet"]
        ) == 0
        return store

    @pytest.fixture(scope="class")
    def daemon(self, store_path):
        import threading

        from repro.serve.http import ReproServeDaemon
        from repro.serve.registry import StoreRegistry
        from repro.serve.service import ServeService

        service = ServeService(StoreRegistry({"d": str(store_path)}))
        server = ReproServeDaemon(service)
        thread = threading.Thread(target=server.serve_forever)
        thread.start()
        try:
            yield server.address
        finally:
            server.request_drain()
            thread.join(10)
            server.server_close()

    def _client(self, daemon, *flags: str) -> int:
        host, port = daemon
        return main(
            ["client", "--host", host, "--port", str(port), *flags]
        )

    def test_client_one_shot_equals_query_json(
        self, capsys, daemon, store_path
    ):
        assert main(
            ["query", str(store_path), "--top", "3", "--json"]
        ) == 0
        reference = capsys.readouterr().out
        assert self._client(daemon, "--store", "d", "--top", "3") == 0
        assert capsys.readouterr().out == reference

    def test_client_default_store_and_text_mode(self, capsys, daemon):
        assert self._client(daemon, "--top", "2", "--text") == 0
        out = capsys.readouterr().out
        assert "Top-2" in out

    def test_client_health(self, capsys, daemon):
        assert self._client(daemon, "--health") == 0
        assert json.loads(capsys.readouterr().out)["stores"] == ["d"]

    def test_client_statz(self, capsys, daemon):
        assert self._client(daemon, "--statz") == 0
        assert json.loads(capsys.readouterr().out)["registry"]["stores"] == 1

    def test_client_batch_file(self, capsys, daemon, tmp_path):
        batch = tmp_path / "batch.json"
        batch.write_text(json.dumps([
            {"store": "d", "query": {"kind": "top", "k": 1}},
            {"store": "d", "query": {"kind": "top", "k": 2,
                                     "service": "cdn"}},
        ]), encoding="utf-8")
        assert self._client(daemon, "--batch", str(batch)) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert [r["status"] for r in envelope["results"]] == [200, 200]

    def test_client_error_payload_goes_to_stderr(self, capsys, daemon):
        assert self._client(daemon, "--site", "nope.example") == 1
        captured = capsys.readouterr()
        assert captured.out == ""
        assert json.loads(captured.err)["error"]["type"] == "unknown-name"

    def test_client_requires_exactly_one_mode(self, capsys, daemon):
        assert self._client(daemon) == 1
        assert "pick one of" in capsys.readouterr().err
        assert self._client(
            daemon, "--top", "3", "--site", "google.com"
        ) == 1
        assert "exactly one query" in capsys.readouterr().err

    def test_client_unreachable_daemon_fails_cleanly(self, capsys):
        import socket

        placeholder = socket.socket()
        placeholder.bind(("127.0.0.1", 0))
        port = placeholder.getsockname()[1]
        placeholder.close()  # nothing listens here now
        assert main(
            ["client", "--port", str(port), "--top", "1"]
        ) == 1
        assert "client:" in capsys.readouterr().err

    def test_serve_rejects_missing_store_file(self, capsys, tmp_path):
        missing = tmp_path / "nope.rstore"
        assert main(["serve", str(missing)]) == 1
        assert "no such file" in capsys.readouterr().err

    def test_serve_rejects_duplicate_names(self, capsys, store_path):
        assert main(
            ["serve", f"d={store_path}", f"d={store_path}"]
        ) == 1
        assert "duplicate store name" in capsys.readouterr().err

    def test_query_stats_flag_reports_lru_counters(
        self, capsys, store_path
    ):
        assert main(
            ["query", str(store_path), "--top", "2", "--json", "--stats"]
        ) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout bytes stay pure JSON
        assert "cache 1/128 entries" in captured.err
        assert "1 miss(es)" in captured.err

    def test_repl_unknown_names_are_one_line_errors(
        self, capsys, store_path, monkeypatch
    ):
        import io as _io

        monkeypatch.setattr(
            "sys.stdin",
            _io.StringIO(
                "site no-such-site.example\nwhatif dns:nope\nquit\n"
            ),
        )
        assert main(["query", str(store_path), "--interactive"]) == 0
        captured = capsys.readouterr()
        out = captured.out
        assert "error: unknown site 'no-such-site.example'" in out
        assert "error: unknown provider 'dns:nope'" in out
        assert "Traceback" not in out + captured.err
