"""Tests for the Section 3 heuristics: unit-level branches, the paper's
corner cases, and the validation experiment (heuristic vs baselines)."""

import pytest

from repro.core.classification import (
    ClassificationMethod,
    ProviderType,
    classify_ca,
    classify_ca_soa_only,
    classify_ca_tld_only,
    classify_cdn,
    classify_cdn_soa_only,
    classify_cdn_tld_only,
    classify_dns,
    classify_nameserver,
    classify_nameserver_soa_only,
    classify_nameserver_tld_only,
)
from repro.measurement.records import (
    CdnObservation,
    DnsObservation,
    SoaIdentity,
    TlsObservation,
)

OWN_SOA = SoaIdentity("ns1.site.com", "hostmaster.site.com")
DYN_SOA = SoaIdentity("ns1.dynect.net", "hostmaster.dynect.net")


class TestNameserverLadder:
    def test_tld_match_is_private(self):
        out = classify_nameserver(
            "site.com", "ns1.site.com", OWN_SOA, OWN_SOA, san=(), concentration=0
        )
        assert out.type == ProviderType.PRIVATE
        assert out.method == ClassificationMethod.TLD

    def test_san_rescues_entity_aliases(self):
        # youtube.com with *.google.com nameservers: SAN contains google.com.
        out = classify_nameserver(
            "youtube.com", "ns1.google.com",
            SoaIdentity("ns1.google.com", "dns.google.com"),
            SoaIdentity("ns1.google.com", "dns.google.com"),
            san=("youtube.com", "*.google.com"),
            concentration=500,
        )
        assert out.type == ProviderType.PRIVATE
        assert out.method == ClassificationMethod.SAN

    def test_soa_mismatch_is_third_party(self):
        out = classify_nameserver(
            "site.com", "ns1.dynect.net", OWN_SOA, DYN_SOA, san=(), concentration=0
        )
        assert out.type == ProviderType.THIRD_PARTY
        assert out.method == ClassificationMethod.SOA

    def test_concentration_rescues_masked_soa(self):
        # twitter.com's SOA points at Dyn: the SOA rung is blind, but a
        # nameserver serving many websites is a provider.
        out = classify_nameserver(
            "twitter.com", "ns1.dynect.net", DYN_SOA, DYN_SOA,
            san=("twitter.com", "*.twitter.com"), concentration=120,
        )
        assert out.type == ProviderType.THIRD_PARTY
        assert out.method == ClassificationMethod.CONCENTRATION

    def test_unknown_when_everything_fails(self):
        out = classify_nameserver(
            "site.com", "ns1.tiny-dns.net", DYN_SOA, DYN_SOA, san=(), concentration=3
        )
        assert out.type == ProviderType.UNKNOWN


class TestBaselines:
    def test_tld_only_misses_aliases(self):
        # The youtube/google false positive the paper describes.
        assert (
            classify_nameserver_tld_only("youtube.com", "ns1.google.com")
            == ProviderType.THIRD_PARTY
        )

    def test_soa_only_misses_masked_zones(self):
        # The twitter/Dyn false negative.
        assert (
            classify_nameserver_soa_only(DYN_SOA, DYN_SOA) == ProviderType.PRIVATE
        )

    def test_soa_only_works_for_amazon_style(self):
        own = SoaIdentity("ns1.amazon.com", "hostmaster.amazon.com")
        assert (
            classify_nameserver_soa_only(own, DYN_SOA) == ProviderType.THIRD_PARTY
        )


class TestDnsClassification:
    def _observation(self, nameservers, website_soa, ns_soas):
        return DnsObservation(
            domain="site.com",
            nameservers=nameservers,
            website_soa=website_soa,
            nameserver_soas=ns_soas,
        )

    def test_critical_single_provider(self):
        obs = self._observation(
            ["ns1.dynect.net", "ns2.dynect.net"], OWN_SOA,
            {"ns1.dynect.net": DYN_SOA, "ns2.dynect.net": DYN_SOA},
        )
        out = classify_dns(obs, san=(), concentration_of=lambda b: 100)
        assert out.uses_third_party and out.is_critical
        assert out.third_party_provider_ids == ["dynect.net"]

    def test_redundant_two_providers(self):
        ultra = SoaIdentity("ns1.ultradns.net", "h.ultradns.net")
        obs = self._observation(
            ["ns1.dynect.net", "ns1.ultradns.net"], OWN_SOA,
            {"ns1.dynect.net": DYN_SOA, "ns1.ultradns.net": ultra},
        )
        out = classify_dns(obs, san=(), concentration_of=lambda b: 100)
        assert out.is_redundant and not out.is_critical
        assert out.uses_multiple_third_parties

    def test_private_plus_third_is_redundant(self):
        obs = self._observation(
            ["ns1.dynect.net", "ns1.site.com"], OWN_SOA,
            {"ns1.dynect.net": DYN_SOA, "ns1.site.com": OWN_SOA},
        )
        out = classify_dns(obs, san=(), concentration_of=lambda b: 100)
        assert out.uses_third_party and out.has_private
        assert out.is_redundant and not out.is_critical

    def test_same_entity_multi_domain_not_redundant(self):
        shared = SoaIdentity("ns1.alibabadns.com", "dns.alibaba")
        obs = DnsObservation(
            domain="shop.com",
            nameservers=["ns1.alicdn.com", "ns1.alibabadns.com"],
            website_soa=OWN_SOA,
            nameserver_soas={
                "ns1.alicdn.com": shared, "ns1.alibabadns.com": shared,
            },
        )
        out = classify_dns(obs, san=(), concentration_of=lambda b: 100)
        assert out.is_critical  # one entity, despite two TLDs

    def test_uncharacterized_flag(self):
        obs = self._observation(
            ["ns1.small.net"], DYN_SOA, {"ns1.small.net": DYN_SOA}
        )
        out = classify_dns(obs, san=(), concentration_of=lambda b: 1)
        assert not out.characterized


class TestCaClassification:
    def _tls(self, **overrides):
        defaults = dict(
            domain="site.com",
            https=True,
            san=("site.com", "*.site.com"),
            ocsp_urls=("http://ocsp.digicert.com/ocsp",),
            crl_urls=(),
            ocsp_stapled=False,
        )
        defaults.update(overrides)
        return TlsObservation(**defaults)

    def test_third_party_by_soa(self):
        tls = self._tls()
        out = classify_ca(
            tls,
            website_soa=OWN_SOA,
            soa_lookup=lambda host: SoaIdentity("ns1.dnsmadeeasy.com", "h.dnsmadeeasy.com"),
            ca_name_for_host=lambda host: "DigiCert",
        )
        assert out.type == ProviderType.THIRD_PARTY
        assert out.ca_name == "DigiCert"
        assert out.is_critical  # no stapling

    def test_stapling_removes_criticality(self):
        tls = self._tls(ocsp_stapled=True)
        out = classify_ca(
            tls, OWN_SOA,
            soa_lookup=lambda host: DYN_SOA,
            ca_name_for_host=lambda host: "DigiCert",
        )
        assert out.uses_third_party and not out.is_critical

    def test_private_by_tld(self):
        tls = self._tls(ocsp_urls=("http://ocsp.site.com/ocsp",))
        out = classify_ca(
            tls, OWN_SOA, lambda host: OWN_SOA, lambda host: "site-internal"
        )
        assert out.type == ProviderType.PRIVATE
        assert out.method == ClassificationMethod.TLD

    def test_private_by_san(self):
        tls = self._tls(
            san=("site.com", "gdpki.com"),
            ocsp_urls=("http://ocsp.gdpki.com/ocsp",),
        )
        out = classify_ca(
            tls, OWN_SOA, lambda host: DYN_SOA, lambda host: "GoDaddy CA"
        )
        assert out.type == ProviderType.PRIVATE
        assert out.method == ClassificationMethod.SAN

    def test_private_by_matching_soa(self):
        # Google Trust Services vs youtube.com: same DNS identity.
        google = SoaIdentity("ns1.google.com", "dns-admin.google.com")
        tls = self._tls(
            domain="youtube.com",
            san=("youtube.com", "*.google.com"),
            ocsp_urls=("http://ocsp.pki.goog/ocsp",),
        )
        out = classify_ca(
            tls, google, lambda host: google, lambda host: "Google Trust Services"
        )
        assert out.type == ProviderType.PRIVATE

    def test_no_endpoints_is_private(self):
        tls = self._tls(ocsp_urls=(), crl_urls=())
        out = classify_ca(tls, OWN_SOA, lambda host: None, lambda host: "?")
        assert out.type == ProviderType.PRIVATE

    def test_http_only_site(self):
        tls = TlsObservation(domain="site.com", https=False)
        out = classify_ca(tls, OWN_SOA, lambda host: None, lambda host: "?")
        assert not out.https and out.type == ProviderType.UNKNOWN

    def test_baselines(self):
        tls = self._tls(
            san=("site.com", "gdpki.com"),
            ocsp_urls=("http://ocsp.gdpki.com/ocsp",),
        )
        # TLD-only overestimates (classifies the private CA third-party).
        assert classify_ca_tld_only(tls) == ProviderType.THIRD_PARTY
        assert (
            classify_ca_soa_only(tls, OWN_SOA, lambda host: DYN_SOA)
            == ProviderType.THIRD_PARTY
        )


class TestCdnClassification:
    def _observation(self, detected, soas):
        return CdnObservation(
            domain="site.com", crawl_ok=True,
            detected_cdns=detected, cname_soas=soas,
        )

    def test_third_party_cdn(self):
        akamai = SoaIdentity("internal.akam.net", "h.akamai.com")
        obs = self._observation(
            {"Akamai": ["a1.edgekey.net"]}, {"a1.edgekey.net": akamai}
        )
        out = classify_cdn(obs, san=("site.com",), website_soa=OWN_SOA,
                           soa_lookup=obs.cname_soas.get)
        assert out[0].type == ProviderType.THIRD_PARTY

    def test_private_cdn_via_san(self):
        # yahoo/yimg: TLD mismatch, SAN contains *.yimg.com.
        obs = CdnObservation(
            domain="yahoo.com", crawl_ok=True,
            detected_cdns={"Yahoo CDN": ["img.yimg.com"]},
            cname_soas={"img.yimg.com": SoaIdentity("ns1.yahoo.com", "h.yahoo.com")},
        )
        out = classify_cdn(
            obs, san=("yahoo.com", "*.yimg.com"),
            website_soa=SoaIdentity("ns1.yahoo.com", "h.yahoo.com"),
            soa_lookup=obs.cname_soas.get,
        )
        assert out[0].type == ProviderType.PRIVATE
        assert out[0].method == ClassificationMethod.SAN

    def test_instagram_soa_false_positive_on_baseline(self):
        # Instagram: private Facebook CDN, AWS SOA on the site zone.
        fb = SoaIdentity("a.ns.facebook.com", "dns.facebook.com")
        aws = SoaIdentity("ns1.awsdns.net", "aws.amazon.com")
        obs = CdnObservation(
            domain="instagram.com", crawl_ok=True,
            detected_cdns={"Facebook CDN": ["static.fbcdn.net"]},
            cname_soas={"static.fbcdn.net": fb},
        )
        baseline = classify_cdn_soa_only(obs, aws, obs.cname_soas.get)
        assert baseline["Facebook CDN"] == ProviderType.THIRD_PARTY  # wrong!
        combined = classify_cdn(
            obs, san=("instagram.com", "*.fbcdn.net"),
            website_soa=aws, soa_lookup=obs.cname_soas.get,
        )
        assert combined[0].type == ProviderType.PRIVATE  # SAN rescues it

    def test_tld_only_baseline_on_private_suffix(self):
        obs = CdnObservation(
            domain="yahoo.com", crawl_ok=True,
            detected_cdns={"Yahoo CDN": ["img.yimg.com"]},
        )
        assert classify_cdn_tld_only(obs)["Yahoo CDN"] == ProviderType.THIRD_PARTY

    def test_no_cdns_empty(self):
        obs = self._observation({}, {})
        assert classify_cdn(obs, (), OWN_SOA, lambda n: None) == []
