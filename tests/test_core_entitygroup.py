"""Unit tests for nameserver entity grouping (the redundancy detector)."""

from repro.core.entitygroup import group_nameservers_by_entity, provider_id_for
from repro.measurement.records import SoaIdentity


def soa(mname: str, rname: str = "admin.example") -> SoaIdentity:
    return SoaIdentity(mname=mname, rname=rname)


class TestGrouping:
    def test_same_registrable_domain_groups(self):
        groups = group_nameservers_by_entity(
            ["ns1.dynect.net", "ns2.dynect.net"], {}
        )
        assert len(groups) == 1

    def test_distinct_providers_stay_apart(self):
        groups = group_nameservers_by_entity(
            ["ns1.dynect.net", "ns1.ultradns.net"],
            {
                "ns1.dynect.net": soa("ns1.dynect.net", "hostmaster.dynect.net"),
                "ns1.ultradns.net": soa("ns1.ultradns.net", "hostmaster.ultradns.net"),
            },
        )
        assert len(groups) == 2

    def test_paper_alibaba_case_mname(self):
        # alicdn.com and alibabadns.com share an SOA MNAME: one entity.
        shared = soa("ns1.alibabadns.com", "dns.alibaba.example")
        groups = group_nameservers_by_entity(
            ["ns1.alicdn.com", "ns1.alibabadns.com"],
            {"ns1.alicdn.com": shared, "ns1.alibabadns.com": shared},
        )
        assert len(groups) == 1

    def test_rname_groups_too(self):
        groups = group_nameservers_by_entity(
            ["ns1.brand-a.net", "ns1.brand-b.net"],
            {
                "ns1.brand-a.net": soa("m1.brand-a.net", "ops.conglomerate.com"),
                "ns1.brand-b.net": soa("m2.brand-b.net", "ops.conglomerate.com"),
            },
        )
        assert len(groups) == 1

    def test_transitive_union(self):
        # a~b via mname, b~c via registrable domain => one entity of three.
        shared = soa("m.hub.net")
        groups = group_nameservers_by_entity(
            ["ns1.a.net", "ns1.b.net", "ns2.b.net"],
            {
                "ns1.a.net": shared,
                "ns1.b.net": shared,
                "ns2.b.net": soa("other.b.net", "x.b.net"),
            },
        )
        assert len(groups) == 1

    def test_missing_soa_isolates_unless_tld_matches(self):
        groups = group_nameservers_by_entity(
            ["ns1.a.net", "ns1.b.net"], {"ns1.a.net": soa("m.a.net")}
        )
        assert len(groups) == 2

    def test_empty(self):
        assert group_nameservers_by_entity([], {}) == []


class TestProviderId:
    def test_stable_id(self):
        assert provider_id_for(["ns2.dynect.net", "ns1.dynect.net"]) == "dynect.net"

    def test_multi_domain_entity_uses_smallest(self):
        assert (
            provider_id_for(["ns1.ultradns.org", "ns1.ultradns.net"])
            == "ultradns.net"
        )
