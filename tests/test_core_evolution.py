"""Tests for the trend analysis over the evolved snapshot pair."""

import pytest

from repro.core import evolution
from repro.core.metrics import PAPER_BUCKETS


class TestDnsTrends:
    def test_rows_and_buckets(self, snapshot_pair):
        old, new = snapshot_pair
        rows = evolution.dns_trends(old, new)
        labels = [r.label for r in rows]
        assert labels == [
            "Pvt to Single 3rd",
            "Single Third to Pvt",
            "Red. to No Red.",
            "No Red. to Red.",
            "Critical dependency",
        ]
        for row in rows:
            assert set(row.per_bucket) == set(PAPER_BUCKETS)

    def test_full_bucket_rates_near_paper(self, snapshot_pair):
        old, new = snapshot_pair
        rows = {r.label: r for r in evolution.dns_trends(old, new)}
        k = PAPER_BUCKETS[-1]
        assert rows["Pvt to Single 3rd"].per_bucket[k] == pytest.approx(10.7, abs=3.0)
        assert rows["Single Third to Pvt"].per_bucket[k] == pytest.approx(6.0, abs=2.5)
        assert rows["Critical dependency"].per_bucket[k] == pytest.approx(4.7, abs=3.0)

    def test_formatted_rows(self, snapshot_pair):
        old, new = snapshot_pair
        for row in evolution.dns_trends(old, new):
            text = row.formatted()
            assert row.label in text and "k=" in text


class TestCdnTrends:
    def test_no_significant_change(self, snapshot_pair):
        old, new = snapshot_pair
        rows = {r.label: r for r in evolution.cdn_trends(old, new)}
        k = PAPER_BUCKETS[-1]
        # Paper: +0.0% critical dependency change at 100K.
        assert abs(rows["Critical dependency"].per_bucket[k]) <= 5.0

    def test_third_to_private_is_rare(self, snapshot_pair):
        old, new = snapshot_pair
        rows = {r.label: r for r in evolution.cdn_trends(old, new)}
        assert rows["3rd Party CDN to Pvt"].per_bucket[PAPER_BUCKETS[-1]] <= 1.0


class TestCaTrends:
    def test_stapling_churn_roughly_balances(self, snapshot_pair):
        old, new = snapshot_pair
        rows = {r.label: r for r in evolution.ca_stapling_trends(old, new)}
        k = PAPER_BUCKETS[-1]
        dropped = rows["Stapling to No Stapling"].per_bucket[k]
        adopted = rows["No Stapling to Stapling"].per_bucket[k]
        assert dropped == pytest.approx(9.7, abs=4.0)
        assert adopted == pytest.approx(9.9, abs=4.0)
        assert abs(rows["Critical dependency"].per_bucket[k]) <= 5.0


class TestInterServiceTrends:
    def test_ca_dns_critical_decreases(self, snapshot_pair):
        old, new = snapshot_pair
        rows = {r.label.split(" (")[0]: r for r in
                evolution.interservice_ca_dns_trends(old, new)}
        assert rows["Critical dependency"].count <= 0  # paper: -6

    def test_cdn_dns_trends_have_counts(self, snapshot_pair):
        old, new = snapshot_pair
        rows = evolution.interservice_cdn_dns_trends(old, new)
        for row in rows:
            assert row.count is not None and row.total is not None
            assert "k=" not in row.formatted()

    def test_ca_cdn_rows(self, snapshot_pair):
        old, new = snapshot_pair
        rows = {r.label.split(" (")[0]: r for r in
                evolution.interservice_ca_cdn_trends(old, new)}
        assert "No CDN to Third Party CDN" in rows
        # Let's Encrypt moved onto a CDN between snapshots.
        assert rows["No CDN to Third Party CDN"].count >= 1
