"""Unit tests for the dependency graph and the §2.2 metrics, on hand-built
graphs where the right answers are computable by hand."""

import pytest

from repro.core.graph import DependencyGraph, ProviderNode, ServiceType


def node(service: str, name: str) -> ProviderNode:
    return ProviderNode(name, ServiceType(service))


@pytest.fixture
def dyn_world() -> DependencyGraph:
    """The Dyn incident in miniature.

    - twitter, spotify critically on Dyn (DNS)
    - pinterest critically on Fastly (CDN), Fastly critically on Dyn
    - amazon uses Dyn redundantly (not critical)
    """
    g = DependencyGraph()
    dyn = node("dns", "dyn")
    fastly = node("cdn", "fastly")
    g.add_website_dependency("twitter.com", dyn, critical=True)
    g.add_website_dependency("spotify.com", dyn, critical=True)
    g.add_website_dependency("amazon.com", dyn, critical=False)
    g.add_website_dependency("pinterest.com", fastly, critical=True)
    g.add_provider_dependency(fastly, dyn, critical=True)
    return g


class TestBasicMetrics:
    def test_direct_counts(self, dyn_world):
        dyn = node("dns", "dyn")
        assert dyn_world.direct_concentration(dyn) == 3
        assert dyn_world.direct_impact(dyn) == 2

    def test_recursive_concentration(self, dyn_world):
        # pinterest reaches Dyn through Fastly: 3 direct + 1 indirect.
        assert dyn_world.concentration(node("dns", "dyn")) == 4

    def test_recursive_impact(self, dyn_world):
        # twitter + spotify direct, pinterest via Fastly; amazon is safe.
        assert dyn_world.impact(node("dns", "dyn")) == 3

    def test_concentration_dominates_impact(self, dyn_world):
        for provider in dyn_world.providers():
            assert dyn_world.concentration(provider) >= dyn_world.impact(provider)

    def test_fastly_metrics(self, dyn_world):
        fastly = node("cdn", "fastly")
        assert dyn_world.concentration(fastly) == 1
        assert dyn_world.impact(fastly) == 1


class TestCriticalChains:
    def test_noncritical_interservice_edge_breaks_impact_chain(self):
        g = DependencyGraph()
        cdn = node("cdn", "c1")
        dns = node("dns", "d1")
        g.add_website_dependency("site.com", cdn, critical=True)
        g.add_provider_dependency(cdn, dns, critical=False)  # CDN is redundant
        assert g.impact(dns) == 0
        assert g.concentration(dns) == 1

    def test_noncritical_website_edge_breaks_impact_chain(self):
        g = DependencyGraph()
        cdn = node("cdn", "c1")
        dns = node("dns", "d1")
        g.add_website_dependency("site.com", cdn, critical=False)
        g.add_provider_dependency(cdn, dns, critical=True)
        assert g.impact(dns) == 0

    def test_two_hop_chain(self):
        # site -> CA -> CDN -> DNS, all critical: the academia.edu shape.
        g = DependencyGraph()
        ca = node("ca", "certum")
        cdn = node("cdn", "maxcdn")
        dns = node("dns", "aws")
        g.add_website_dependency("site.com", ca, critical=True)
        g.add_provider_dependency(ca, cdn, critical=True)
        g.add_provider_dependency(cdn, dns, critical=True)
        assert g.impact(dns) == 1
        assert g.impact(cdn) == 1

    def test_cycle_terminates(self):
        g = DependencyGraph()
        a = node("dns", "a")
        b = node("cdn", "b")
        g.add_website_dependency("site.com", a, critical=True)
        g.add_provider_dependency(a, b, critical=True)
        g.add_provider_dependency(b, a, critical=True)
        assert g.impact(a) == 1
        assert g.impact(b) == 1

    def test_diamond_counted_once(self):
        g = DependencyGraph()
        dns = node("dns", "shared")
        cdn1, cdn2 = node("cdn", "c1"), node("cdn", "c2")
        g.add_website_dependency("site.com", cdn1, critical=True)
        g.add_website_dependency("site.com", cdn2, critical=True)
        g.add_provider_dependency(cdn1, dns, critical=True)
        g.add_provider_dependency(cdn2, dns, critical=True)
        assert g.concentration(dns) == 1  # one website, via two paths


class TestTopProviders:
    def test_ranking_and_service_filter(self, dyn_world):
        top_dns = dyn_world.top_providers(ServiceType.DNS, 5, by="impact")
        assert top_dns[0][0].id == "dyn"
        top_cdn = dyn_world.top_providers(ServiceType.CDN, 5, by="impact")
        assert all(n.service == ServiceType.CDN for n, _ in top_cdn)

    def test_direct_only_variant(self, dyn_world):
        top = dyn_world.top_providers(
            ServiceType.DNS, 1, by="concentration", indirect=False
        )
        assert top[0][1] == 3

    def test_unknown_ranking_rejected(self, dyn_world):
        with pytest.raises(ValueError):
            dyn_world.top_providers(ServiceType.DNS, 3, by="magic")


class TestEngineRegressions:
    """Scenarios the seed's recursive traversal got wrong or could not run."""

    def test_deep_chain_beyond_recursion_limit(self):
        # site -> p0 -> p1 -> ... -> p4999, all critical. The recursive
        # traversal blew the interpreter stack around depth ~1000; the
        # iterative engine answers for the far end of the chain.
        depth = 5000
        g = DependencyGraph()
        providers = [node("dns", f"p{i}") for i in range(depth)]
        g.add_website_dependency("site.com", providers[0], critical=True)
        for upper, lower in zip(providers, providers[1:]):
            g.add_provider_dependency(upper, lower, critical=True)
        assert g.impact(providers[-1]) == 1
        assert g.concentration(providers[-1]) == 1
        assert g.dependent_websites(providers[-1], critical_only=True) == {
            "site.com"
        }

    def test_mutually_critical_cycle_with_websites_on_both_sides(self):
        g = DependencyGraph()
        a, b = node("dns", "a"), node("cdn", "b")
        g.add_website_dependency("s1.com", a, critical=True)
        g.add_website_dependency("s2.com", b, critical=True)
        g.add_provider_dependency(a, b, critical=True)
        g.add_provider_dependency(b, a, critical=True)
        both = {"s1.com", "s2.com"}
        assert g.dependent_websites(a, critical_only=True) == both
        assert g.dependent_websites(b, critical_only=True) == both
        assert g.impact(a) == 2
        assert g.impact(b) == 2

    def test_mutation_invalidates_cached_metrics(self):
        g = DependencyGraph()
        dns = node("dns", "d")
        g.add_website_dependency("a.com", dns, critical=True)
        assert g.impact(dns) == 1
        g.add_website_dependency("b.com", dns, critical=True)
        assert g.impact(dns) == 2
        cdn = node("cdn", "c")
        g.add_website_dependency("c.com", cdn, critical=True)
        g.add_provider_dependency(cdn, dns, critical=True)
        assert g.impact(dns) == 3
        assert g.concentration(cdn) == 1

    def test_batch_metrics_match_single_queries(self, dyn_world):
        metrics = dyn_world.provider_metrics()
        assert set(metrics) == set(dyn_world.providers())
        for provider, m in metrics.items():
            assert m.concentration == dyn_world.concentration(provider)
            assert m.impact == dyn_world.impact(provider)
            assert m.direct_concentration == dyn_world.direct_concentration(
                provider
            )
            assert m.direct_impact == dyn_world.direct_impact(provider)

    def test_batch_metrics_service_filter(self, dyn_world):
        dns_only = dyn_world.provider_metrics(ServiceType.DNS)
        assert all(p.service == ServiceType.DNS for p in dns_only)
        assert dns_only[node("dns", "dyn")].impact == 3


class TestWebsiteExposure:
    def test_critical_dependency_count(self, dyn_world):
        assert dyn_world.critical_dependency_count("pinterest.com") == 2
        assert dyn_world.critical_dependency_count("twitter.com") == 1
        assert dyn_world.critical_dependency_count("amazon.com") == 0

    def test_display_names(self, dyn_world):
        dyn = node("dns", "dyn")
        dyn_world.add_provider(dyn, display="Dyn (Oracle)")
        assert dyn_world.display(dyn) == "Dyn (Oracle)"
        assert dyn_world.display(node("dns", "unnamed")) == "unnamed"
