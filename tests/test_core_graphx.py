"""Tests for the networkx bridge."""

import networkx as nx
import pytest

from repro.core.graph import DependencyGraph, ProviderNode, ServiceType
from repro.core.graphx import degree_statistics, export_graphml, to_networkx


@pytest.fixture
def small_graph() -> DependencyGraph:
    g = DependencyGraph()
    dyn = ProviderNode("dyn", ServiceType.DNS)
    fastly = ProviderNode("fastly", ServiceType.CDN)
    g.add_website_dependency("a.com", dyn, critical=True)
    g.add_website_dependency("b.com", dyn, critical=False)
    g.add_website_dependency("c.com", fastly, critical=True)
    g.add_provider_dependency(fastly, dyn, critical=True)
    g.add_provider(dyn, display="Dyn")
    return g


class TestConversion:
    def test_nodes_and_edges(self, small_graph):
        nxg = to_networkx(small_graph)
        assert nxg.number_of_nodes() == 5
        assert nxg.number_of_edges() == 4
        assert nxg.nodes["dns:dyn"]["display"] == "Dyn"
        assert nxg.nodes["a.com"]["kind"] == "website"

    def test_criticality_attribute(self, small_graph):
        nxg = to_networkx(small_graph)
        assert nxg.edges["a.com", "dns:dyn"]["critical"] is True
        assert nxg.edges["b.com", "dns:dyn"]["critical"] is False
        assert nxg.edges["cdn:fastly", "dns:dyn"]["critical"] is True

    def test_service_restriction(self, small_graph):
        nxg = to_networkx(small_graph, ServiceType.CDN)
        assert "cdn:fastly" in nxg
        assert "a.com" not in nxg  # no CDN dependency
        assert "c.com" in nxg

    def test_in_degree_equals_direct_concentration(self, small_graph):
        nxg = to_networkx(small_graph, ServiceType.DNS)
        dyn = ProviderNode("dyn", ServiceType.DNS)
        website_edges = [
            u for u, _ in nxg.in_edges("dns:dyn")
            if nxg.nodes[u]["kind"] == "website"
        ]
        assert len(website_edges) == small_graph.direct_concentration(dyn)


class TestStatistics:
    def test_degree_statistics(self, small_graph):
        stats = degree_statistics(small_graph, ServiceType.DNS)
        assert stats["providers"] == 1
        assert stats["websites"] == 2
        assert stats["max_in_degree"] >= 2

    def test_empty_service(self, small_graph):
        stats = degree_statistics(small_graph, ServiceType.CA)
        assert stats["providers"] == 0

    def test_world_graph_statistics(self, snapshot_2020):
        stats = degree_statistics(snapshot_2020.graph, ServiceType.DNS)
        assert stats["websites"] > 100
        # A few providers dominate (the paper's Figure 5 visual claim).
        assert stats["top5_degree_share"] > 0.4


class TestGraphML:
    def test_export_and_reload(self, small_graph, tmp_path):
        path = export_graphml(small_graph, tmp_path / "figure5.graphml")
        loaded = nx.read_graphml(path)
        assert loaded.number_of_nodes() == 5
        assert loaded.number_of_edges() == 4

    def test_world_export(self, snapshot_2020, tmp_path):
        path = export_graphml(
            snapshot_2020.graph, tmp_path / "dns.graphml", ServiceType.DNS
        )
        assert path.stat().st_size > 1000
