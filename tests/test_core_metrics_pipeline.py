"""Tests for rank metrics, provider CDFs, and the end-to-end pipeline."""

import pytest

from repro.core import metrics
from repro.core.classification import ProviderType
from repro.core.metrics import PAPER_BUCKETS


class TestBucketStats:
    def test_dns_bucket_shapes(self, snapshot_2020):
        stats = metrics.rank_bucket_stats_dns(
            snapshot_2020.websites, snapshot_2020.rank_scale
        )
        assert [s.paper_k for s in stats] == list(PAPER_BUCKETS)
        full = stats[-1]
        assert full.values["third_party"] == pytest.approx(89.0, abs=6.0)
        assert full.values["critical"] == pytest.approx(85.0, abs=6.0)
        # Criticality grows down-rank (Observation 1). At small world sizes
        # the top buckets hold few sites, so compare the first populated
        # bucket with ≥30 sites and allow sampling noise.
        head = next(s for s in stats if s.n_websites >= 30)
        assert head.values["critical"] <= full.values["critical"] + 5.0

    def test_cdn_bucket_shapes(self, snapshot_2020):
        stats = metrics.rank_bucket_stats_cdn(
            snapshot_2020.websites, snapshot_2020.rank_scale
        )
        full = stats[-1]
        assert full.values["uses_cdn"] == pytest.approx(33.2, abs=7.0)
        assert full.values["third_party"] >= 90.0
        # Redundancy falls down-rank (Observation 3); sampling noise allowed.
        head = next(s for s in stats if s.n_websites >= 20)
        assert head.values["multiple_cdns"] >= full.values["multiple_cdns"] - 5.0

    def test_ca_bucket_shapes(self, snapshot_2020):
        stats = metrics.rank_bucket_stats_ca(
            snapshot_2020.websites, snapshot_2020.rank_scale
        )
        full = stats[-1]
        assert full.values["https"] == pytest.approx(78.0, abs=6.0)
        assert full.values["third_party_ca"] == pytest.approx(77.0, abs=7.0)
        assert full.values["ocsp_stapling"] == pytest.approx(17.0, abs=7.0)
        # HTTPS higher among popular sites; sampling noise allowed.
        head = next(s for s in stats if s.n_websites >= 20)
        assert head.values["https"] >= full.values["https"] - 6.0

    def test_bucket_label(self):
        from repro.core.metrics import BucketStats

        assert BucketStats(100, 1).label == "top-100"
        assert BucketStats(100_000, 1).label == "top-100K"

    def test_cdn_buckets_record_both_denominators(self, snapshot_2020):
        # Regression: the CDN builder recorded n_websites=n_users while
        # the uses_cdn rate is over the whole bucket; both now appear.
        stats = metrics.rank_bucket_stats_cdn(
            snapshot_2020.websites, snapshot_2020.rank_scale
        )
        for s in stats:
            assert s.n_bucket >= s.n_websites  # users are a subset
            if s.n_bucket:
                assert s.values["uses_cdn"] == pytest.approx(
                    100.0 * s.n_websites / s.n_bucket
                )

    def test_dns_buckets_record_bucket_size(self, snapshot_2020):
        stats = metrics.rank_bucket_stats_dns(
            snapshot_2020.websites, snapshot_2020.rank_scale
        )
        # n_websites is the characterized subset; n_bucket the whole bucket.
        assert all(s.n_bucket >= s.n_websites for s in stats)
        assert stats[-1].n_websites > 0


class TestProviderCdf:
    def test_counts_by_service(self, snapshot_2020):
        counts = metrics.provider_usage_counts(snapshot_2020.websites, "dns")
        assert counts  # non-empty
        assert all(v >= 1 for v in counts.values())

    def test_cdf_monotone_and_complete(self, snapshot_2020):
        counts = metrics.provider_usage_counts(snapshot_2020.websites, "cdn")
        cdf = metrics.provider_cdf(counts)
        ys = [y for _, y in cdf]
        assert ys == sorted(ys)
        assert ys[-1] == pytest.approx(1.0)

    def test_providers_covering(self, snapshot_2020):
        counts = {"a": 80, "b": 15, "c": 5}
        assert metrics.providers_covering(counts, 0.8) == 1
        assert metrics.providers_covering(counts, 0.95) == 2
        assert metrics.providers_covering(counts, 1.0) == 3

    def test_unknown_service_rejected(self, snapshot_2020):
        with pytest.raises(ValueError):
            metrics.provider_usage_counts(snapshot_2020.websites, "smtp")


class TestPipelineIntegration:
    def test_measurement_matches_ground_truth_dns(self, world_2020, snapshot_2020):
        truth = world_2020.spec.website_by_domain()
        mismatches = []
        for website in snapshot_2020.dns_characterized:
            expected = truth[website.domain].dns.uses_third_party
            if website.dns.uses_third_party != expected:
                mismatches.append(website.domain)
        # The paper validates its heuristic at 100%; allow a whisker.
        assert len(mismatches) <= len(snapshot_2020.dns_characterized) * 0.01, mismatches[:5]

    def test_measurement_matches_ground_truth_criticality(self, world_2020, snapshot_2020):
        truth = world_2020.spec.website_by_domain()
        mismatches = [
            w.domain
            for w in snapshot_2020.dns_characterized
            if w.dns.is_critical != truth[w.domain].dns.is_critical
        ]
        assert len(mismatches) <= len(snapshot_2020.dns_characterized) * 0.02, mismatches[:5]

    def test_measurement_matches_ground_truth_ca(self, world_2020, snapshot_2020):
        truth = world_2020.spec.website_by_domain()
        mismatches = []
        for website in snapshot_2020.websites:
            spec = truth[website.domain]
            if not spec.https:
                continue
            if website.ca.uses_third_party != spec.ca_is_third_party:
                mismatches.append(website.domain)
        assert len(mismatches) <= len(snapshot_2020.https_websites) * 0.02, mismatches[:5]

    def test_cdn_detection_recall(self, world_2020, snapshot_2020):
        truth = world_2020.spec.website_by_domain()
        missed = []
        for website in snapshot_2020.websites:
            spec = truth[website.domain]
            detectable = [c for c in spec.cdns if c in world_2020.spec.cdns]
            if detectable and not website.uses_cdn:
                missed.append(website.domain)
        assert len(missed) <= max(2, len(snapshot_2020.cdn_websites) * 0.02), missed[:5]

    def test_stapling_observed_faithfully(self, world_2020, snapshot_2020):
        truth = world_2020.spec.website_by_domain()
        for website in snapshot_2020.https_websites:
            assert website.ca.ocsp_stapled == truth[website.domain].ocsp_stapled

    def test_corner_case_classifications(self, snapshot_2020):
        by_domain = snapshot_2020.by_domain()
        # youtube: private DNS despite google.com nameservers.
        assert not by_domain["youtube.com"].dns.uses_third_party
        # twitter: third-party (Dyn) + private leg = redundant in 2020.
        twitter = by_domain["twitter.com"]
        assert twitter.dns.uses_third_party and twitter.dns.is_redundant
        # amazon: two third-party providers, redundant.
        amazon = by_domain["amazon.com"]
        assert amazon.dns.uses_multiple_third_parties
        # yahoo: CDN detected but private.
        yahoo = by_domain["yahoo.com"]
        assert yahoo.uses_cdn and not yahoo.third_party_cdns
        # instagram: facebook CDN detected as private via SAN.
        instagram = by_domain["instagram.com"]
        assert instagram.uses_cdn and not instagram.third_party_cdns
        # godaddy: private CA via SAN.
        assert by_domain["godaddy.com"].ca.type == ProviderType.PRIVATE

    def test_marquee_interservice_edges(self, snapshot_2020):
        inter = snapshot_2020.interservice
        digicert = inter.ca_dns.get("DigiCert")
        assert digicert is not None and digicert.is_critical
        assert digicert.third_party_provider_ids == ["dnsmadeeasy.com"]
        lets = inter.ca_cdn.get("Let's Encrypt")
        assert lets is not None and lets.third_party
        assert lets.cdn_names == ["Cloudflare CDN"]

    def test_amplification_shape(self, snapshot_2020):
        """Indirect dependencies amplify DNSMadeEasy ~1% -> ~25% (Obs. 9)."""
        from repro.core.graph import ProviderNode, ServiceType

        node = ProviderNode("dnsmadeeasy.com", ServiceType.DNS)
        n = len(snapshot_2020.websites)
        direct = snapshot_2020.graph.direct_impact(node) / n
        indirect = snapshot_2020.graph.impact(node) / n
        assert direct < 0.06
        assert indirect > direct + 0.10
