"""Unit tests for the resolver cache (TTL + negative caching)."""

import pytest

from repro.dnssim.cache import DnsCache, NegativeCacheHit
from repro.dnssim.clock import SimulatedClock
from repro.dnssim.records import ARecord, RRType, ResourceRecord


def rr(name: str, ttl: int, address: str = "10.0.0.1") -> ResourceRecord:
    return ResourceRecord(name, ttl, ARecord(address))


class TestClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_advance(self):
        clock = SimulatedClock()
        clock.advance(5)
        clock.advance(2.5)
        assert clock.now() == 7.5

    def test_no_backwards(self):
        clock = SimulatedClock(start=10)
        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            clock.at(5)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock(start=-1)


class TestPositiveCaching:
    def test_hit_before_expiry(self):
        clock = SimulatedClock()
        cache = DnsCache(clock)
        cache.put("x.com", RRType.A, [rr("x.com", 300)])
        assert cache.get("x.com", RRType.A) is not None
        assert cache.stats.hits == 1

    def test_miss_after_expiry(self):
        clock = SimulatedClock()
        cache = DnsCache(clock)
        cache.put("x.com", RRType.A, [rr("x.com", 300)])
        clock.advance(301)
        assert cache.get("x.com", RRType.A) is None
        assert cache.stats.misses == 1

    def test_minimum_ttl_governs(self):
        clock = SimulatedClock()
        cache = DnsCache(clock)
        cache.put("x.com", RRType.A, [rr("x.com", 300), rr("x.com", 10, "10.0.0.2")])
        clock.advance(11)
        assert cache.get("x.com", RRType.A) is None

    def test_zero_ttl_not_cached(self):
        cache = DnsCache(SimulatedClock())
        cache.put("x.com", RRType.A, [rr("x.com", 0)])
        assert cache.get("x.com", RRType.A) is None

    def test_empty_put_ignored(self):
        cache = DnsCache(SimulatedClock())
        cache.put("x.com", RRType.A, [])
        assert len(cache) == 0

    def test_keying_by_type(self):
        cache = DnsCache(SimulatedClock())
        cache.put("x.com", RRType.A, [rr("x.com", 300)])
        assert cache.get("x.com", RRType.NS) is None

    def test_case_insensitive_keys(self):
        cache = DnsCache(SimulatedClock())
        cache.put("X.COM", RRType.A, [rr("x.com", 300)])
        assert cache.get("x.com", RRType.A) is not None

    def test_peek_does_not_count(self):
        cache = DnsCache(SimulatedClock())
        cache.put("x.com", RRType.A, [rr("x.com", 300)])
        cache.peek("x.com", RRType.A)
        assert cache.stats.lookups == 0


class TestNegativeCaching:
    def test_nxdomain_hit(self):
        clock = SimulatedClock()
        cache = DnsCache(clock)
        cache.put_negative("gone.com", RRType.A, soa_minimum=60, nxdomain=True)
        with pytest.raises(NegativeCacheHit) as exc:
            cache.get("gone.com", RRType.A)
        assert exc.value.nxdomain

    def test_nodata_hit(self):
        cache = DnsCache(SimulatedClock())
        cache.put_negative("x.com", RRType.TXT, soa_minimum=60, nxdomain=False)
        with pytest.raises(NegativeCacheHit) as exc:
            cache.get("x.com", RRType.TXT)
        assert not exc.value.nxdomain

    def test_negative_expiry(self):
        clock = SimulatedClock()
        cache = DnsCache(clock)
        cache.put_negative("x.com", RRType.A, soa_minimum=60, nxdomain=True)
        clock.advance(61)
        assert cache.get("x.com", RRType.A) is None

    def test_peek_ignores_negative(self):
        cache = DnsCache(SimulatedClock())
        cache.put_negative("x.com", RRType.A, soa_minimum=60, nxdomain=True)
        assert cache.peek("x.com", RRType.A) is None


class TestEviction:
    def test_capacity_enforced(self):
        clock = SimulatedClock()
        cache = DnsCache(clock, max_entries=10)
        for i in range(25):
            cache.put(f"site{i}.com", RRType.A, [rr(f"site{i}.com", 300 + i)])
        assert len(cache) <= 10
        assert cache.stats.evictions >= 15

    def test_stale_evicted_first(self):
        clock = SimulatedClock()
        cache = DnsCache(clock, max_entries=2)
        cache.put("old.com", RRType.A, [rr("old.com", 5)])
        clock.advance(6)
        cache.put("a.com", RRType.A, [rr("a.com", 300)])
        cache.put("b.com", RRType.A, [rr("b.com", 300)])
        assert cache.peek("a.com", RRType.A) is not None

    def test_overwrite_at_capacity_does_not_evict(self):
        # Regression: a full cache used to shed an unrelated entry even
        # when the write only refreshed an existing key.
        cache = DnsCache(SimulatedClock(), max_entries=3)
        for i in range(3):
            cache.put(f"site{i}.com", RRType.A, [rr(f"site{i}.com", 300)])
        cache.put("site0.com", RRType.A, [rr("site0.com", 600, "10.0.0.9")])
        assert cache.stats.evictions == 0
        for i in range(3):
            assert cache.peek(f"site{i}.com", RRType.A) is not None

    def test_negative_overwrite_at_capacity_does_not_evict(self):
        cache = DnsCache(SimulatedClock(), max_entries=2)
        cache.put_negative("gone.com", RRType.A, soa_minimum=60, nxdomain=True)
        cache.put("x.com", RRType.A, [rr("x.com", 300)])
        cache.put_negative("gone.com", RRType.A, soa_minimum=120, nxdomain=True)
        assert cache.stats.evictions == 0
        assert cache.peek("x.com", RRType.A) is not None

    def test_capacity_eviction_drops_soonest_to_expire(self):
        cache = DnsCache(SimulatedClock(), max_entries=3)
        cache.put("late.com", RRType.A, [rr("late.com", 900)])
        cache.put("soon.com", RRType.A, [rr("soon.com", 30)])
        cache.put("mid.com", RRType.A, [rr("mid.com", 300)])
        cache.put("new.com", RRType.A, [rr("new.com", 600)])
        assert cache.peek("soon.com", RRType.A) is None
        for name in ("late.com", "mid.com", "new.com"):
            assert cache.peek(name, RRType.A) is not None
        assert cache.stats.evictions == 1

    def test_expired_lookup_counts_expired_and_miss(self):
        clock = SimulatedClock()
        cache = DnsCache(clock)
        cache.put("x.com", RRType.A, [rr("x.com", 30)])
        clock.advance(31)
        assert cache.get("x.com", RRType.A) is None
        assert cache.stats.expired == 1
        assert cache.stats.misses == 1
        # The stale entry was dropped, so the next miss is a plain miss.
        assert cache.get("x.com", RRType.A) is None
        assert cache.stats.expired == 1
        assert cache.stats.misses == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DnsCache(SimulatedClock(), max_entries=0)

    def test_flush(self):
        cache = DnsCache(SimulatedClock())
        cache.put("x.com", RRType.A, [rr("x.com", 300)])
        cache.flush()
        assert len(cache) == 0
