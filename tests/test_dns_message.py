"""Unit + property tests for the DNS wire format."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dnssim.errors import MessageFormatError
from repro.dnssim.message import DnsMessage, Question, RCode
from repro.dnssim.records import (
    ARecord,
    CNAMERecord,
    MXRecord,
    NSRecord,
    RRType,
    ResourceRecord,
    SOARecord,
    TXTRecord,
)


def roundtrip(message: DnsMessage) -> DnsMessage:
    return DnsMessage.from_wire(message.to_wire())


class TestQueryRoundtrip:
    def test_simple_query(self):
        msg = DnsMessage.query("www.example.com", RRType.A, msg_id=42, rd=True)
        out = roundtrip(msg)
        assert out.id == 42
        assert out.rd is True
        assert out.question.qname == "www.example.com"
        assert out.question.qtype == RRType.A

    def test_root_query(self):
        out = roundtrip(DnsMessage.query("", RRType.NS))
        assert out.question.qname == ""

    def test_flags_roundtrip(self):
        msg = DnsMessage.query("x.com", RRType.A)
        response = msg.response(rcode=RCode.NXDOMAIN)
        response.ra = True
        out = roundtrip(response)
        assert out.qr and out.aa and out.ra
        assert out.rcode == RCode.NXDOMAIN


class TestAnswerRoundtrip:
    def test_all_rdata_types(self):
        msg = DnsMessage.query("example.com", RRType.A).response()
        msg.answers = [
            ResourceRecord("example.com", 300, ARecord("93.184.216.34")),
            ResourceRecord("example.com", 300, NSRecord("ns1.example.com")),
            ResourceRecord("www.example.com", 60, CNAMERecord("example.com")),
            ResourceRecord("example.com", 600, MXRecord(10, "mail.example.com")),
            ResourceRecord("example.com", 120, TXTRecord("v=spf1 -all")),
        ]
        msg.authorities = [
            ResourceRecord(
                "example.com",
                3600,
                SOARecord("ns1.example.com", "admin.example.com", 7, 1, 2, 3, 4),
            )
        ]
        msg.additionals = [
            ResourceRecord("ns1.example.com", 300, ARecord("10.0.0.1")),
        ]
        out = roundtrip(msg)
        assert out.answers == msg.answers
        assert out.authorities == msg.authorities
        assert out.additionals == msg.additionals

    def test_compression_shrinks_message(self):
        msg = DnsMessage.query("a.very.long.label.example.com", RRType.NS).response()
        msg.answers = [
            ResourceRecord(
                "a.very.long.label.example.com",
                300,
                NSRecord(f"ns{i}.a.very.long.label.example.com"),
            )
            for i in range(4)
        ]
        wire = msg.to_wire()
        uncompressed_estimate = sum(
            len(rr.name) + len(rr.rdata.nsdname) + 16 for rr in msg.answers
        )
        assert len(wire) < uncompressed_estimate
        assert roundtrip(msg).answers == msg.answers

    def test_soa_second_name_compression_is_correct(self):
        # Regression: SOA carries two names back to back; offsets for the
        # second must account for the first.
        msg = DnsMessage.query("zone.example", RRType.SOA).response()
        msg.answers = [
            ResourceRecord(
                "zone.example",
                300,
                SOARecord("primary.zone.example", "admin.zone.example"),
            ),
            ResourceRecord(
                "sub.zone.example",
                300,
                SOARecord("primary.zone.example", "admin.zone.example"),
            ),
        ]
        assert roundtrip(msg).answers == msg.answers

    def test_mx_name_offset_padding(self):
        # Regression: the MX preference word precedes the exchange name.
        msg = DnsMessage.query("x.com", RRType.MX).response()
        msg.answers = [
            ResourceRecord("x.com", 10, MXRecord(5, "mail.x.com")),
            ResourceRecord("x.com", 10, MXRecord(10, "mail.x.com")),
        ]
        assert roundtrip(msg).answers == msg.answers

    def test_txt_longer_than_255_bytes(self):
        text = "x" * 700
        msg = DnsMessage.query("x.com", RRType.TXT).response()
        msg.answers = [ResourceRecord("x.com", 10, TXTRecord(text))]
        assert roundtrip(msg).answers[0].rdata.text == text


class TestMalformedInput:
    def test_truncated_header(self):
        with pytest.raises(MessageFormatError):
            DnsMessage.from_wire(b"\x00\x01\x02")

    def test_name_past_end(self):
        wire = bytearray(DnsMessage.query("example.com", RRType.A).to_wire())
        with pytest.raises(MessageFormatError):
            DnsMessage.from_wire(bytes(wire[:14]))

    def test_pointer_loop(self):
        # Header + a question whose name is a self-referencing pointer.
        header = (0).to_bytes(2, "big") + (0).to_bytes(2, "big")
        header += (1).to_bytes(2, "big") + b"\x00\x00" * 3
        pointer = b"\xc0\x0c"  # points at itself (offset 12)
        question = pointer + (1).to_bytes(2, "big") + (1).to_bytes(2, "big")
        with pytest.raises(MessageFormatError):
            DnsMessage.from_wire(header + question)


_label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=12)
_names = st.lists(_label, min_size=1, max_size=5).map(".".join)


class TestPropertyRoundtrip:
    @given(name=_names, msg_id=st.integers(0, 0xFFFF))
    @settings(max_examples=60)
    def test_query_roundtrip(self, name, msg_id):
        msg = DnsMessage.query(name, RRType.A, msg_id=msg_id)
        out = roundtrip(msg)
        assert out.question.qname == name
        assert out.id == msg_id

    @given(
        names=st.lists(_names, min_size=1, max_size=6),
        ttl=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60)
    def test_answer_roundtrip_arbitrary_names(self, names, ttl):
        msg = DnsMessage.query(names[0], RRType.NS).response()
        msg.answers = [
            ResourceRecord(name, ttl, NSRecord(f"ns.{name}")) for name in names
        ]
        assert roundtrip(msg).answers == msg.answers
