"""Unit tests for DNS resource records and rdata."""

import pytest

from repro.dnssim.records import (
    ARecord,
    AAAARecord,
    CNAMERecord,
    MXRecord,
    NSRecord,
    RRType,
    ResourceRecord,
    SOARecord,
    TXTRecord,
    rdata_class_for,
)


class TestRRType:
    def test_parse_from_name(self):
        assert RRType.parse("ns") == RRType.NS
        assert RRType.parse("A") == RRType.A

    def test_parse_from_int(self):
        assert RRType.parse(5) == RRType.CNAME

    def test_parse_passthrough(self):
        assert RRType.parse(RRType.SOA) == RRType.SOA

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError):
            RRType.parse("NOPE")

    def test_iana_values(self):
        assert RRType.A == 1
        assert RRType.NS == 2
        assert RRType.CNAME == 5
        assert RRType.SOA == 6
        assert RRType.MX == 15
        assert RRType.TXT == 16
        assert RRType.AAAA == 28


class TestARecord:
    def test_valid(self):
        assert ARecord("192.0.2.1").address == "192.0.2.1"

    @pytest.mark.parametrize(
        "bad", ["256.1.1.1", "1.2.3", "a.b.c.d", "1.2.3.4.5", ""]
    )
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            ARecord(bad)


class TestNameRdata:
    def test_ns_normalizes(self):
        assert NSRecord("NS1.Example.COM.").nsdname == "ns1.example.com"

    def test_cname_normalizes(self):
        assert CNAMERecord("Edge.CDN.Net").target == "edge.cdn.net"

    def test_soa_normalizes_names(self):
        soa = SOARecord("NS1.X.COM", "Admin.X.COM")
        assert soa.mname == "ns1.x.com"
        assert soa.rname == "admin.x.com"

    def test_mx(self):
        mx = MXRecord(10, "Mail.X.com")
        assert mx.exchange == "mail.x.com"
        assert mx.preference == 10


class TestResourceRecord:
    def test_owner_normalized(self):
        rr = ResourceRecord("WWW.X.COM", 300, ARecord("1.2.3.4"))
        assert rr.name == "www.x.com"
        assert rr.rrtype == RRType.A

    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            ResourceRecord("x.com", -1, ARecord("1.2.3.4"))

    def test_records_hashable_and_dedupable(self):
        a = ResourceRecord("x.com", 300, ARecord("1.2.3.4"))
        b = ResourceRecord("x.com", 300, ARecord("1.2.3.4"))
        assert a == b
        assert len({a, b}) == 1

    def test_str_rendering(self):
        rr = ResourceRecord("x.com", 60, TXTRecord("hello"))
        assert "x.com 60 IN TXT" in str(rr)

    def test_rdata_class_lookup(self):
        assert rdata_class_for(RRType.AAAA) is AAAARecord
        with pytest.raises(ValueError):
            rdata_class_for(99)  # type: ignore[arg-type]
