"""Integration tests for iterative resolution over a hand-built DNS tree."""

import pytest

from repro.dnssim import (
    AuthoritativeServer,
    DigClient,
    DnsNetwork,
    IterativeResolver,
    SimulatedClock,
)
from repro.dnssim.errors import NoSuchDomainError, ResolutionError
from repro.dnssim.message import RCode
from repro.dnssim.records import (
    ARecord,
    CNAMERecord,
    NSRecord,
    RRType,
    SOARecord,
)
from repro.dnssim.zone import Zone


@pytest.fixture
def tree():
    """root -> com/net -> example.com (on third-party dyn) + dynect.net."""
    clock = SimulatedClock()
    net = DnsNetwork()

    root_zone = Zone("", SOARecord("a.root-servers.net", "nstld.example"))
    root = AuthoritativeServer("a.root-servers.net", ["10.0.0.1"])
    root.serve_zone(root_zone)
    net.register_server(root)

    tld = AuthoritativeServer("a.gtld-servers.net", ["10.0.0.2"])
    com = Zone("com", SOARecord("a.gtld-servers.net", "registry.example"))
    netz = Zone("net", SOARecord("a.gtld-servers.net", "registry.example"))
    tld.serve_zone(com)
    tld.serve_zone(netz)
    net.register_server(tld)
    for suffix in ("com", "net"):
        root_zone.add(suffix, NSRecord("a.gtld-servers.net"))
    root_zone.add("a.gtld-servers.net", ARecord("10.0.0.2"))

    dyn = AuthoritativeServer("ns1.dynect.net", ["10.0.0.3"])
    dyn_zone = Zone("dynect.net", SOARecord("ns1.dynect.net", "hostmaster.dynect.net"))
    dyn_zone.add("dynect.net", NSRecord("ns1.dynect.net"))
    dyn_zone.add("ns1.dynect.net", ARecord("10.0.0.3"))
    dyn.serve_zone(dyn_zone)
    net.register_server(dyn)
    netz.add("dynect.net", NSRecord("ns1.dynect.net"))
    netz.add("ns1.dynect.net", ARecord("10.0.0.3"))

    example = Zone("example.com", SOARecord("ns1.dynect.net", "hostmaster.dynect.net"))
    example.add("example.com", NSRecord("ns1.dynect.net"))
    example.add("example.com", ARecord("93.184.216.34"))
    example.add("www.example.com", CNAMERecord("example.com"))
    example.add("alias.example.com", CNAMERecord("edge.dynect.net"))
    dyn_zone.add("edge.dynect.net", ARecord("10.7.7.7"))
    dyn.serve_zone(example)
    com.add("example.com", NSRecord("ns1.dynect.net"))  # glueless delegation

    clockres = SimulatedClock()
    resolver = IterativeResolver(net, {"a.root-servers.net": "10.0.0.1"}, clockres)
    return net, resolver, dyn, clockres


class TestResolution:
    def test_simple_a(self, tree):
        _, resolver, _, _ = tree
        records = resolver.resolve("example.com", RRType.A)
        assert records[0].rdata.address == "93.184.216.34"

    def test_glueless_delegation(self, tree):
        # example.com's delegation carries no glue: the resolver must
        # resolve ns1.dynect.net on the side.
        _, resolver, _, _ = tree
        assert resolver.resolve("example.com", RRType.A)
        assert resolver.stats.glueless_lookups >= 1

    def test_in_zone_cname(self, tree):
        _, resolver, _, _ = tree
        result = resolver.lookup("www.example.com", RRType.A)
        assert result.cname_chain == ["example.com"]
        assert result.records[0].rdata.address == "93.184.216.34"

    def test_cross_zone_cname(self, tree):
        _, resolver, _, _ = tree
        result = resolver.lookup("alias.example.com", RRType.A)
        assert result.final_name == "edge.dynect.net"
        assert result.records[0].rdata.address == "10.7.7.7"

    def test_nxdomain(self, tree):
        _, resolver, _, _ = tree
        result = resolver.lookup("missing.example.com", RRType.A)
        assert result.is_nxdomain
        with pytest.raises(NoSuchDomainError):
            resolver.resolve("missing.example.com", RRType.A)

    def test_nodata_returns_empty_with_soa(self, tree):
        _, resolver, _, _ = tree
        result = resolver.lookup("example.com", RRType.TXT)
        assert result.rcode == RCode.NOERROR
        assert result.records == []
        assert result.authority_soa is not None

    def test_caching_suppresses_queries(self, tree):
        _, resolver, _, _ = tree
        resolver.resolve("example.com", RRType.A)
        before = resolver.stats.queries
        resolver.resolve("example.com", RRType.A)
        assert resolver.stats.queries == before

    def test_cache_expiry_requeries(self, tree):
        _, resolver, _, clock = tree
        resolver.resolve("example.com", RRType.A)
        before = resolver.stats.queries
        clock.advance(100_000)
        resolver.resolve("example.com", RRType.A)
        assert resolver.stats.queries > before

    def test_negative_cache(self, tree):
        _, resolver, _, _ = tree
        resolver.lookup("missing.example.com", RRType.A)
        before = resolver.stats.queries
        result = resolver.lookup("missing.example.com", RRType.A)
        assert result.is_nxdomain
        assert resolver.stats.queries == before

    def test_sibling_reuses_delegation_cache(self, tree):
        _, resolver, _, _ = tree
        resolver.resolve("example.com", RRType.A)
        before = resolver.stats.queries
        resolver.lookup("www.example.com", RRType.A)
        # Should start at the cached example.com nameservers, not the root.
        assert resolver.stats.queries - before <= 2

    def test_outage_fails_resolution(self, tree):
        net, resolver, dyn, _ = tree
        net.set_server_available(dyn, False)
        with pytest.raises(ResolutionError):
            resolver.resolve("example.com", RRType.A)

    def test_resolve_address_helper(self, tree):
        _, resolver, _, _ = tree
        assert resolver.resolve_address("example.com") == ["93.184.216.34"]
        assert resolver.resolve_address("missing.example.com") == []

    def test_needs_root_hints(self, tree):
        net, *_ = tree
        with pytest.raises(ValueError):
            IterativeResolver(net, {})


class TestDigClient:
    def test_ns(self, tree):
        _, resolver, _, _ = tree
        dig = DigClient(resolver)
        assert dig.ns("example.com") == ["ns1.dynect.net"]

    def test_ns_walks_up_for_hostnames(self, tree):
        _, resolver, _, _ = tree
        dig = DigClient(resolver)
        assert dig.ns("www.example.com") == ["ns1.dynect.net"]

    def test_soa(self, tree):
        _, resolver, _, _ = tree
        dig = DigClient(resolver)
        soa = dig.soa("www.example.com")
        assert soa is not None and soa.mname == "ns1.dynect.net"

    def test_cname(self, tree):
        _, resolver, _, _ = tree
        dig = DigClient(resolver)
        assert dig.cname("alias.example.com") == "edge.dynect.net"
        assert dig.cname("example.com") is None

    def test_cname_chain(self, tree):
        _, resolver, _, _ = tree
        dig = DigClient(resolver)
        assert dig.cname_chain("alias.example.com") == ["edge.dynect.net"]

    def test_is_resolvable_tracks_outage(self, tree):
        net, resolver, dyn, _ = tree
        dig = DigClient(resolver)
        assert dig.is_resolvable("example.com")
        net.set_server_available(dyn, False)
        resolver.cache.flush()
        assert not dig.is_resolvable("example.com")
