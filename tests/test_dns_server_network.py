"""Unit tests for the authoritative server and network fabric."""

import pytest

from repro.dnssim.errors import ServerUnavailableError
from repro.dnssim.message import DnsMessage, RCode
from repro.dnssim.network import DnsNetwork
from repro.dnssim.records import (
    ARecord,
    CNAMERecord,
    NSRecord,
    RRType,
    SOARecord,
)
from repro.dnssim.server import AuthoritativeServer
from repro.dnssim.zone import Zone


@pytest.fixture
def server() -> AuthoritativeServer:
    srv = AuthoritativeServer("ns1.example.com", ["10.0.0.1"], operator="example")
    zone = Zone("example.com", SOARecord("ns1.example.com", "admin.example.com"))
    zone.add("example.com", NSRecord("ns1.example.com"))
    zone.add("ns1.example.com", ARecord("10.0.0.1"))
    zone.add("example.com", ARecord("93.184.216.34"))
    zone.add("www.example.com", CNAMERecord("apex.example.com"))
    zone.add("apex.example.com", ARecord("93.184.216.34"))
    srv.serve_zone(zone)
    return srv


class TestServer:
    def test_requires_an_ip(self):
        with pytest.raises(ValueError):
            AuthoritativeServer("x", [])

    def test_answers_authoritatively(self, server):
        response = server.handle(DnsMessage.query("example.com", RRType.A))
        assert response.aa
        assert response.rcode == RCode.NOERROR
        assert response.answers[0].rdata.address == "93.184.216.34"

    def test_refuses_foreign_names(self, server):
        response = server.handle(DnsMessage.query("other.org", RRType.A))
        assert response.rcode == RCode.REFUSED
        assert not response.aa

    def test_nxdomain(self, server):
        response = server.handle(DnsMessage.query("no.example.com", RRType.A))
        assert response.rcode == RCode.NXDOMAIN
        assert response.authorities[0].rrtype == RRType.SOA

    def test_chases_in_zone_cnames(self, server):
        response = server.handle(DnsMessage.query("www.example.com", RRType.A))
        types = [rr.rrtype for rr in response.answers]
        assert RRType.CNAME in types and RRType.A in types

    def test_ns_answer_includes_glue(self, server):
        response = server.handle(DnsMessage.query("example.com", RRType.NS))
        assert any(rr.rrtype == RRType.A for rr in response.additionals)

    def test_empty_question_is_formerr(self, server):
        response = server.handle(DnsMessage())
        assert response.rcode == RCode.FORMERR

    def test_wire_roundtrip_path(self, server):
        query = DnsMessage.query("example.com", RRType.A, msg_id=9)
        wire = server.handle_wire(query.to_wire())
        response = DnsMessage.from_wire(wire)
        assert response.id == 9 and response.answers

    def test_most_specific_zone_wins(self, server):
        sub = Zone("sub.example.com", SOARecord("ns1.sub.example.com", "a.b"))
        sub.add("sub.example.com", ARecord("10.5.5.5"))
        server.serve_zone(sub)
        response = server.handle(DnsMessage.query("sub.example.com", RRType.A))
        assert response.answers[0].rdata.address == "10.5.5.5"

    def test_query_counter(self, server):
        before = server.queries_handled
        server.handle(DnsMessage.query("example.com", RRType.A))
        assert server.queries_handled == before + 1


class TestNetwork:
    def test_routing(self, server):
        net = DnsNetwork()
        net.register_server(server)
        wire = net.send("10.0.0.1", DnsMessage.query("example.com", RRType.A).to_wire())
        assert DnsMessage.from_wire(wire).answers

    def test_unknown_ip_times_out(self):
        net = DnsNetwork()
        with pytest.raises(ServerUnavailableError):
            net.send("10.9.9.9", b"\x00" * 12)

    def test_down_server_times_out(self, server):
        net = DnsNetwork()
        net.register_server(server)
        net.set_server_available(server, False)
        assert not net.is_available("10.0.0.1")
        with pytest.raises(ServerUnavailableError):
            net.send("10.0.0.1", b"\x00" * 12)
        net.set_server_available(server, True)
        assert net.is_available("10.0.0.1")

    def test_ip_conflict_rejected(self, server):
        net = DnsNetwork()
        net.register_server(server)
        other = AuthoritativeServer("ns2.other.net", ["10.0.0.1"])
        with pytest.raises(ValueError):
            net.register_server(other)

    def test_reregistering_same_server_ok(self, server):
        net = DnsNetwork()
        net.register_server(server)
        net.register_server(server)
        assert len(net.servers()) == 1

    def test_counters(self, server):
        net = DnsNetwork()
        net.register_server(server)
        net.send("10.0.0.1", DnsMessage.query("example.com", RRType.A).to_wire())
        net.set_server_available(server, False)
        with pytest.raises(ServerUnavailableError):
            net.send("10.0.0.1", b"")
        assert net.queries_sent == 2
        assert net.timeouts == 1
