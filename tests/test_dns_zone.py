"""Unit tests for authoritative zones."""

import pytest

from repro.dnssim.records import (
    ARecord,
    CNAMERecord,
    NSRecord,
    RRType,
    SOARecord,
    TXTRecord,
)
from repro.dnssim.zone import LookupKind, Zone, ZoneError


@pytest.fixture
def zone() -> Zone:
    z = Zone("example.com", SOARecord("ns1.example.com", "admin.example.com"))
    z.add("example.com", NSRecord("ns1.example.com"))
    z.add("example.com", ARecord("93.184.216.34"))
    z.add("www.example.com", CNAMERecord("cdn.example.net"))
    z.add("mail.example.com", ARecord("10.0.0.9"))
    return z


class TestConstruction:
    def test_soa_property(self, zone):
        assert zone.soa.mname == "ns1.example.com"

    def test_set_soa_replaces(self, zone):
        zone.set_soa(SOARecord("ns1.provider.net", "admin.provider.net"))
        assert zone.soa.mname == "ns1.provider.net"

    def test_out_of_zone_add_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.add("other.org", ARecord("1.2.3.4"))

    def test_cname_exclusivity(self, zone):
        with pytest.raises(ZoneError):
            zone.add("www.example.com", ARecord("1.2.3.4"))
        with pytest.raises(ZoneError):
            zone.add("mail.example.com", CNAMERecord("x.example.com"))

    def test_duplicate_records_dedupe(self, zone):
        before = len(zone.records_at("mail.example.com", RRType.A))
        zone.add("mail.example.com", ARecord("10.0.0.9"))
        assert len(zone.records_at("mail.example.com", RRType.A)) == before

    def test_delete(self, zone):
        assert zone.delete("mail.example.com", RRType.A) == 1
        assert zone.lookup("mail.example.com", RRType.A).kind == LookupKind.NXDOMAIN

    def test_contains(self, zone):
        assert "www.example.com" in zone
        assert "nope.example.com" not in zone


class TestLookup:
    def test_answer(self, zone):
        result = zone.lookup("example.com", RRType.A)
        assert result.kind == LookupKind.ANSWER
        assert result.records[0].rdata.address == "93.184.216.34"

    def test_cname(self, zone):
        result = zone.lookup("www.example.com", RRType.A)
        assert result.kind == LookupKind.CNAME
        assert result.records[0].rdata.target == "cdn.example.net"

    def test_cname_query_for_cname_type(self, zone):
        result = zone.lookup("www.example.com", RRType.CNAME)
        assert result.kind == LookupKind.ANSWER

    def test_nxdomain_carries_soa(self, zone):
        result = zone.lookup("nope.example.com", RRType.A)
        assert result.kind == LookupKind.NXDOMAIN
        assert result.authority[0].rrtype == RRType.SOA

    def test_nodata_for_existing_name_wrong_type(self, zone):
        result = zone.lookup("mail.example.com", RRType.TXT)
        assert result.kind == LookupKind.NODATA

    def test_empty_non_terminal_is_nodata(self, zone):
        zone.add("a.b.example.com", ARecord("10.1.1.1"))
        result = zone.lookup("b.example.com", RRType.A)
        assert result.kind == LookupKind.NODATA

    def test_out_of_zone_lookup_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.lookup("other.org", RRType.A)


class TestDelegation:
    def test_referral_below_cut(self, zone):
        zone.add("sub.example.com", NSRecord("ns1.sub.example.com"))
        zone.add("ns1.sub.example.com", ARecord("10.2.2.2"))
        result = zone.lookup("deep.sub.example.com", RRType.A)
        assert result.kind == LookupKind.DELEGATION
        assert result.authority[0].rdata.nsdname == "ns1.sub.example.com"
        assert result.glue[0].rdata.address == "10.2.2.2"

    def test_referral_at_cut_even_for_soa(self, zone):
        zone.add("sub.example.com", NSRecord("ns1.other.net"))
        result = zone.lookup("sub.example.com", RRType.SOA)
        assert result.kind == LookupKind.DELEGATION

    def test_apex_ns_is_answer_not_referral(self, zone):
        result = zone.lookup("example.com", RRType.NS)
        assert result.kind == LookupKind.ANSWER

    def test_topmost_cut_wins(self, zone):
        zone.add("sub.example.com", NSRecord("ns1.other.net"))
        zone.add("a.sub.example.com", NSRecord("ns1.deeper.net"))
        result = zone.lookup("x.a.sub.example.com", RRType.A)
        assert result.authority[0].name == "sub.example.com"


class TestWildcards:
    def test_wildcard_a(self, zone):
        zone.add("*.edge.example.com", ARecord("10.9.9.9"))
        result = zone.lookup("cust1.edge.example.com", RRType.A)
        assert result.kind == LookupKind.ANSWER
        assert result.records[0].name == "cust1.edge.example.com"

    def test_wildcard_cname(self, zone):
        zone.add("*.alias.example.com", CNAMERecord("target.example.com"))
        result = zone.lookup("x.alias.example.com", RRType.A)
        assert result.kind == LookupKind.CNAME

    def test_explicit_name_blocks_wildcard(self, zone):
        zone.add("*.edge.example.com", ARecord("10.9.9.9"))
        zone.add("special.edge.example.com", TXTRecord("explicit"))
        result = zone.lookup("special.edge.example.com", RRType.A)
        assert result.kind == LookupKind.NODATA
