"""Tests for master-file serialization of zones."""

import pytest

from repro.dnssim.records import (
    ARecord,
    CNAMERecord,
    MXRecord,
    NSRecord,
    RRType,
    SOARecord,
    TXTRecord,
)
from repro.dnssim.zone import Zone
from repro.dnssim.zonefile import (
    ZoneFileError,
    zone_from_text,
    zone_to_text,
    zones_to_text,
)


@pytest.fixture
def zone() -> Zone:
    z = Zone("example.com", SOARecord("ns1.example.com", "admin.example.com", 7))
    z.add("example.com", NSRecord("ns1.example.com"))
    z.add("example.com", ARecord("93.184.216.34"))
    z.add("ns1.example.com", ARecord("10.0.0.1"), ttl=600)
    z.add("www.example.com", CNAMERecord("cdn.provider.net"))
    z.add("example.com", MXRecord(10, "mail.example.com"))
    z.add("example.com", TXTRecord('v=spf1 include:"quoted" -all'))
    return z


class TestSerialization:
    def test_header(self, zone):
        text = zone_to_text(zone)
        assert text.startswith("$ORIGIN example.com.")
        assert "$TTL" in text

    def test_soa_first(self, zone):
        lines = [l for l in zone_to_text(zone).splitlines() if "\tIN\t" in l]
        assert "\tSOA\t" in lines[0]

    def test_relative_and_apex_names(self, zone):
        text = zone_to_text(zone)
        assert "\nwww\t" in text
        assert "\n@\t" in text

    def test_roundtrip_equality(self, zone):
        restored = zone_from_text(zone_to_text(zone))
        assert restored.origin == zone.origin
        assert restored.soa == zone.soa
        assert set(restored.all_records()) == set(zone.all_records())

    def test_multi_zone_serialization(self, zone):
        other = Zone("other.net", SOARecord("ns1.other.net", "h.other.net"))
        text = zones_to_text([zone, other])
        assert text.count("$ORIGIN") == 2


class TestParsing:
    def test_minimal_file(self):
        zone = zone_from_text(
            """
$ORIGIN example.com.
@ 3600 IN SOA ns1.example.com. admin.example.com. 1 7200 900 1209600 300
@ 300 IN NS ns1.example.com.
ns1 300 IN A 10.0.0.1
"""
        )
        assert zone.origin == "example.com"
        assert zone.records_at("ns1.example.com", RRType.A)

    def test_comments_ignored(self):
        zone = zone_from_text(
            """
$ORIGIN x.net.  ; the origin
@ IN SOA ns1.x.net. h.x.net. 1 2 3 4 5  ; the SOA
; a full-line comment
www IN A 10.1.1.1
"""
        )
        assert zone.records_at("www.x.net", RRType.A)

    def test_default_ttl_applies(self):
        zone = zone_from_text(
            """
$ORIGIN x.net.
$TTL 1234
@ IN SOA ns1.x.net. h.x.net. 1 2 3 4 5
www IN A 10.1.1.1
"""
        )
        assert zone.records_at("www.x.net", RRType.A)[0].ttl == 1234

    def test_continuation_owner(self):
        zone = zone_from_text(
            """
$ORIGIN x.net.
@ IN SOA ns1.x.net. h.x.net. 1 2 3 4 5
www IN A 10.1.1.1
    IN A 10.1.1.2
"""
        )
        assert len(zone.records_at("www.x.net", RRType.A)) == 2

    def test_quoted_txt(self):
        zone = zone_from_text(
            """
$ORIGIN x.net.
@ IN SOA ns1.x.net. h.x.net. 1 2 3 4 5
@ IN TXT "hello world"
"""
        )
        assert zone.records_at("x.net", RRType.TXT)[0].rdata.text == "hello world"

    def test_errors(self):
        with pytest.raises(ZoneFileError):
            zone_from_text("$ORIGIN x.net.\nwww IN A 10.0.0.1\n")  # no SOA
        with pytest.raises(ZoneFileError):
            zone_from_text(
                "$ORIGIN x.net.\n@ IN SOA ns1.x.net. h.x.net. 1 2 3 4 5\n"
                "@ IN SOA ns2.x.net. h.x.net. 1 2 3 4 5\n"
            )
        with pytest.raises(ZoneFileError):
            zone_from_text(
                "$ORIGIN x.net.\n@ IN SOA ns1.x.net. h.x.net. 1 2 3 4 5\n"
                "www IN BOGUS data\n"
            )
        with pytest.raises(ZoneFileError):
            zone_from_text(
                "$ORIGIN x.net.\n@ IN SOA ns1.x.net. h.x.net. 1 2 3 4 5\n"
                "www IN MX not-a-number mail\n"
            )


class TestWorldZoneDump:
    def test_generated_zone_roundtrips(self, world_2020):
        infra = world_2020.website_infra["twitter.com"]
        restored = zone_from_text(zone_to_text(infra.zone))
        assert set(restored.all_records()) == set(infra.zone.all_records())
