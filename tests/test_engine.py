"""Tests for the campaign-execution engine (repro.engine).

The core guarantee under test: for a fixed world fingerprint, the
engine's merged dataset serializes to the *exact bytes* of a direct
serial :meth:`MeasurementCampaign.run`, for any shard count, worker
count, or interrupt/resume history. ``REPRO_ENGINE_WORKERS`` (default
2) sets the parallel worker count so CI can push it higher.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import WorldConfig, build_world
from repro.engine import (
    CampaignStats,
    CheckpointStore,
    ProgressReporter,
    StaleCheckpointError,
    WorldFingerprint,
    partition_sites,
    plan_campaign,
    run_campaign,
)
from repro.faults import FaultPlan, FaultRule
from repro.measurement.io import dataset_from_json, dataset_to_json
from repro.measurement.runner import MeasurementCampaign

ENGINE_N = 240
ENGINE_SEED = 7
WORKERS = int(os.environ.get("REPRO_ENGINE_WORKERS", "2"))


@pytest.fixture(scope="module")
def engine_config() -> WorldConfig:
    return WorldConfig(n_websites=ENGINE_N, seed=ENGINE_SEED)


@pytest.fixture(scope="module")
def serial_json(engine_config) -> str:
    """The ground truth: a direct serial campaign, serialized."""
    world = build_world(engine_config)
    return dataset_to_json(MeasurementCampaign(world).run())


class TestPlanning:
    def test_partition_is_contiguous_and_near_equal(self):
        sites = [(f"site{i}.com", i + 1) for i in range(10)]
        shards = partition_sites(sites, 3)
        assert [s.n_sites for s in shards] == [4, 3, 3]
        flattened = [site for shard in shards for site in shard.sites]
        assert flattened == sites
        assert [s.shard_id for s in shards] == [0, 1, 2]

    def test_partition_never_makes_empty_shards(self):
        sites = [("a.com", 1), ("b.com", 2)]
        shards = partition_sites(sites, 8)
        assert len(shards) == 2
        assert all(s.n_sites == 1 for s in shards)

    def test_partition_rejects_bad_count(self):
        with pytest.raises(ValueError):
            partition_sites([("a.com", 1)], 0)

    def test_plan_covers_ranked_list_in_order(self, engine_config):
        world = build_world(engine_config)
        plan = plan_campaign(world, n_shards=7, limit=50)
        assert plan.n_sites == 50
        ranks = [
            rank for shard in plan.shards for _, rank in shard.sites
        ]
        assert ranks == sorted(ranks)
        assert plan.fingerprint == WorldFingerprint(
            n_websites=ENGINE_N, seed=ENGINE_SEED, year=2020, limit=50
        )

    def test_fingerprint_json_roundtrip(self):
        fp = WorldFingerprint(
            n_websites=300, seed=9, year=2016, region="eu", limit=10
        )
        assert WorldFingerprint.from_json(fp.to_json()) == fp

    def test_shard_digest_tracks_content(self):
        sites = (("a.com", 1), ("b.com", 2))
        from repro.engine import ShardSpec

        assert (
            ShardSpec(0, sites).digest()
            != ShardSpec(0, (("a.com", 1), ("c.com", 2))).digest()
        )


class TestEquivalence:
    """Serial, 1-worker sharded, and N-worker sharded runs are
    byte-identical — the PR's acceptance criterion."""

    def test_single_shard_single_worker(self, engine_config, serial_json):
        result = run_campaign(engine_config, shards=1, workers=1)
        assert dataset_to_json(result) == serial_json

    def test_many_shards_single_worker(self, engine_config, serial_json):
        result = run_campaign(engine_config, shards=8, workers=1)
        assert dataset_to_json(result) == serial_json

    def test_many_shards_many_workers(self, engine_config, serial_json):
        result = run_campaign(engine_config, shards=8, workers=WORKERS)
        assert dataset_to_json(result) == serial_json

    def test_limit_and_shards(self, engine_config):
        world = build_world(engine_config)
        direct = MeasurementCampaign(world, limit=40).run()
        sharded = run_campaign(engine_config, shards=5, workers=1, limit=40)
        assert dataset_to_json(sharded) == dataset_to_json(direct)


class _AbortAfter(ProgressReporter):
    """Simulates a kill: raises after k shards have been checkpointed."""

    def __init__(self, k: int):
        self.k = k

    def on_shard_done(self, shard_id, n_sites, stats) -> None:
        if stats.shards_done >= self.k:
            raise KeyboardInterrupt("simulated kill")


class TestCheckpointResume:
    def test_interrupted_run_resumes_to_identical_bytes(
        self, engine_config, serial_json, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                engine_config,
                shards=6,
                workers=1,
                checkpoint_dir=str(ckpt),
                progress=_AbortAfter(2),
            )
        store = CheckpointStore(ckpt)
        assert store.completed_shards() == {0, 1}

        stats = CampaignStats()
        result = run_campaign(
            engine_config,
            shards=6,
            workers=1,
            checkpoint_dir=str(ckpt),
            resume=True,
            stats=stats,
        )
        assert stats.shards_skipped == 2
        assert stats.shards_done == 4
        assert dataset_to_json(result) == serial_json

    def test_fully_checkpointed_run_remerges_identically(
        self, engine_config, serial_json, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        first = run_campaign(
            engine_config, shards=4, workers=1, checkpoint_dir=str(ckpt)
        )
        assert dataset_to_json(first) == serial_json
        stats = CampaignStats()
        again = run_campaign(
            engine_config,
            shards=4,
            workers=1,
            checkpoint_dir=str(ckpt),
            resume=True,
            stats=stats,
        )
        assert stats.shards_done == 0
        assert stats.shards_skipped == 4
        assert dataset_to_json(again) == serial_json

    def test_existing_checkpoint_requires_resume_flag(
        self, engine_config, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        run_campaign(
            engine_config, shards=2, workers=1, checkpoint_dir=str(ckpt)
        )
        with pytest.raises(ValueError, match="resume"):
            run_campaign(
                engine_config, shards=2, workers=1, checkpoint_dir=str(ckpt)
            )

    def test_torn_shard_write_is_invisible(self, engine_config, tmp_path):
        """A .tmp file left by a killed write is not a completed shard."""
        store = CheckpointStore(tmp_path / "ckpt")
        store.directory.mkdir(parents=True)
        (store.directory / "shard-0003.json.tmp").write_text("{partial")
        assert store.completed_shards() == set()


class TestStaleCheckpoints:
    @pytest.fixture()
    def checkpointed(self, engine_config, tmp_path):
        ckpt = tmp_path / "ckpt"
        run_campaign(
            engine_config, shards=3, workers=1, checkpoint_dir=str(ckpt)
        )
        return ckpt

    def test_world_fingerprint_mismatch_is_refused(self, checkpointed):
        other = WorldConfig(n_websites=ENGINE_N, seed=ENGINE_SEED + 1)
        with pytest.raises(StaleCheckpointError, match="seed=8"):
            run_campaign(
                other,
                shards=3,
                workers=1,
                checkpoint_dir=str(checkpointed),
                resume=True,
            )

    def test_shard_count_mismatch_is_refused(self, engine_config, checkpointed):
        with pytest.raises(StaleCheckpointError, match="shards"):
            run_campaign(
                engine_config,
                shards=5,
                workers=1,
                checkpoint_dir=str(checkpointed),
                resume=True,
            )

    def test_tampered_manifest_is_refused(self, engine_config, checkpointed):
        manifest_path = checkpointed / "manifest.json"
        payload = json.loads(manifest_path.read_text())
        payload["shards"][0]["sites_sha256"] = "0" * 64
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(StaleCheckpointError, match="different site list"):
            run_campaign(
                engine_config,
                shards=3,
                workers=1,
                checkpoint_dir=str(checkpointed),
                resume=True,
            )

    def test_unreadable_manifest_is_refused(self, engine_config, tmp_path):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        (ckpt / "manifest.json").write_text("not json")
        with pytest.raises(StaleCheckpointError, match="unreadable"):
            run_campaign(
                engine_config,
                shards=3,
                workers=1,
                checkpoint_dir=str(ckpt),
                resume=True,
            )


def _chaos_plan() -> FaultPlan:
    """A shard-stable chaos scenario: DNS faults scoped to provider
    nameservers, web faults scheduled by rank window — the two scoping
    mechanisms whose fault draws are independent of cache state and
    worker assignment."""
    return FaultPlan(
        rules=(
            FaultRule(name="dyn-flaky", layer="dns", kind="drop",
                      server="dynect.net", probability=0.5),
            FaultRule(name="head-brownout", layer="web", kind="http_error",
                      status=502, probability=0.7, rank_window=(1, 10)),
            FaultRule(name="ocsp-rot", layer="tls", kind="ocsp_expired",
                      probability=0.3),
        ),
        seed=2020,
    )


class TestChaosDeterminism:
    """Under a fault plan, serial and sharded/parallel runs — including
    interrupted-and-resumed ones — still merge to identical bytes."""

    @pytest.fixture(scope="class")
    def chaos_json(self, engine_config) -> str:
        world = build_world(engine_config)
        dataset = MeasurementCampaign(world, fault_plan=_chaos_plan()).run()
        return dataset_to_json(dataset)

    def test_chaos_campaign_completes_with_degraded_records(self, chaos_json):
        dataset = dataset_from_json(chaos_json)
        assert len(dataset.websites) == ENGINE_N
        assert any(
            w.dns.degraded or w.tls.degraded or w.cdn.degraded
            for w in dataset.websites
        )
        assert any(
            max(w.dns.attempts, w.tls.attempts, w.cdn.attempts) > 1
            for w in dataset.websites
        )

    @pytest.mark.parametrize("shards,workers", [(1, 1), (8, 1), (8, WORKERS), (8, 4)])
    def test_sharded_chaos_matches_serial_bytes(
        self, engine_config, chaos_json, shards, workers
    ):
        result = run_campaign(
            engine_config, shards=shards, workers=workers,
            fault_plan=_chaos_plan(),
        )
        assert dataset_to_json(result) == chaos_json

    def test_empty_plan_matches_planless_run(self, engine_config, serial_json):
        result = run_campaign(
            engine_config, shards=4, workers=1, fault_plan=FaultPlan()
        )
        assert dataset_to_json(result) == serial_json

    def test_kill_and_resume_under_faults_matches_uninterrupted(
        self, engine_config, chaos_json, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                engine_config,
                shards=6,
                workers=1,
                checkpoint_dir=str(ckpt),
                progress=_AbortAfter(2),
                fault_plan=_chaos_plan(),
            )
        assert CheckpointStore(ckpt).completed_shards() == {0, 1}
        result = run_campaign(
            engine_config,
            shards=6,
            workers=1,
            checkpoint_dir=str(ckpt),
            resume=True,
            fault_plan=_chaos_plan(),
        )
        assert dataset_to_json(result) == chaos_json

    def test_resume_under_a_different_plan_is_refused(
        self, engine_config, tmp_path
    ):
        """The plan digest joins the world fingerprint: shards measured
        under one fault plan must not merge into another's campaign."""
        ckpt = tmp_path / "ckpt"
        run_campaign(
            engine_config, shards=2, workers=1, checkpoint_dir=str(ckpt),
            fault_plan=_chaos_plan(),
        )
        with pytest.raises(StaleCheckpointError, match="faults="):
            run_campaign(
                engine_config, shards=2, workers=1,
                checkpoint_dir=str(ckpt), resume=True,
            )

    def test_fingerprint_distinguishes_plans(self, engine_config):
        world = build_world(engine_config)
        plain = plan_campaign(world, n_shards=2)
        faulted = plan_campaign(world, n_shards=2, fault_plan=_chaos_plan())
        assert plain.fingerprint != faulted.fingerprint
        assert plain.fingerprint.fault_digest is None
        assert faulted.fingerprint.fault_digest == _chaos_plan().digest()
        assert "faults=" in faulted.fingerprint.describe()


def _metrics_telemetry():
    from repro.telemetry import TelemetryConfig

    return TelemetryConfig(metrics=True).build()


def _campaign_metrics_json(engine_config, **kwargs) -> str:
    from repro.telemetry import metrics_to_json

    telemetry = _metrics_telemetry()
    run_campaign(engine_config, telemetry=telemetry, **kwargs)
    assert telemetry.campaign_metrics is not None
    return metrics_to_json(telemetry.campaign_metrics)


class TestMetricsDeterminism:
    """The telemetry acceptance criterion: campaign metrics merge to
    byte-identical JSON at any shard/worker count, with and without a
    fault plan, across interrupt/resume histories."""

    @pytest.fixture(scope="class")
    def serial_metrics(self, engine_config) -> str:
        return _campaign_metrics_json(engine_config, shards=1, workers=1)

    @pytest.fixture(scope="class")
    def chaos_metrics(self, engine_config) -> str:
        return _campaign_metrics_json(
            engine_config, shards=1, workers=1, fault_plan=_chaos_plan()
        )

    @pytest.mark.parametrize(
        "shards,workers", [(8, 1), (8, WORKERS), (8, 4)]
    )
    def test_metrics_byte_identical_across_workers(
        self, engine_config, serial_metrics, shards, workers
    ):
        produced = _campaign_metrics_json(
            engine_config, shards=shards, workers=workers
        )
        assert produced == serial_metrics

    @pytest.mark.parametrize(
        "shards,workers", [(8, 1), (8, WORKERS), (8, 4)]
    )
    def test_chaos_metrics_byte_identical_across_workers(
        self, engine_config, chaos_metrics, shards, workers
    ):
        produced = _campaign_metrics_json(
            engine_config,
            shards=shards,
            workers=workers,
            fault_plan=_chaos_plan(),
        )
        assert produced == chaos_metrics

    def test_chaos_metrics_record_the_faults(self, engine_config):
        from repro.telemetry import TelemetryConfig

        telemetry = TelemetryConfig(metrics=True).build()
        run_campaign(
            engine_config, shards=4, workers=1, fault_plan=_chaos_plan(),
            telemetry=telemetry,
        )
        counters = telemetry.campaign_metrics["counters"]
        assert counters["sites"] == ENGINE_N
        assert counters["faults.sites_live{rule=head-brownout}"] == 10
        assert any(k.startswith("sites.degraded{") for k in counters)

    def test_kill_and_resume_merges_checkpointed_metrics(
        self, engine_config, serial_metrics, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                engine_config,
                shards=6,
                workers=1,
                checkpoint_dir=str(ckpt),
                progress=_AbortAfter(2),
                telemetry=_metrics_telemetry(),
            )
        # The resumed run merges shards 0-1 from their checkpointed
        # registry state, not from a live registry.
        produced = _campaign_metrics_json(
            engine_config,
            shards=6,
            workers=1,
            checkpoint_dir=str(ckpt),
            resume=True,
        )
        assert produced == serial_metrics

    def test_resume_without_checkpointed_metrics_is_refused(
        self, engine_config, tmp_path
    ):
        ckpt = tmp_path / "ckpt"
        run_campaign(
            engine_config, shards=2, workers=1, checkpoint_dir=str(ckpt)
        )
        with pytest.raises(ValueError, match="without telemetry"):
            run_campaign(
                engine_config,
                shards=2,
                workers=1,
                checkpoint_dir=str(ckpt),
                resume=True,
                telemetry=_metrics_telemetry(),
            )

    def test_telemetry_less_shards_keep_the_v3_era_bytes(
        self, engine_config, tmp_path
    ):
        """No telemetry → no ``metrics`` key: checkpoints from plain runs
        are byte-identical to what pre-telemetry builds wrote."""
        ckpt = tmp_path / "ckpt"
        run_campaign(
            engine_config, shards=2, workers=1, limit=20,
            checkpoint_dir=str(ckpt),
        )
        payload = json.loads((ckpt / "shard-0000.json").read_text())
        assert "metrics" not in payload


_WALLCLOCK_KEY_FRAGMENTS = (
    "wall", "elapsed", "monotonic", "perf_counter", "timestamp",
    "created_at", "started_at", "finished_at", "duration_s",
)


def _assert_no_wallclock_keys(payload, path="$"):
    if isinstance(payload, dict):
        for key, value in payload.items():
            lowered = key.lower()
            for fragment in _WALLCLOCK_KEY_FRAGMENTS:
                assert fragment not in lowered, (
                    f"wall-clock-ish key {key!r} at {path} in a serialized "
                    f"artifact (REP006: only simulated time may be persisted)"
                )
            _assert_no_wallclock_keys(value, f"{path}.{key}")
    elif isinstance(payload, list):
        for i, item in enumerate(payload):
            _assert_no_wallclock_keys(item, f"{path}[{i}]")


class TestNoWallClockInArtifacts:
    """Regression guard for the progress-timer coupling: no serialized
    artifact (dataset, metrics, checkpoint shard, manifest) may carry a
    wall-clock-derived field, and two runs produce identical bytes even
    though real time passed between them."""

    def test_artifacts_carry_no_wallclock_fields(self, engine_config, tmp_path):
        from repro.telemetry import metrics_to_json

        ckpt = tmp_path / "ckpt"
        telemetry = _metrics_telemetry()
        dataset = run_campaign(
            engine_config, shards=3, workers=1, limit=30,
            checkpoint_dir=str(ckpt), telemetry=telemetry,
        )
        _assert_no_wallclock_keys(json.loads(dataset_to_json(dataset)))
        _assert_no_wallclock_keys(
            json.loads(metrics_to_json(telemetry.campaign_metrics))
        )
        for artifact in sorted(ckpt.glob("*.json")):
            _assert_no_wallclock_keys(
                json.loads(artifact.read_text()), artifact.name
            )

    def test_wallclock_stats_exist_but_stay_out_of_band(self, engine_config):
        """The operator-facing timings live in CampaignStats (backed by
        repro.telemetry.profile), not in any serialized payload."""
        stats = CampaignStats()
        dataset = run_campaign(
            engine_config, shards=2, workers=1, limit=20, stats=stats
        )
        assert stats.measure_seconds >= 0.0
        assert "seconds" not in dataset_to_json(dataset)

    def test_reruns_are_byte_identical_despite_real_time_passing(
        self, engine_config
    ):
        import time as _time

        first = _campaign_metrics_json(engine_config, shards=2, workers=1,
                                       limit=20)
        _time.sleep(0.05)
        second = _campaign_metrics_json(engine_config, shards=2, workers=1,
                                        limit=20)
        assert first == second


class TestStats:
    def test_stats_and_phases_are_recorded(self, engine_config):
        stats = CampaignStats()
        run_campaign(engine_config, shards=4, workers=1, stats=stats)
        assert stats.shards_total == 4
        assert stats.shards_done == 4
        assert stats.sites_done == ENGINE_N
        assert set(stats.phase_seconds) == {"plan", "measure", "merge"}
        assert stats.sites_per_sec > 0

    def test_console_progress_writes_to_stream(self, engine_config):
        import io

        from repro.engine import ConsoleProgress

        stream = io.StringIO()
        run_campaign(
            engine_config,
            shards=2,
            workers=1,
            limit=20,
            progress=ConsoleProgress(stream),
        )
        output = stream.getvalue()
        assert "plan: 20 sites in 2 shards" in output
        assert "shard 0001 done" in output
        assert "finished:" in output
