"""Differential tests for incremental epoch remeasurement (repro.engine.epochs).

The contract under test: for every epoch of a timeline, the incrementally
spliced dataset serializes to the exact bytes a full from-scratch campaign
against that epoch's world produces. This is the longitudinal extension of
the engine's determinism guarantee, and what lets `BENCH_epoch.json` claim
the incremental path is a pure speedup rather than an approximation.
"""

import pytest

from repro.engine.epochs import EpochResult, run_timeline
from repro.measurement.io import dataset_to_json
from repro.worldgen.timeline import Timeline, TimelineConfig

CFG = TimelineConfig(n_websites=150, seed=7, epochs=4, churn_rate=0.10)


@pytest.fixture(scope="module")
def full_results():
    """The from-scratch baseline: every epoch measured in full, serially."""
    return run_timeline(CFG, full=True)


@pytest.fixture(scope="module")
def full_bytes(full_results):
    return [dataset_to_json(r.dataset) for r in full_results]


class TestIncrementalEqualsFull:
    def test_serial_incremental_is_byte_identical(self, full_bytes):
        results = run_timeline(CFG)
        assert len(results) == CFG.epochs
        for result, expected in zip(results, full_bytes):
            assert dataset_to_json(result.dataset) == expected, (
                f"epoch {result.epoch} diverged from full recompute"
            )

    def test_sharded_two_worker_incremental_is_byte_identical(
        self, full_bytes
    ):
        results = run_timeline(CFG, shards=4, workers=2)
        for result, expected in zip(results, full_bytes):
            assert dataset_to_json(result.dataset) == expected, (
                f"epoch {result.epoch} diverged under 2 workers"
            )

    def test_incremental_measures_only_the_churn_slice(self, full_results):
        results = run_timeline(CFG)
        assert results[0].sites_measured == CFG.n_websites
        for result in results[1:]:
            assert result.sites_measured == len(result.changes.changed)
            # With only 4 epochs each step spans >1 year of market drift,
            # so the slice is sizeable — but it must stay a strict subset,
            # or "incremental" buys nothing. (The benchmark's 20-epoch
            # timeline pins the interesting ~6x regime.)
            assert result.sites_measured < CFG.n_websites

    def test_epoch_metadata(self, full_results):
        for k, result in enumerate(full_results):
            assert isinstance(result, EpochResult)
            assert result.epoch == k
            assert result.sites_total == CFG.n_websites
        assert full_results[0].year == 2016
        assert full_results[-1].year == 2020


class TestEpochSubset:
    def test_subset_matches_the_full_run(self, full_bytes):
        (only,) = run_timeline(CFG, epochs=[2])
        assert only.epoch == 2
        assert dataset_to_json(only.dataset) == full_bytes[2]

    def test_subset_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            run_timeline(CFG, epochs=[CFG.epochs])
        with pytest.raises(ValueError):
            run_timeline(CFG, epochs=[-1])


class TestCheckpointResume:
    def test_interrupted_run_resumes_to_identical_bytes(
        self, tmp_path, full_bytes
    ):
        root = tmp_path / "ckpt"
        # First pass: run epochs 0..1 only, leaving later epochs undone.
        partial = run_timeline(
            CFG, shards=3, checkpoint_dir=root, epochs=[1]
        )
        assert len(partial) == 1
        assert (root / "epoch-0000").is_dir()
        # Second pass resumes the same directory and finishes the timeline;
        # completed epoch shards are loaded, not re-measured.
        results = run_timeline(
            CFG, shards=3, checkpoint_dir=root, resume=True
        )
        for result, expected in zip(results, full_bytes):
            assert dataset_to_json(result.dataset) == expected

    def test_dirty_checkpoint_without_resume_rejected(self, tmp_path):
        root = tmp_path / "ckpt"
        run_timeline(CFG, checkpoint_dir=root, epochs=[0])
        with pytest.raises(ValueError):
            run_timeline(CFG, checkpoint_dir=root)


class TestSharedTimeline:
    def test_caller_supplied_timeline_is_used(self, full_bytes):
        timeline = Timeline(CFG)
        results = run_timeline(CFG, timeline=timeline)
        for result, expected in zip(results, full_bytes):
            assert dataset_to_json(result.dataset) == expected
