"""Smoke tests: every example script runs end-to-end at small scale.

Keeps the examples from rotting as the library evolves; each main() is
invoked in-process with a small world size.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


@pytest.mark.parametrize(
    "name, argv, expect",
    [
        ("quickstart", ["300", "5"], "Top-3 providers"),
        ("dyn_incident", ["300"], "Taking Dyn's nameservers down"),
        ("globalsign_replay", ["300"], "Phase 3"),
        ("exposure_planner", ["academia.edu", "300"], "single points of failure"),
        ("mirai_capacity_sweep", ["300"], "botnet size"),
        ("hospital_audit", [], "hospitals"),
    ],
)
def test_example_runs(name, argv, expect, capsys):
    output = run_example(name, argv, capsys)
    assert expect in output


def test_evolution_study_runs(capsys):
    output = run_example("evolution_study", ["300"], capsys)
    assert "table3" in output and "figure6" in output
