"""Tests for incident replay: outages, mass revocation, what-if planning."""

import pytest

from repro.core.graph import ProviderNode, ServiceType
from repro.failures import (
    simulate_ca_outage,
    simulate_cdn_outage,
    simulate_dns_outage,
    simulate_mass_revocation,
    website_exposure,
)
from repro.failures.whatif import exposure_distribution, redundancy_benefit
from repro.worldgen.spec import PRIVATE


class TestDnsOutage:
    def test_critical_customers_break(self, world_2020):
        victims = [
            w.domain for w in world_2020.spec.websites
            if w.dns.providers == ["cloudflare"]
        ][:15]
        assert victims, "need cloudflare-critical sites"
        result = simulate_dns_outage(
            world_2020, "cloudflare", domains=victims, check_resources=False
        )
        assert set(result.unreachable) == set(victims)

    def test_redundant_customers_survive(self, world_2020):
        survivors = [
            w.domain for w in world_2020.spec.websites
            if "cloudflare" in w.dns.providers and w.dns.is_redundant
        ][:10]
        if not survivors:
            pytest.skip("no redundant cloudflare customers in this world")
        result = simulate_dns_outage(
            world_2020, "cloudflare", domains=survivors, check_resources=False
        )
        assert not result.unreachable

    def test_world_restored_after_outage(self, world_2020):
        victim = next(
            w.domain for w in world_2020.spec.websites
            if w.dns.providers == ["cloudflare"]
        )
        simulate_dns_outage(world_2020, "cloudflare", domains=[victim])
        client = world_2020.fresh_client()
        assert client.get(f"http://www.{victim}/").ok

    def test_prediction_matches_behaviour(self, world_2020, snapshot_2020):
        """The paper's impact metric, validated operationally."""
        node = ProviderNode("dnsmadeeasy.com", ServiceType.DNS)
        predicted = snapshot_2020.graph.direct_dependents(node, critical_only=True)
        sample = sorted(predicted)[:20]
        if not sample:
            pytest.skip("nobody critically on dnsmadeeasy in this world")
        result = simulate_dns_outage(
            world_2020, "dnsmadeeasy", domains=sample, check_resources=False
        )
        assert set(result.unreachable) == set(sample)

    def test_affected_fraction(self, world_2020):
        result = simulate_dns_outage(
            world_2020, "dyn",
            domains=[w.domain for w in world_2020.spec.websites[:50]],
            check_resources=False,
        )
        assert 0.0 <= result.affected_fraction() <= 1.0
        assert result.total_probed == 50


class TestCdnOutage:
    def test_single_cdn_customers_degrade(self, world_2020):
        victims = [
            w.domain for w in world_2020.spec.websites
            if w.cdns == ["cloudflare-cdn"] and not w.internal_alias_domain
        ][:8]
        assert victims
        result = simulate_cdn_outage(world_2020, "cloudflare-cdn", domains=victims)
        assert set(result.degraded) >= set(victims[:1])
        assert not result.unreachable  # landing pages stay up


class TestCaOutage:
    def test_unstapled_sites_lose_https_hard_fail(self, world_2020):
        # Pick a CA whose endpoints are directly hosted (not CDN-fronted).
        ca_key = next(
            key for key, spec in world_2020.spec.cas.items()
            if spec.cdn_key is None
        )
        victims = [
            w.domain for w in world_2020.spec.websites
            if w.https and w.ca_key == ca_key and not w.ocsp_stapled
        ][:5]
        if not victims:
            pytest.skip(f"no unstapled {ca_key} customers")
        result = simulate_ca_outage(world_2020, ca_key, domains=victims)
        assert set(result.unreachable) == set(victims)

    def test_stapled_sites_survive_ca_outage(self, world_2020):
        ca_key = next(
            key for key, spec in world_2020.spec.cas.items()
            if spec.cdn_key is None
        )
        stapled = [
            w.domain for w in world_2020.spec.websites
            if w.https and w.ca_key == ca_key and w.ocsp_stapled
        ][:5]
        if not stapled:
            pytest.skip(f"no stapled {ca_key} customers")
        result = simulate_ca_outage(world_2020, ca_key, domains=stapled)
        assert set(result.unaffected) == set(stapled)


class TestMassRevocation:
    def test_three_phase_incident(self, world_2020):
        victims = [
            w.domain for w in world_2020.spec.websites
            if w.https and w.ca_key == "globalsign" and not w.ocsp_stapled
        ][:6]
        controls = [
            w.domain for w in world_2020.spec.websites
            if w.https and w.ca_key == "digicert" and not w.ocsp_stapled
        ][:4]
        if not victims:
            pytest.skip("no globalsign customers")
        result = simulate_mass_revocation(
            world_2020, "globalsign", victims + controls
        )
        assert set(victims) <= set(result.denied_during)
        assert not set(controls) & set(result.denied_during)
        # Cached poison persists, then clears.
        assert set(result.denied_after_fix_cached) == set(result.denied_during)
        assert set(result.recovered_after_expiry) == set(result.denied_during)


class TestWhatIf:
    def test_exposure_report_for_academia(self, snapshot_2020):
        report = website_exposure(snapshot_2020, "academia.edu")
        assert "DNSMadeEasy" in report.direct_critical
        assert any("MaxCDN" in p for p in report.direct_critical)
        # The intro's hidden chain: MaxCDN -> AWS DNS.
        assert any("Route 53" in p or "aws" in p for p in report.transitive_critical)
        assert report.critical_dependency_count >= 3

    def test_redundant_site_has_fewer_spofs(self, snapshot_2020):
        redundant = next(
            w for w in snapshot_2020.websites
            if w.dns.is_redundant and not w.uses_cdn and not w.ca.is_critical
        )
        report = website_exposure(snapshot_2020, redundant.domain)
        assert not any(
            "dns" in p for p in report.direct_critical
        ) or report.critical_dependency_count <= 1

    def test_exposure_distribution_shape(self, snapshot_2020):
        histogram = exposure_distribution(snapshot_2020)
        assert sum(histogram.values()) == len(snapshot_2020.websites)
        multi = sum(v for k, v in histogram.items() if k >= 3)
        # Section 8.1: a sizable share of sites carries >= 3 critical deps.
        assert multi / len(snapshot_2020.websites) > 0.10

    def test_redundancy_benefit_nonnegative(self, snapshot_2020):
        for service in ("dns", "cdn", "ca"):
            benefit = redundancy_benefit(snapshot_2020, "academia.edu", service)
            assert benefit >= 0
