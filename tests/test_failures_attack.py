"""Tests for the capacity-aware volumetric-attack model."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.failures.attack import (
    AttackScenario,
    ProviderCapacity,
    attack_sweep,
    capacity_for,
    simulate_volumetric_attack,
    survival_rate_under,
)


class TestCapacityModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProviderCapacity("x", capacity_gbps=0)
        with pytest.raises(ValueError):
            ProviderCapacity("x", capacity_gbps=100, pop_count=0)

    def test_default_catalog(self):
        assert capacity_for("dynect.net").capacity_gbps == 1200.0
        assert capacity_for("tail-dns.example").capacity_gbps == 100.0

    def test_attack_volume(self):
        assert AttackScenario(bots=600_000).volume_gbps == pytest.approx(1200.0)


class TestSurvival:
    def test_under_capacity_is_unharmed(self):
        capacity = ProviderCapacity("x", 1000.0, pop_count=4)
        rate, per_pop = survival_rate_under(
            capacity, AttackScenario(bots=10), random.Random(0)
        )
        assert rate == 1.0
        assert per_pop == [1.0] * 4

    def test_overwhelming_attack_saturates(self):
        capacity = ProviderCapacity("x", 100.0, pop_count=4)
        rate, _ = survival_rate_under(
            capacity, AttackScenario(bots=10_000_000), random.Random(0)
        )
        assert rate < 0.01

    @given(
        capacity=st.floats(10.0, 10_000.0),
        bots=st.integers(1, 5_000_000),
        pops=st.integers(1, 32),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60)
    def test_survival_is_a_rate(self, capacity, bots, pops, seed):
        model = ProviderCapacity("x", capacity, pop_count=pops)
        rate, per_pop = survival_rate_under(
            model, AttackScenario(bots=bots), random.Random(seed)
        )
        assert 0.0 <= rate <= 1.0
        assert all(0.0 <= p <= 1.0 for p in per_pop)

    def test_monotone_in_attack_size(self):
        model = ProviderCapacity("x", 1000.0, pop_count=8)
        rng_seed = 7
        rates = [
            survival_rate_under(
                model, AttackScenario(bots=bots), random.Random(rng_seed)
            )[0]
            for bots in (1_000, 200_000, 800_000, 3_000_000)
        ]
        assert rates == sorted(rates, reverse=True)


class TestSimulation:
    def test_dyn_mirai_scenario(self, snapshot_2020):
        # ~600K Mirai bots vs Dyn's fleet: saturation, as in 2016.
        result = simulate_volumetric_attack(
            snapshot_2020, "dynect.net", AttackScenario(bots=3_000_000)
        )
        assert result.survival_rate < 0.5
        assert (
            result.expected_unavailable_websites
            <= result.critically_dependent_websites
        )

    def test_small_probe_harmless(self, snapshot_2020):
        result = simulate_volumetric_attack(
            snapshot_2020, "cloudflare.com", AttackScenario(bots=1_000)
        )
        assert result.survival_rate == 1.0
        assert result.expected_unavailable_websites == 0.0
        assert not result.fully_saturated

    def test_sweep_is_monotone(self, snapshot_2020):
        results = attack_sweep(
            snapshot_2020, "dnsmadeeasy.com",
            bot_counts=[1_000, 100_000, 1_000_000, 10_000_000],
        )
        survival = [r.survival_rate for r in results]
        assert survival == sorted(survival, reverse=True)
        downs = [r.expected_unavailable_websites for r in results]
        assert downs == sorted(downs)

    def test_big_cloud_outlasts_boutique(self, snapshot_2020):
        attack = AttackScenario(bots=700_000)
        big = simulate_volumetric_attack(snapshot_2020, "cloudflare.com", attack)
        small = simulate_volumetric_attack(snapshot_2020, "dnsmadeeasy.com", attack)
        assert big.survival_rate > small.survival_rate
