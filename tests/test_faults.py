"""Tests for deterministic fault injection (repro.faults).

Covers the three layers of the subsystem — the seeded source (pure-key
draws), the declarative plan (validation + serialization), the runtime
injector (matching, probabilities, rank windows) — and then the fault
kinds end-to-end through the simulators: DNS drops/SERVFAIL/lame/
truncate/slow against the resolver's retry policy, web timeouts and
5xx against the crawler's retry loop, and expired OCSP windows.

The campaign-level guarantees (empty-plan equivalence, replay
determinism, degraded records) live in :class:`TestFaultedCampaigns`;
cross-worker chaos determinism lives in ``test_engine.py``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import WorldConfig, build_world
from repro.dnssim.resolver import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.faults import (
    DNS_FAULT_KINDS,
    FAULT_LAYERS,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    SeededFaultSource,
    TLS_FAULT_KINDS,
    WEB_FAULT_KINDS,
)
from repro.measurement.io import dataset_to_json
from repro.measurement.runner import MeasurementCampaign

FAULTS_N = 120
FAULTS_SEED = 5


@pytest.fixture(scope="module")
def faults_config() -> WorldConfig:
    return WorldConfig(n_websites=FAULTS_N, seed=FAULTS_SEED)


@pytest.fixture()
def world(faults_config):
    # Function-scoped: behaviour tests install faults and advance the
    # clock, which must not leak between tests.
    return build_world(faults_config)


def _rank1_domain(world) -> str:
    return min(world.spec.websites, key=lambda w: w.rank).domain


def _dns_rule(domain: str, kind: str, **overrides) -> FaultRule:
    defaults = dict(
        name=f"{kind}-{domain}", layer="dns", kind=kind,
        scope=domain, probability=1.0,
    )
    defaults.update(overrides)
    return FaultRule(**defaults)


class TestSeededFaultSource:
    def test_unit_is_a_pure_function_of_the_key(self):
        source = SeededFaultSource(42)
        first = source.unit("dns", "ns1.example.net", "site.com", "A", 0)
        for _ in range(5):
            # Interleave unrelated draws: they must not shift the result.
            source.unit("other", "key")
            assert source.unit("dns", "ns1.example.net", "site.com", "A", 0) == first

    def test_unit_stays_in_unit_interval_and_is_roughly_uniform(self):
        source = SeededFaultSource(7)
        draws = [source.unit("k", i) for i in range(2000)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 0.45 < sum(draws) / len(draws) < 0.55

    def test_key_parts_are_separated(self):
        # ("ab", "c") must hash differently from ("a", "bc").
        source = SeededFaultSource(0)
        assert source.unit("ab", "c") != source.unit("a", "bc")

    def test_different_seeds_give_different_draws(self):
        key = ("dns", "ns1.example.net", "site.com")
        assert SeededFaultSource(1).unit(*key) != SeededFaultSource(2).unit(*key)

    def test_streams_are_named_seeded_and_independent(self):
        source = SeededFaultSource(3)
        a1 = [source.stream("alpha").random() for _ in range(3)]
        a2 = [source.stream("alpha").random() for _ in range(3)]
        assert a1 == a2  # same name restarts the same sequence
        assert source.stream("alpha").random() != source.stream("beta").random()


class TestSuffixMatching:
    def test_star_matches_everything(self):
        rule = FaultRule(name="r", layer="dns", kind="drop", scope="*")
        assert rule.matches_name("anything.example.com")
        assert rule.matches_name("")

    @pytest.mark.parametrize(
        "pattern", ["example.com", "*.example.com", ".example.com", "example.com."]
    )
    def test_suffix_forms_are_equivalent(self, pattern):
        rule = FaultRule(name="r", layer="dns", kind="drop", scope=pattern)
        assert rule.matches_name("example.com")
        assert rule.matches_name("www.example.com")
        assert rule.matches_name("EXAMPLE.COM.")
        assert not rule.matches_name("badexample.com")
        assert not rule.matches_name("example.org")

    def test_server_pattern_uses_the_same_semantics(self):
        rule = FaultRule(name="r", layer="dns", kind="drop", server="dynect.net")
        assert rule.matches_server("ns1.dynect.net")
        assert not rule.matches_server("ns1.ultradns.net")


class TestFaultRuleValidation:
    def test_valid_rules_have_no_problems(self):
        for layer, kinds in (
            ("dns", DNS_FAULT_KINDS),
            ("web", WEB_FAULT_KINDS),
            ("tls", TLS_FAULT_KINDS),
        ):
            assert layer in FAULT_LAYERS
            for kind in kinds:
                rule = FaultRule(
                    name=f"{layer}-{kind}", layer=layer, kind=kind,
                    probability=0.5, delay=1.0 if kind == "slow" else 0.0,
                )
                assert rule.validate() == []

    @pytest.mark.parametrize(
        "overrides, fragment",
        [
            (dict(layer="smtp"), "unknown layer"),
            (dict(kind="http_error"), "unknown dns fault kind"),
            (dict(probability=1.5), "outside [0, 1]"),
            (dict(probability=-0.1), "outside [0, 1]"),
            (dict(rank_window=(5, 2)), "rank_window"),
            (dict(rank_window=(0, 3)), "rank_window"),
            (dict(kind="slow"), "delay > 0"),
            (dict(delay=-1.0), "delay must be >= 0"),
            (dict(name=""), "non-empty name"),
        ],
    )
    def test_invalid_rules_name_the_problem(self, overrides, fragment):
        rule = dataclasses.replace(
            FaultRule(name="r", layer="dns", kind="drop"), **overrides
        )
        problems = rule.validate()
        assert problems, f"expected a problem for {overrides}"
        assert any(fragment in p for p in problems)

    def test_http_error_requires_a_5xx_status(self):
        rule = FaultRule(name="r", layer="web", kind="http_error", status=404)
        assert any("5xx" in p for p in rule.validate())

    def test_plan_rejects_duplicate_rule_names(self):
        rule = FaultRule(name="same", layer="dns", kind="drop")
        plan = FaultPlan(rules=(rule, dataclasses.replace(rule, scope="x.com")))
        assert any("duplicate" in p for p in plan.validate())


class TestFaultPlanSerialization:
    def _plan(self) -> FaultPlan:
        return FaultPlan(
            rules=(
                FaultRule(name="a", layer="dns", kind="drop",
                          server="dynect.net", probability=0.4),
                FaultRule(name="b", layer="web", kind="http_error",
                          scope="site.com", status=502, rank_window=(1, 5)),
                FaultRule(name="c", layer="dns", kind="slow", delay=2.5),
                FaultRule(name="d", layer="tls", kind="ocsp_expired"),
            ),
            seed=99,
        )

    def test_json_roundtrip_is_exact(self):
        plan = self._plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_digest_is_stable_and_content_sensitive(self):
        plan = self._plan()
        assert plan.digest() == self._plan().digest()
        assert plan.digest() != dataclasses.replace(plan, seed=100).digest()
        assert plan.digest() != FaultPlan().digest()

    def test_empty_plan(self):
        assert FaultPlan().empty
        assert not self._plan().empty
        assert FaultPlan.from_json(FaultPlan().to_json()) == FaultPlan()

    def test_rules_for_partitions_by_layer(self):
        plan = self._plan()
        assert [r.name for r in plan.rules_for("dns")] == ["a", "c"]
        assert [r.name for r in plan.rules_for("web")] == ["b"]
        assert [r.name for r in plan.rules_for("tls")] == ["d"]

    @pytest.mark.parametrize(
        "text",
        [
            "not json at all",
            "[]",
            '{"rules": [{"name": "r"}]}',
            '{"rules": [{"name": "r", "layer": "dns", "kind": "nope"}]}',
            '{"rules": [{"name": "r", "layer": "dns", "kind": "drop", '
            '"probability": 2.0}]}',
        ],
    )
    def test_malformed_plans_raise_fault_plan_error(self, text):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json(text)


class TestFaultInjector:
    def test_probability_one_always_fires(self):
        plan = FaultPlan(rules=(FaultRule(name="r", layer="dns", kind="drop"),))
        injector = FaultInjector(plan)
        for attempt in range(5):
            rule = injector.dns_fault("ns1.x.net", "10.0.0.1", "a.com", "A", attempt)
            assert rule is not None and rule.name == "r"

    def test_probability_zero_never_fires(self):
        plan = FaultPlan(
            rules=(FaultRule(name="r", layer="dns", kind="drop", probability=0.0),)
        )
        injector = FaultInjector(plan)
        for attempt in range(5):
            assert injector.dns_fault("ns1.x.net", "10.0.0.1", "a.com", "A", attempt) is None

    def test_decisions_are_pure_per_key(self):
        plan = FaultPlan(
            rules=(FaultRule(name="r", layer="dns", kind="drop", probability=0.5),),
            seed=13,
        )
        injector = FaultInjector(plan)
        outcomes = [
            injector.dns_fault("ns1.x.net", "10.0.0.1", f"site{i}.com", "A", 0)
            for i in range(50)
        ]
        replayed = [
            injector.dns_fault("ns1.x.net", "10.0.0.1", f"site{i}.com", "A", 0)
            for i in range(50)
        ]
        assert outcomes == replayed
        assert any(o is not None for o in outcomes)
        assert any(o is None for o in outcomes)

    def test_firing_rate_tracks_probability(self):
        plan = FaultPlan(
            rules=(FaultRule(name="r", layer="dns", kind="drop", probability=0.3),),
            seed=4,
        )
        injector = FaultInjector(plan)
        fired = sum(
            injector.dns_fault("ns1.x.net", "10.0.0.1", f"s{i}.com", "A", 0)
            is not None
            for i in range(1000)
        )
        assert 0.22 < fired / 1000 < 0.38

    def test_server_scope_is_respected(self):
        plan = FaultPlan(
            rules=(
                FaultRule(name="r", layer="dns", kind="drop", server="dynect.net"),
            )
        )
        injector = FaultInjector(plan)
        assert injector.dns_fault("ns1.dynect.net", "10.0.0.1", "a.com", "A", 0)
        assert injector.dns_fault("ns1.ultradns.net", "10.0.0.1", "a.com", "A", 0) is None

    def test_rank_window_needs_site_context(self):
        plan = FaultPlan(
            rules=(
                FaultRule(name="r", layer="dns", kind="drop", rank_window=(10, 20)),
            )
        )
        injector = FaultInjector(plan)
        probe = ("ns1.x.net", "10.0.0.1", "a.com", "A", 0)
        assert injector.dns_fault(*probe) is None  # no site context
        injector.set_site(15)
        assert injector.dns_fault(*probe) is not None  # inside the window
        injector.set_site(21)
        assert injector.dns_fault(*probe) is None  # outside the window
        injector.clear_site()
        assert injector.dns_fault(*probe) is None  # dormant again

    def test_web_hooks_dispatch_by_kind(self):
        plan = FaultPlan(
            rules=(
                FaultRule(name="t", layer="web", kind="timeout"),
                FaultRule(name="e", layer="web", kind="http_error", status=503),
            )
        )
        injector = FaultInjector(plan)
        connect = injector.web_connect_fault("srv.x.net", "10.0.0.1", "a.com", 0)
        request = injector.web_request_fault("srv.x.net", "a.com", "/", 0)
        assert connect is not None and connect.kind == "timeout"
        assert request is not None and request.kind == "http_error"

    def test_tls_hook_matches_kind_and_responder(self):
        plan = FaultPlan(
            rules=(
                FaultRule(name="o", layer="tls", kind="ocsp_expired",
                          server="ocsp.ca.example"),
            )
        )
        injector = FaultInjector(plan)
        assert injector.tls_fault("ocsp_expired", "ocsp.ca.example", 7) is not None
        assert injector.tls_fault("crl_stale", "ocsp.ca.example", 7) is None
        assert injector.tls_fault("ocsp_expired", "ocsp.other.example", 7) is None


class TestRetryPolicy:
    def test_defaults(self):
        assert DEFAULT_RETRY_POLICY.max_attempts == 3
        assert DEFAULT_RETRY_POLICY.timeout_budget > 0

    def test_backoff_is_deterministic_exponential(self):
        policy = RetryPolicy(backoff_base=0.25, backoff_factor=2.0)
        assert [policy.backoff(a) for a in (1, 2, 3)] == [0.25, 0.5, 1.0]
        assert policy.backoff(1) == policy.backoff(1)


class TestDnsFaultBehaviour:
    def test_drop_exhausts_retries_then_fails(self, world):
        domain = _rank1_domain(world)
        world.install_faults(FaultPlan(rules=(_dns_rule(domain, "drop"),)))
        assert not world.dig.is_resolvable(domain)
        status = world.dig.last_status
        assert status.attempts == DEFAULT_RETRY_POLICY.max_attempts
        assert status.failure.startswith("dns:")
        assert status.degraded
        assert world.resolver.stats.retries > 0

    def test_servfail_is_reported_as_upstream_rcode(self, world):
        domain = _rank1_domain(world)
        world.install_faults(FaultPlan(rules=(_dns_rule(domain, "servfail"),)))
        assert not world.dig.is_resolvable(domain)
        assert "SERVFAIL" in world.dig.last_status.failure

    @pytest.mark.parametrize("kind", ["refused", "lame", "truncate"])
    def test_degenerate_responses_break_resolution(self, world, kind):
        domain = _rank1_domain(world)
        world.install_faults(FaultPlan(rules=(_dns_rule(domain, kind),)))
        assert not world.dig.is_resolvable(domain)
        assert world.dig.last_status.degraded

    def test_slow_advances_the_clock_but_answers(self, world):
        domain = _rank1_domain(world)
        clock = world._m.clock
        before = clock.now()
        world.install_faults(
            FaultPlan(rules=(_dns_rule(domain, "slow", delay=5.0),))
        )
        assert world.dig.is_resolvable(domain)
        assert clock.now() >= before + 5.0
        assert not world.dig.last_status.degraded

    def test_clear_faults_restores_health(self, world):
        domain = _rank1_domain(world)
        world.install_faults(FaultPlan(rules=(_dns_rule(domain, "drop"),)))
        assert not world.dig.is_resolvable(domain)
        world.clear_faults()
        assert world.dig.is_resolvable(domain)

    def test_retries_recover_from_partial_drops(self, world):
        # With a per-(ip, attempt) keyed 50% drop, some query needs a
        # second round; the retry loop must still land every answer.
        domain = _rank1_domain(world)
        world.install_faults(
            FaultPlan(
                rules=(_dns_rule(domain, "drop", probability=0.5),), seed=2
            )
        )
        assert world.dig.is_resolvable(domain)
        assert world.dig.last_status.attempts > 1
        assert not world.dig.last_status.degraded


class TestWebTlsFaultBehaviour:
    def test_timeout_fails_the_crawl_after_retries(self, world):
        domain = _rank1_domain(world)
        world.install_faults(
            FaultPlan(
                rules=(
                    FaultRule(name="t", layer="web", kind="timeout", scope=domain),
                )
            )
        )
        result = world.crawler.crawl(domain)
        assert not result.ok
        assert result.error.startswith("tcp:")
        assert result.attempts == world.crawler.retry_policy.max_attempts
        assert world.crawler.retries > 0

    def test_http_error_returns_the_configured_status(self, world):
        domain = _rank1_domain(world)
        world.install_faults(
            FaultPlan(
                rules=(
                    FaultRule(name="e", layer="web", kind="http_error",
                              scope=domain, status=502),
                )
            )
        )
        result = world.crawler.crawl(domain)
        assert not result.ok
        assert result.error == "http: status 502"
        assert result.attempts == world.crawler.retry_policy.max_attempts

    def test_web_retries_recover_from_partial_timeouts(self, world):
        domain = _rank1_domain(world)
        world.install_faults(
            FaultPlan(
                rules=(
                    FaultRule(name="t", layer="web", kind="timeout",
                              scope=domain, probability=0.6),
                ),
                seed=3,
            )
        )
        result = world.crawler.crawl(domain)
        assert result.ok
        assert result.attempts > 1

    def test_ocsp_expired_serves_a_stale_window(self, world):
        infra = world.ca_infra[sorted(world.ca_infra)[0]]
        responder = infra.ca.ocsp_responder
        world.install_faults(
            FaultPlan(
                rules=(
                    FaultRule(name="o", layer="tls", kind="ocsp_expired",
                              server=infra.spec.ocsp_host),
                )
            )
        )
        now = world._m.clock.now()
        response = responder.status_of(serial=1, now=now)
        assert response.next_update < now  # expired window
        world.clear_faults()
        healthy = responder.status_of(serial=1, now=now)
        assert healthy.next_update >= now


class TestFaultedCampaigns:
    def test_empty_plan_output_is_byte_identical(self, faults_config):
        # The PR's acceptance criterion: running under an *empty* plan is
        # the plan-less pipeline, bit for bit.
        plain = MeasurementCampaign(build_world(faults_config), limit=30).run()
        empty = MeasurementCampaign(
            build_world(faults_config), limit=30, fault_plan=FaultPlan()
        ).run()
        assert dataset_to_json(empty) == dataset_to_json(plain)

    def test_faulted_campaign_replays_byte_identically(self, faults_config):
        plan = FaultPlan(
            rules=(
                FaultRule(name="flaky-dns", layer="dns", kind="drop",
                          probability=0.25),
                FaultRule(name="slow-web", layer="web", kind="http_error",
                          probability=0.2, status=503),
            ),
            seed=21,
        )
        first = MeasurementCampaign(
            build_world(faults_config), limit=30, fault_plan=plan
        ).run()
        second = MeasurementCampaign(
            build_world(faults_config), limit=30, fault_plan=plan
        ).run()
        assert dataset_to_json(first) == dataset_to_json(second)

    def test_rank_window_degrades_exactly_the_windowed_sites(self, faults_config):
        plan = FaultPlan(
            rules=(
                FaultRule(name="head-outage", layer="web", kind="http_error",
                          status=502, rank_window=(1, 5)),
            )
        )
        dataset = MeasurementCampaign(
            build_world(faults_config), limit=30, fault_plan=plan
        ).run()
        assert len(dataset.websites) == 30
        for website in dataset.websites:
            if website.rank <= 5:
                assert website.tls.degraded
                assert website.tls.failure_mode == "http: status 502"
                assert website.tls.attempts == DEFAULT_RETRY_POLICY.max_attempts
            else:
                assert not website.tls.degraded
                assert website.tls.failure_mode == ""

    def test_outage_prediction_matches_injected_reality(self, faults_config):
        from repro.failures import validate_outage_prediction

        world = build_world(faults_config)
        report = validate_outage_prediction(world, "dyn")
        assert report.predicted, "the dyn provider should have customers"
        assert report.consistent
        assert report.agreement_rate() == 1.0
