"""Golden-corpus regression tests.

A fixed world config and a fixed, checked-in fault plan must serialize
to the *exact bytes* stored under ``tests/goldens/`` — any drift in the
world generator, the resolver, the measurers, the fault draws, or the
wire format shows up here as a byte diff before it shows up as a silent
change in paper numbers.

When a change intentionally alters the output (e.g. a new wire field),
regenerate with::

    pytest tests/test_golden_corpus.py --regen-goldens

and commit the updated goldens alongside the change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import WorldConfig, build_world
from repro.faults import FaultPlan, FaultRule
from repro.measurement.io import dataset_from_json, dataset_to_json
from repro.measurement.runner import MeasurementCampaign

GOLDEN_DIR = Path(__file__).parent / "goldens"
GOLDEN_N = 120
GOLDEN_SEED = 17
GOLDEN_LIMIT = 25


def canonical_chaos_plan() -> FaultPlan:
    """The checked-in chaos scenario: a Dyn-style flaky provider plus a
    head-of-list web brownout, expressed only in shard-stable terms
    (server scopes and rank windows)."""
    return FaultPlan(
        rules=(
            FaultRule(name="dyn-flaky", layer="dns", kind="drop",
                      server="dynect.net", probability=0.85),
            FaultRule(name="ultradns-slow", layer="dns", kind="slow",
                      server="ultradns.net", probability=0.25, delay=1.5),
            FaultRule(name="head-brownout", layer="web", kind="http_error",
                      status=503, probability=0.9, rank_window=(1, 8)),
            FaultRule(name="ocsp-rot", layer="tls", kind="ocsp_expired",
                      probability=0.5),
        ),
        seed=2020,
    )


@pytest.fixture(scope="module")
def golden_config() -> WorldConfig:
    return WorldConfig(n_websites=GOLDEN_N, seed=GOLDEN_SEED)


def _check_golden(name: str, produced: str, regen: bool) -> None:
    path = GOLDEN_DIR / name
    if regen:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(produced, encoding="utf-8")
        return
    assert path.exists(), (
        f"golden file {path} is missing; run "
        f"'pytest tests/test_golden_corpus.py --regen-goldens' to create it"
    )
    expected = path.read_text(encoding="utf-8")
    assert produced == expected, (
        f"output drifted from {path}; if the change is intentional, "
        f"regenerate with --regen-goldens and commit the diff"
    )


class TestGoldenCorpus:
    def test_chaos_plan_matches_golden(self, regen_goldens):
        _check_golden(
            "chaos_plan.json",
            canonical_chaos_plan().to_json() + "\n",
            regen_goldens,
        )

    def test_zero_fault_campaign_matches_golden(
        self, golden_config, regen_goldens
    ):
        dataset = MeasurementCampaign(
            build_world(golden_config), limit=GOLDEN_LIMIT
        ).run()
        _check_golden(
            "dataset_nofault.json", dataset_to_json(dataset) + "\n",
            regen_goldens,
        )

    def test_chaos_campaign_matches_golden(self, golden_config, regen_goldens):
        dataset = MeasurementCampaign(
            build_world(golden_config),
            limit=GOLDEN_LIMIT,
            fault_plan=canonical_chaos_plan(),
        ).run()
        _check_golden(
            "dataset_chaos.json", dataset_to_json(dataset) + "\n",
            regen_goldens,
        )

    def test_chaos_trace_matches_golden(self, golden_config, regen_goldens):
        """The deep trace of twitter.com (the Dyn-customer corner case)
        under the chaos plan: span timestamps come from the simulated
        clock only, so the Chrome trace JSON is byte-reproducible."""
        from repro.telemetry import TelemetryConfig, chrome_trace

        telemetry = TelemetryConfig(
            metrics=False, trace=True, trace_sites=("twitter.com",)
        ).build()
        MeasurementCampaign(
            build_world(golden_config),
            limit=GOLDEN_LIMIT,
            fault_plan=canonical_chaos_plan(),
            telemetry=telemetry,
        ).run()
        _check_golden(
            "trace_twitter_chaos.json",
            chrome_trace(telemetry.tracer.drain(),
                         label="repro trace twitter.com"),
            regen_goldens,
        )

    def test_trace_golden_is_a_wellformed_chrome_trace(self):
        """Structural guard on the checked-in trace: one balanced B/E
        tree per root, metadata first, instants marked as such."""
        payload = json.loads(
            (GOLDEN_DIR / "trace_twitter_chaos.json").read_text(
                encoding="utf-8"
            )
        )
        events = payload["traceEvents"]
        assert [e["ph"] for e in events[:2]] == ["M", "M"]
        depth = 0
        for event in events[2:]:
            assert event["ph"] in {"B", "E", "i"}
            if event["ph"] == "B":
                depth += 1
            elif event["ph"] == "E":
                depth -= 1
                assert depth >= 0
            else:
                assert event["s"] == "t"
        assert depth == 0
        names = {e.get("name") for e in events}
        assert "site.measure" in names and "dns.lookup" in names

    def test_chaos_golden_actually_exercises_faults(self):
        """Guard against a vacuous corpus: the checked-in chaos dataset
        must contain degraded records and multi-attempt recoveries."""
        path = GOLDEN_DIR / "dataset_chaos.json"
        dataset = dataset_from_json(path.read_text(encoding="utf-8"))
        assert any(w.dns.degraded or w.tls.degraded for w in dataset.websites)
        assert any(
            max(w.dns.attempts, w.tls.attempts, w.cdn.attempts) > 1
            for w in dataset.websites
        )

    def test_goldens_parse_under_the_current_reader(self):
        for name in ("dataset_nofault.json", "dataset_chaos.json"):
            dataset = dataset_from_json(
                (GOLDEN_DIR / name).read_text(encoding="utf-8")
            )
            assert len(dataset.websites) == GOLDEN_LIMIT
