"""Engine-vs-oracle equivalence for the §2.2 metrics.

The seed implementation computed ``dependent_websites`` with a recursive
traversal carrying a path-local visited set — the union-over-simple-paths
reading of the paper's formulas. That recursion is kept here verbatim as
the reference oracle, and hypothesis pits it against the SCC-condensation
engine on randomized graphs (cycles, diamonds, self-referential tangles
included): the two must agree exactly, set for set, on every provider.

Union over simple paths equals plain reachability (any simple path to a
dependent website witnesses reachability, and any reachable website has a
simple path by cycle-cutting), which is why the engine's single sweep can
replace the exponential recursion without changing a single answer.
"""

from hypothesis import given, settings, strategies as st

from repro.core.graph import DependencyGraph, ProviderNode, ServiceType

_SERVICES = (ServiceType.DNS, ServiceType.CDN, ServiceType.CA)


def oracle_dependents(
    graph: DependencyGraph, provider: ProviderNode, critical_only: bool
) -> set[str]:
    """The seed's recursive formula, preserved as the reference answer."""

    def rec(node: ProviderNode, visited: frozenset[ProviderNode]) -> set[str]:
        result = graph.direct_dependents(node, critical_only)
        for consumer in graph.provider_consumers(node, critical_only):
            if consumer in visited:
                continue
            result |= rec(consumer, visited | {consumer})
        return result

    return rec(provider, frozenset({provider}))


@st.composite
def dependency_graphs(draw) -> DependencyGraph:
    """A small random graph: websites, providers, and arbitrary edges.

    Provider-to-provider edges are drawn without direction constraints, so
    cycles (including mutually-critical pairs) occur routinely.
    """
    n_sites = draw(st.integers(min_value=1, max_value=6))
    n_providers = draw(st.integers(min_value=1, max_value=7))
    providers = [
        ProviderNode(f"p{i}", _SERVICES[i % len(_SERVICES)])
        for i in range(n_providers)
    ]
    graph = DependencyGraph()
    for i in range(n_sites):
        graph.add_website(f"s{i}.com")
    for provider in providers:
        graph.add_provider(provider)
    site_edges = draw(st.lists(
        st.tuples(
            st.integers(0, n_sites - 1),
            st.integers(0, n_providers - 1),
            st.booleans(),
        ),
        max_size=12,
    ))
    for site, provider, critical in site_edges:
        graph.add_website_dependency(
            f"s{site}.com", providers[provider], critical=critical
        )
    provider_edges = draw(st.lists(
        st.tuples(
            st.integers(0, n_providers - 1),
            st.integers(0, n_providers - 1),
            st.booleans(),
        ),
        max_size=12,
    ))
    for a, b, critical in provider_edges:
        if a == b:
            continue
        graph.add_provider_dependency(
            providers[a], providers[b], critical=critical
        )
    return graph


class TestEngineMatchesOracle:
    @given(dependency_graphs())
    @settings(max_examples=80)
    def test_dependent_sets_identical(self, graph):
        for provider in graph.providers():
            for critical_only in (False, True):
                assert graph.dependent_websites(
                    provider, critical_only
                ) == oracle_dependents(graph, provider, critical_only)

    @given(dependency_graphs())
    @settings(max_examples=60)
    def test_counts_and_batch_identical(self, graph):
        metrics = graph.provider_metrics()
        assert set(metrics) == set(graph.providers())
        for provider, m in metrics.items():
            assert m.concentration == len(
                oracle_dependents(graph, provider, critical_only=False)
            )
            assert m.impact == len(
                oracle_dependents(graph, provider, critical_only=True)
            )
            assert m.direct_concentration == graph.direct_concentration(provider)
            assert m.direct_impact == graph.direct_impact(provider)

    @given(dependency_graphs())
    @settings(max_examples=40)
    def test_top_providers_ranked_by_oracle_scores(self, graph):
        for service in _SERVICES:
            top = graph.top_providers(service, 5, by="impact")
            for provider, score in top:
                assert score == len(
                    oracle_dependents(graph, provider, critical_only=True)
                )
            scores = [score for _, score in top]
            assert scores == sorted(scores, reverse=True)
