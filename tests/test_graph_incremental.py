"""Incremental-analysis equivalence tests.

Two layers of the same contract:

* :meth:`MetricEngine.refreshed` must agree with a from-scratch
  ``MetricEngine`` after arbitrary graph mutations — the dirty-closure
  argument in graphx.py is only sound if no mutation sequence can leave a
  stale bitset behind.
* :func:`refresh_snapshot` must agree with a from-scratch
  ``analyze_dataset`` across real timeline epochs — the reclassification
  set (changed records, flipped concentration thresholds, renamed CA
  hosts) must cover every input a site's classification reads.
"""

import random

import pytest

from repro.core.graph import DependencyGraph, ProviderNode, ServiceType
from repro.core.graphx import MetricEngine
from repro.core.incremental import refresh_snapshot
from repro.core.pipeline import analyze_dataset, dns_display_directory
from repro.engine.epochs import run_timeline
from repro.worldgen.timeline import Timeline, TimelineConfig

# ---------------------------------------------------------------------------
# MetricEngine.refreshed vs a fresh engine, under randomized mutation.
# ---------------------------------------------------------------------------

_SERVICES = (ServiceType.DNS, ServiceType.CDN, ServiceType.CA)


def _random_graph(rng: random.Random) -> DependencyGraph:
    graph = DependencyGraph()
    providers = [
        ProviderNode(f"provider-{i}.example", rng.choice(_SERVICES))
        for i in range(12)
    ]
    for node in providers:
        graph.add_provider(node)
    for i in range(40):
        domain = f"site-{i}.test"
        graph.add_website(domain)
        for node in rng.sample(providers, rng.randrange(1, 4)):
            graph.add_website_dependency(
                domain, node, critical=rng.random() < 0.5
            )
    for _ in range(10):
        consumer, provider = rng.sample(providers, 2)
        graph.add_provider_dependency(
            consumer, provider, critical=rng.random() < 0.5
        )
    return graph


def _mutate(graph: DependencyGraph, rng: random.Random) -> None:
    """One random structural mutation, exercising every mutation method."""
    websites = graph.websites()
    providers = graph.providers()
    op = rng.randrange(7)
    if op == 0 and websites:
        graph.remove_website(rng.choice(websites))
    elif op == 1 and providers:
        graph.remove_provider(rng.choice(providers))
    elif op == 2 and websites and providers:
        domain = rng.choice(websites)
        deps = sorted(graph.website_dependencies(domain), key=str)
        if deps:
            graph.remove_website_dependency(domain, rng.choice(deps))
    elif op == 3 and providers:
        consumer = rng.choice(providers)
        deps = sorted(graph.provider_dependencies(consumer), key=str)
        if deps:
            graph.remove_provider_dependency(consumer, rng.choice(deps))
    elif op == 4:
        domain = f"new-{rng.randrange(10_000)}.test"
        graph.add_website(domain)
        if providers:
            graph.add_website_dependency(
                domain, rng.choice(providers), critical=rng.random() < 0.5
            )
    elif op == 5:
        node = ProviderNode(
            f"new-provider-{rng.randrange(10_000)}.example",
            rng.choice(_SERVICES),
        )
        graph.add_provider(node)
        if rng.random() < 0.7 and providers:
            graph.add_provider_dependency(
                node, rng.choice(providers), critical=rng.random() < 0.5
            )
    elif websites and providers:
        graph.add_website_dependency(
            rng.choice(websites),
            rng.choice(providers),
            critical=rng.random() < 0.5,
        )


def _assert_engine_matches_fresh(graph: DependencyGraph) -> None:
    engine = graph.metric_engine()  # incremental: refreshed from the cache
    fresh = MetricEngine(graph)  # from scratch
    for critical_only in (False, True):
        assert engine.counts(critical_only) == fresh.counts(critical_only)
        for provider in graph.providers():
            assert engine.dependent_websites(
                provider, critical_only
            ) == fresh.dependent_websites(provider, critical_only)


class TestMetricEngineRefreshed:
    @pytest.mark.parametrize("seed", range(10))
    def test_randomized_mutations_match_fresh_engine(self, seed):
        rng = random.Random(seed)
        graph = _random_graph(rng)
        # Prime both criticality modes so refreshed() has bits to carry.
        _assert_engine_matches_fresh(graph)
        for _ in range(15):
            _mutate(graph, rng)
            _assert_engine_matches_fresh(graph)

    def test_remove_everything_then_rebuild(self):
        rng = random.Random(99)
        graph = _random_graph(rng)
        _assert_engine_matches_fresh(graph)
        for domain in list(graph.websites()):
            graph.remove_website(domain)
        for node in list(graph.providers()):
            graph.remove_provider(node)
        _assert_engine_matches_fresh(graph)
        graph.add_website_dependency(
            "phoenix.test",
            ProviderNode("reborn.example", ServiceType.DNS),
            critical=True,
        )
        _assert_engine_matches_fresh(graph)


# ---------------------------------------------------------------------------
# refresh_snapshot vs analyze_dataset across real timeline epochs.
# ---------------------------------------------------------------------------

CFG = TimelineConfig(n_websites=150, seed=11, epochs=4, churn_rate=0.10)


def _assert_snapshots_equivalent(got, want) -> None:
    assert got.year == want.year
    assert got.websites == want.websites
    assert got.interservice_edges == want.interservice_edges
    assert got.dns_display_names == want.dns_display_names
    assert got.concentration_threshold == want.concentration_threshold
    assert set(got.graph.providers()) == set(want.graph.providers())
    # Insertion order is not part of the graph contract — surgery re-adds
    # reclassified sites at the end of the node dict.
    assert set(got.graph.websites()) == set(want.graph.websites())
    assert got.provider_metrics() == want.provider_metrics()
    for provider in want.graph.providers():
        for critical_only in (False, True):
            assert got.graph.dependent_websites(
                provider, critical_only
            ) == want.graph.dependent_websites(provider, critical_only)


@pytest.fixture(scope="module")
def epoch_results():
    return run_timeline(CFG)


class TestRefreshSnapshot:
    def test_refresh_matches_from_scratch_every_epoch(self, epoch_results):
        timeline = Timeline(CFG)
        snapshot = None
        for result in epoch_results:
            display = dns_display_directory(timeline.world(result.epoch))
            scale = timeline.config.world_config(result.epoch).rank_scale
            want = analyze_dataset(
                result.dataset, rank_scale=scale, dns_display_names=display
            )
            if snapshot is None:
                snapshot = want
                continue
            snapshot = refresh_snapshot(
                snapshot,
                result.dataset,
                changed=result.changes.changed,
                dns_display_names=display,
            )
            _assert_snapshots_equivalent(snapshot, want)

    def test_refresh_without_changed_hint_recovers_the_diff(
        self, epoch_results
    ):
        """Omitting ``changed`` falls back to record comparison, which must
        land on the same snapshot."""
        timeline = Timeline(CFG)
        first, second = epoch_results[0], epoch_results[1]
        display0 = dns_display_directory(timeline.world(0))
        display1 = dns_display_directory(timeline.world(1))
        scale = timeline.config.world_config(0).rank_scale
        base = analyze_dataset(
            first.dataset, rank_scale=scale, dns_display_names=display0
        )
        want = analyze_dataset(
            second.dataset, rank_scale=scale, dns_display_names=display1
        )
        got = refresh_snapshot(
            base, second.dataset, dns_display_names=display1
        )
        _assert_snapshots_equivalent(got, want)
