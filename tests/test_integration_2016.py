"""End-to-end assertions specific to the 2016 snapshot — the Dyn era."""

import pytest

from repro import WorldConfig, analyze_world, build_world
from repro.core.graph import ProviderNode, ServiceType


@pytest.fixture(scope="module")
def world_2016():
    return build_world(WorldConfig(n_websites=600, seed=11, year=2016))


@pytest.fixture(scope="module")
def snapshot_2016(world_2016):
    return analyze_world(world_2016)


class TestDynEra:
    def test_twitter_measured_critical_on_dyn(self, snapshot_2016):
        twitter = snapshot_2016.by_domain()["twitter.com"]
        assert twitter.dns.uses_third_party
        assert twitter.dns.is_critical
        assert twitter.dns.third_party_provider_ids == ["dynect.net"]

    def test_twitter_soa_trap_fools_soa_baseline(self, snapshot_2016):
        measurement = snapshot_2016.dataset.by_domain()["twitter.com"]
        dyn_soas = [
            soa for soa in measurement.dns.nameserver_soas.values()
            if soa is not None
        ]
        assert measurement.dns.website_soa in dyn_soas

    def test_fastly_critically_on_dyn(self, snapshot_2016):
        fastly = snapshot_2016.interservice.cdn_dns.get("Fastly")
        assert fastly is not None
        assert fastly.is_critical
        assert fastly.third_party_provider_ids == ["dynect.net"]

    def test_dyn_impact_includes_fastly_customers(self, snapshot_2016):
        node = ProviderNode("dynect.net", ServiceType.DNS)
        direct = snapshot_2016.graph.direct_dependents(node, critical_only=True)
        total = snapshot_2016.graph.dependent_websites(node, critical_only=True)
        assert "pinterest.com" in total  # via Fastly, not direct
        assert "pinterest.com" not in direct

    def test_dyn_prominent_among_top_sites(self, snapshot_2016, world_2016):
        # The 2016 market: Dyn skews towards popular websites.
        top = [w for w in world_2016.spec.websites if w.rank <= 60]
        dyn_top = sum(1 for w in top if "dyn" in w.dns.providers)
        assert dyn_top >= 2

    def test_symantec_observed_in_2016(self, snapshot_2016):
        assert any(
            "Symantec" in name for name in snapshot_2016.interservice.ca_dns
        )

    def test_lets_encrypt_no_cdn_in_2016(self, snapshot_2016):
        lets = snapshot_2016.interservice.ca_cdn.get("Let's Encrypt")
        if lets is None:
            pytest.skip("LE unobserved at this scale in 2016")
        assert not lets.uses_cdn

    def test_https_rarer_in_2016(self, snapshot_2016):
        n = len(snapshot_2016.websites)
        https = len(snapshot_2016.https_websites)
        assert 0.38 <= https / n <= 0.58  # paper: 46.5%


class TestDynIncidentReplay:
    def test_full_replay(self, world_2016, snapshot_2016):
        from repro.failures import simulate_dns_outage

        node = ProviderNode("dynect.net", ServiceType.DNS)
        predicted = snapshot_2016.graph.dependent_websites(node, critical_only=True)
        result = simulate_dns_outage(world_2016, "dyn")
        affected = set(result.affected)
        # Everything the graph calls critically dependent actually broke.
        overlap = predicted & affected
        assert len(overlap) >= 0.8 * len(predicted)
        assert "twitter.com" in affected
        # Redundant amazon survives.
        assert "amazon.com" in result.unaffected
