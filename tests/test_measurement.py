"""Tests for the measurement toolchain (records, map, measurers, campaign)."""

import pytest

from repro.measurement.cdn_map import CnameToCdnMap
from repro.measurement.cdn_measurer import is_internal_resource
from repro.measurement.records import SoaIdentity
from repro.measurement.runner import MeasurementCampaign, build_cdn_map


class TestSoaIdentity:
    def test_equality(self):
        a = SoaIdentity("m", "r")
        assert a == SoaIdentity("m", "r")
        assert a != SoaIdentity("m", "other")

    def test_from_record(self):
        from repro.dnssim.records import SOARecord

        soa = SOARecord("ns1.x.com", "admin.x.com")
        identity = SoaIdentity.from_record(soa)
        assert identity.mname == "ns1.x.com"
        assert SoaIdentity.from_record(None) is None


class TestCnameToCdnMap:
    def test_suffix_match(self):
        cdn_map = CnameToCdnMap()
        cdn_map.register("edgekey.net", "Akamai")
        assert cdn_map.lookup("www.site.com.edgekey.net") == "Akamai"
        assert cdn_map.lookup("edgekey.net") == "Akamai"
        assert cdn_map.lookup("notedgekey.net") is None

    def test_longest_suffix_wins(self):
        cdn_map = CnameToCdnMap()
        cdn_map.register("cloudflare.net", "Cloudflare base")
        cdn_map.register("cdn.cloudflare.net", "Cloudflare CDN")
        assert cdn_map.lookup("x.cdn.cloudflare.net") == "Cloudflare CDN"

    def test_lookup_chain(self):
        cdn_map = CnameToCdnMap()
        cdn_map.register("fastly.net", "Fastly")
        assert cdn_map.lookup_chain(
            "static.site.com", ["site.map.fastly.net"]
        ) == "Fastly"
        assert cdn_map.lookup_chain("static.site.com", []) is None

    def test_from_catalog_and_contains(self):
        cdn_map = CnameToCdnMap.from_catalog([("X", ["x-edge.net", "x2.net"])])
        assert len(cdn_map) == 2
        assert "x-edge.net" in cdn_map


class TestInternalResourceLadder:
    SITE_SOA = SoaIdentity("ns1.site.com", "h.site.com")

    def lookup(self, table):
        return lambda host: table.get(host)

    def test_tld_match(self):
        assert is_internal_resource(
            "static.site.com", "site.com", (), self.lookup({})
        )

    def test_san_match(self):
        assert is_internal_resource(
            "img.yimg.com", "yahoo.com", ("yahoo.com", "*.yimg.com"),
            self.lookup({}),
        )

    def test_soa_match(self):
        table = {
            "cdn.brand.net": self.SITE_SOA,
            "site.com": self.SITE_SOA,
        }
        assert is_internal_resource(
            "cdn.brand.net", "site.com", (), self.lookup(table)
        )

    def test_external_rejected(self):
        table = {
            "cdn.tracker.net": SoaIdentity("ns1.tracker.net", "h.tracker.net"),
            "site.com": self.SITE_SOA,
        }
        assert not is_internal_resource(
            "cdn.tracker.net", "site.com", ("site.com",), self.lookup(table)
        )


class TestCampaign:
    def test_dataset_shape(self, world_2020, snapshot_2020):
        dataset = snapshot_2020.dataset
        assert dataset.year == 2020
        assert len(dataset.websites) == len(world_2020.spec.websites)
        assert dataset.notes["websites_measured"] == len(dataset.websites)
        assert dataset.notes["cdns_observed"] == len(dataset.cdn_dns)

    def test_limit(self, world_2020):
        campaign = MeasurementCampaign(world_2020, limit=25)
        dataset = campaign.run()
        assert len(dataset.websites) == 25
        assert dataset.top(10)[-1].rank <= 10

    def test_map_covers_catalog(self, world_2020):
        cdn_map = build_cdn_map(world_2020)
        for cdn in world_2020.spec.cdns.values():
            for suffix in cdn.cname_suffixes:
                assert cdn_map.lookup(f"x.{suffix}") == cdn.display

    def test_observations_reference_cnames(self, snapshot_2020):
        dataset = snapshot_2020.dataset
        measured = next(
            w for w in dataset.websites if w.cdn.detected_cdns
        )
        for cdn_name, cnames in measured.cdn.detected_cdns.items():
            assert cnames, cdn_name
            for cname in cnames:
                assert cname in measured.cdn.cname_soas

    def test_interservice_observations_have_soas(self, snapshot_2020):
        dataset = snapshot_2020.dataset
        for name, obs in dataset.ca_dns.items():
            for ns in obs.nameservers:
                assert ns in obs.nameserver_soas, (name, ns)

    def test_ca_directory_resolution(self, world_2020):
        campaign = MeasurementCampaign(world_2020, limit=1)
        assert campaign.ca_name_for_endpoint("ocsp.digicert.com") == "DigiCert"
        assert campaign.ca_name_for_endpoint("ocsp.nobody.example") == "nobody.example"
