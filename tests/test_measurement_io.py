"""Tests for dataset JSON serialization (measure once, analyze offline)."""

import pytest

from repro.core import analyze_dataset
from repro.measurement.io import (
    FORMAT_VERSION,
    SHARD_FORMAT_VERSION,
    dataset_from_json,
    dataset_to_json,
    load_dataset,
    save_dataset,
    shard_from_json,
    shard_to_json,
)
from repro.measurement.records import Dataset


class TestRoundtrip:
    def test_full_roundtrip_equality(self, snapshot_2020):
        dataset = snapshot_2020.dataset
        restored = dataset_from_json(dataset_to_json(dataset))
        assert restored.year == dataset.year
        assert restored.notes == dataset.notes
        assert len(restored.websites) == len(dataset.websites)
        for original, copied in zip(dataset.websites, restored.websites):
            assert copied.domain == original.domain
            assert copied.rank == original.rank
            assert copied.dns.nameservers == original.dns.nameservers
            assert copied.dns.website_soa == original.dns.website_soa
            assert copied.dns.nameserver_soas == original.dns.nameserver_soas
            assert copied.tls.san == original.tls.san
            assert copied.tls.ocsp_urls == original.tls.ocsp_urls
            assert copied.tls.endpoint_soas == original.tls.endpoint_soas
            assert copied.cdn.detected_cdns == original.cdn.detected_cdns
            assert copied.cdn.cname_soas == original.cdn.cname_soas
        assert set(restored.cdn_dns) == set(dataset.cdn_dns)
        assert set(restored.ca_dns) == set(dataset.ca_dns)
        assert set(restored.ca_cdn) == set(dataset.ca_cdn)

    def test_serialization_is_deterministic(self, snapshot_2020):
        dataset = snapshot_2020.dataset
        assert dataset_to_json(dataset) == dataset_to_json(dataset)

    def test_analysis_identical_on_restored_dataset(self, snapshot_2020):
        """The paper workflow: re-analysis of a frozen dataset must agree."""
        restored = dataset_from_json(dataset_to_json(snapshot_2020.dataset))
        reanalyzed = analyze_dataset(
            restored,
            rank_scale=snapshot_2020.rank_scale,
            concentration_threshold=snapshot_2020.concentration_threshold,
        )
        original_by_domain = snapshot_2020.by_domain()
        for website in reanalyzed.websites:
            original = original_by_domain[website.domain]
            assert website.dns.uses_third_party == original.dns.uses_third_party
            assert website.dns.is_critical == original.dns.is_critical
            assert website.ca.is_critical == original.ca.is_critical
            assert sorted(c.cdn_name for c in website.cdns) == sorted(
                c.cdn_name for c in original.cdns
            )

    def test_file_roundtrip(self, snapshot_2020, tmp_path):
        path = tmp_path / "dataset.json"
        save_dataset(snapshot_2020.dataset, str(path))
        restored = load_dataset(str(path))
        assert len(restored.websites) == len(snapshot_2020.dataset.websites)

    def test_version_check(self):
        with pytest.raises(ValueError):
            dataset_from_json('{"format_version": 99, "year": 2020}')


class TestFormatVersionErrors:
    def test_mismatch_names_found_and_supported(self):
        with pytest.raises(ValueError) as excinfo:
            dataset_from_json('{"format_version": 99, "year": 2020}')
        message = str(excinfo.value)
        assert "99" in message
        assert f"supports version {FORMAT_VERSION}" in message

    def test_missing_version_reports_none(self):
        with pytest.raises(ValueError, match="None"):
            dataset_from_json('{"year": 2020}')

    def test_shard_version_mismatch(self):
        with pytest.raises(ValueError) as excinfo:
            shard_from_json('{"shard_format_version": 7, "websites": []}')
        message = str(excinfo.value)
        assert "7" in message
        assert f"supports version {SHARD_FORMAT_VERSION}" in message


class TestNotesOrder:
    def test_roundtrip_preserves_insertion_order(self):
        dataset = Dataset(year=2020)
        dataset.notes["zebra"] = 3
        dataset.notes["apple"] = 1
        dataset.notes["mango"] = 2
        restored = dataset_from_json(dataset_to_json(dataset))
        assert list(restored.notes) == ["zebra", "apple", "mango"]
        assert restored.notes == dataset.notes

    def test_campaign_notes_order_survives(self, snapshot_2020):
        dataset = snapshot_2020.dataset
        restored = dataset_from_json(dataset_to_json(dataset))
        assert list(restored.notes) == list(dataset.notes)


class TestShardRoundtrip:
    def test_shard_roundtrip_is_lossless(self, snapshot_2020):
        websites = snapshot_2020.dataset.websites[:20]
        payload = shard_to_json(websites)
        restored = shard_from_json(payload)
        assert len(restored) == 20
        # Re-serialization of the restored shard reproduces the bytes —
        # the property the engine's checkpoint/merge path relies on.
        assert shard_to_json(restored) == payload
        for original, copied in zip(websites, restored):
            assert copied.domain == original.domain
            assert copied.rank == original.rank
            assert copied.dns.nameservers == original.dns.nameservers
            assert copied.tls.san == original.tls.san
            assert copied.cdn.detected_cdns == original.cdn.detected_cdns

    def test_empty_shard(self):
        assert shard_from_json(shard_to_json([])) == []
