"""Tests for dataset JSON serialization (measure once, analyze offline)."""

import json

import pytest

from repro.core import analyze_dataset
from repro.measurement.io import (
    FORMAT_VERSION,
    OLDEST_READABLE_VERSION,
    SHARD_FORMAT_VERSION,
    WireVersionError,
    dataset_from_json,
    dataset_to_json,
    load_dataset,
    save_dataset,
    shard_from_json,
    shard_to_json,
    upgrade_dataset_payload,
)
from repro.measurement.records import Dataset


class TestRoundtrip:
    def test_full_roundtrip_equality(self, snapshot_2020):
        dataset = snapshot_2020.dataset
        restored = dataset_from_json(dataset_to_json(dataset))
        assert restored.year == dataset.year
        assert restored.notes == dataset.notes
        assert len(restored.websites) == len(dataset.websites)
        for original, copied in zip(dataset.websites, restored.websites):
            assert copied.domain == original.domain
            assert copied.rank == original.rank
            assert copied.dns.nameservers == original.dns.nameservers
            assert copied.dns.website_soa == original.dns.website_soa
            assert copied.dns.nameserver_soas == original.dns.nameserver_soas
            assert copied.tls.san == original.tls.san
            assert copied.tls.ocsp_urls == original.tls.ocsp_urls
            assert copied.tls.endpoint_soas == original.tls.endpoint_soas
            assert copied.cdn.detected_cdns == original.cdn.detected_cdns
            assert copied.cdn.cname_soas == original.cdn.cname_soas
        assert set(restored.cdn_dns) == set(dataset.cdn_dns)
        assert set(restored.ca_dns) == set(dataset.ca_dns)
        assert set(restored.ca_cdn) == set(dataset.ca_cdn)

    def test_serialization_is_deterministic(self, snapshot_2020):
        dataset = snapshot_2020.dataset
        assert dataset_to_json(dataset) == dataset_to_json(dataset)

    def test_analysis_identical_on_restored_dataset(self, snapshot_2020):
        """The paper workflow: re-analysis of a frozen dataset must agree."""
        restored = dataset_from_json(dataset_to_json(snapshot_2020.dataset))
        reanalyzed = analyze_dataset(
            restored,
            rank_scale=snapshot_2020.rank_scale,
            concentration_threshold=snapshot_2020.concentration_threshold,
        )
        original_by_domain = snapshot_2020.by_domain()
        for website in reanalyzed.websites:
            original = original_by_domain[website.domain]
            assert website.dns.uses_third_party == original.dns.uses_third_party
            assert website.dns.is_critical == original.dns.is_critical
            assert website.ca.is_critical == original.ca.is_critical
            assert sorted(c.cdn_name for c in website.cdns) == sorted(
                c.cdn_name for c in original.cdns
            )

    def test_file_roundtrip(self, snapshot_2020, tmp_path):
        path = tmp_path / "dataset.json"
        save_dataset(snapshot_2020.dataset, str(path))
        restored = load_dataset(str(path))
        assert len(restored.websites) == len(snapshot_2020.dataset.websites)

    def test_version_check(self):
        with pytest.raises(ValueError):
            dataset_from_json('{"format_version": 99, "year": 2020}')


class TestFormatVersionErrors:
    def test_mismatch_names_found_and_supported(self):
        with pytest.raises(ValueError) as excinfo:
            dataset_from_json('{"format_version": 99, "year": 2020}')
        message = str(excinfo.value)
        assert "99" in message
        assert f"supports version {FORMAT_VERSION}" in message

    def test_missing_version_reports_none(self):
        with pytest.raises(ValueError, match="None"):
            dataset_from_json('{"year": 2020}')

    def test_shard_version_mismatch(self):
        with pytest.raises(ValueError) as excinfo:
            shard_from_json('{"shard_format_version": 7, "websites": []}')
        message = str(excinfo.value)
        assert "7" in message
        assert f"supports version {SHARD_FORMAT_VERSION}" in message

    def test_errors_are_wire_version_errors(self):
        # The dedicated type is catchable, and still a ValueError for
        # callers with older except clauses.
        assert issubclass(WireVersionError, ValueError)
        with pytest.raises(WireVersionError):
            dataset_from_json('{"format_version": 99, "year": 2020}')
        with pytest.raises(WireVersionError):
            shard_from_json('{"shard_format_version": 0, "websites": []}')

    @pytest.mark.parametrize(
        "version", [0, FORMAT_VERSION + 1, "3", True, None, 2.0]
    )
    def test_unreadable_dataset_versions_are_refused(self, version):
        payload = json.dumps({"format_version": version, "year": 2020})
        with pytest.raises(WireVersionError) as excinfo:
            dataset_from_json(payload)
        # The message names the found version and the upgrade range.
        message = str(excinfo.value)
        assert repr(version) in message
        assert (
            f"versions {OLDEST_READABLE_VERSION}-{FORMAT_VERSION - 1}"
            in message
        )


# -- historical-format upgrades ---------------------------------------------
#
# The inverses of the io module's upgraders: tests *downgrade* a current
# payload to the documented v2/v1 layouts, then assert that reading the
# old bytes reproduces the current serialization exactly.


def _soa_v2_to_v1(data):
    return None if data is None else [data["mname"], data["rname"]]


def _soa_map_v2_to_v1(data):
    return {name: _soa_v2_to_v1(entry) for name, entry in data.items()}


def _website_v3_to_v2(entry):
    out = dict(entry)
    for key in ("dns", "tls", "cdn"):
        observation = dict(out[key])
        del observation["attempts"]
        del observation["failure_mode"]
        del observation["degraded"]
        out[key] = observation
    return out


def _website_v2_to_v1(entry):
    dns = dict(entry["dns"])
    del dns["domain"]
    dns["website_soa"] = _soa_v2_to_v1(dns["website_soa"])
    dns["nameserver_soas"] = _soa_map_v2_to_v1(dns["nameserver_soas"])
    tls = dict(entry["tls"])
    del tls["domain"]
    tls["endpoint_soas"] = _soa_map_v2_to_v1(tls["endpoint_soas"])
    cdn = dict(entry["cdn"])
    del cdn["domain"]
    cdn["cname_soas"] = _soa_map_v2_to_v1(cdn["cname_soas"])
    return {
        "domain": entry["domain"],
        "rank": entry["rank"],
        "dns": dns,
        "tls": tls,
        "cdn": cdn,
    }


def _provider_v2_to_v1(entry):
    out = dict(entry)
    del out["provider_name"]
    out["domain_soa"] = _soa_v2_to_v1(out["domain_soa"])
    out["nameserver_soas"] = _soa_map_v2_to_v1(out["nameserver_soas"])
    return out


def _revocation_v2_to_v1(entry):
    out = dict(entry)
    del out["ca_name"]
    out["cname_soas"] = _soa_map_v2_to_v1(out["cname_soas"])
    return out


def _downgrade_dataset_to_v2(payload):
    out = dict(payload)
    out["websites"] = [_website_v3_to_v2(w) for w in payload["websites"]]
    out["format_version"] = 2
    return out


def _downgrade_dataset_to_v1(payload):
    out = _downgrade_dataset_to_v2(payload)
    out["websites"] = [_website_v2_to_v1(w) for w in out["websites"]]
    out["cdn_dns"] = {
        name: _provider_v2_to_v1(entry)
        for name, entry in out["cdn_dns"].items()
    }
    out["ca_dns"] = {
        name: _provider_v2_to_v1(entry)
        for name, entry in out["ca_dns"].items()
    }
    out["ca_cdn"] = {
        name: _revocation_v2_to_v1(entry)
        for name, entry in out["ca_cdn"].items()
    }
    out["format_version"] = 1
    return out


class TestUpgradePaths:
    def test_v2_dataset_reads_to_current_bytes(self, snapshot_2020):
        current = dataset_to_json(snapshot_2020.dataset)
        v2_text = json.dumps(_downgrade_dataset_to_v2(json.loads(current)))
        assert dataset_to_json(dataset_from_json(v2_text)) == current

    def test_v1_dataset_reads_to_current_bytes(self, snapshot_2020):
        current = dataset_to_json(snapshot_2020.dataset)
        v1_text = json.dumps(_downgrade_dataset_to_v1(json.loads(current)))
        assert dataset_to_json(dataset_from_json(v1_text)) == current

    def test_upgrade_dataset_payload_lands_on_current_version(
        self, snapshot_2020
    ):
        payload = json.loads(dataset_to_json(snapshot_2020.dataset))
        for downgrade in (_downgrade_dataset_to_v1, _downgrade_dataset_to_v2):
            upgraded = upgrade_dataset_payload(downgrade(payload))
            assert upgraded["format_version"] == FORMAT_VERSION

    def test_v1_shard_reads_to_current_bytes(self, snapshot_2020):
        websites = snapshot_2020.dataset.websites[:10]
        current = shard_to_json(websites)
        payload = json.loads(current)
        payload["websites"] = [
            _website_v2_to_v1(_website_v3_to_v2(w))
            for w in payload["websites"]
        ]
        payload["shard_format_version"] = 1
        restored = shard_from_json(json.dumps(payload))
        assert shard_to_json(restored) == current

    def test_v2_shard_reads_to_current_bytes(self, snapshot_2020):
        websites = snapshot_2020.dataset.websites[:10]
        current = shard_to_json(websites)
        payload = json.loads(current)
        payload["websites"] = [
            _website_v3_to_v2(w) for w in payload["websites"]
        ]
        payload["shard_format_version"] = 2
        restored = shard_from_json(json.dumps(payload))
        assert shard_to_json(restored) == current

    def test_upgraded_degradation_fields_default_to_clean(self, snapshot_2020):
        v1_text = json.dumps(
            _downgrade_dataset_to_v1(
                json.loads(dataset_to_json(snapshot_2020.dataset))
            )
        )
        restored = dataset_from_json(v1_text)
        for website in restored.websites[:20]:
            for observation in (website.dns, website.tls, website.cdn):
                assert observation.attempts == 1
                assert observation.failure_mode == ""
                assert observation.degraded is False


class TestNotesOrder:
    def test_roundtrip_preserves_insertion_order(self):
        dataset = Dataset(year=2020)
        dataset.notes["zebra"] = 3
        dataset.notes["apple"] = 1
        dataset.notes["mango"] = 2
        restored = dataset_from_json(dataset_to_json(dataset))
        assert list(restored.notes) == ["zebra", "apple", "mango"]
        assert restored.notes == dataset.notes

    def test_campaign_notes_order_survives(self, snapshot_2020):
        dataset = snapshot_2020.dataset
        restored = dataset_from_json(dataset_to_json(dataset))
        assert list(restored.notes) == list(dataset.notes)


class TestShardRoundtrip:
    def test_shard_roundtrip_is_lossless(self, snapshot_2020):
        websites = snapshot_2020.dataset.websites[:20]
        payload = shard_to_json(websites)
        restored = shard_from_json(payload)
        assert len(restored) == 20
        # Re-serialization of the restored shard reproduces the bytes —
        # the property the engine's checkpoint/merge path relies on.
        assert shard_to_json(restored) == payload
        for original, copied in zip(websites, restored):
            assert copied.domain == original.domain
            assert copied.rank == original.rank
            assert copied.dns.nameservers == original.dns.nameservers
            assert copied.tls.san == original.tls.san
            assert copied.cdn.detected_cdns == original.cdn.detected_cdns

    def test_empty_shard(self):
        assert shard_from_json(shard_to_json([])) == []
