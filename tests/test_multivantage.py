"""Tests for GeoDNS views and multi-vantage measurement (§3.5 extension)."""

import pytest

from repro.dnssim.records import ARecord, CNAMERecord, RRType, SOARecord
from repro.dnssim.zone import LookupKind, Zone
from repro.measurement.runner import MeasurementCampaign


class TestZoneRegionalRecords:
    @pytest.fixture
    def zone(self):
        z = Zone("example.com", SOARecord("ns1.example.com", "h.example.com"))
        z.add("static.example.com", CNAMERecord("cust.us-cdn.net"))
        z.add_regional("static.example.com", "cn", CNAMERecord("cust.cn-cdn.net"))
        z.add("www.example.com", ARecord("10.0.0.1"))
        z.add_regional("www.example.com", "cn", ARecord("10.9.9.9"))
        return z

    def test_default_view(self, zone):
        result = zone.lookup("static.example.com", RRType.A)
        assert result.records[0].rdata.target == "cust.us-cdn.net"

    def test_regional_view_overrides(self, zone):
        result = zone.lookup("static.example.com", RRType.A, region="cn")
        assert result.kind == LookupKind.CNAME
        assert result.records[0].rdata.target == "cust.cn-cdn.net"

    def test_regional_a_record(self, zone):
        result = zone.lookup("www.example.com", RRType.A, region="cn")
        assert result.records[0].rdata.address == "10.9.9.9"

    def test_unknown_region_falls_back(self, zone):
        result = zone.lookup("www.example.com", RRType.A, region="mars")
        assert result.records[0].rdata.address == "10.0.0.1"

    def test_regional_record_out_of_zone_rejected(self, zone):
        from repro.dnssim.zone import ZoneError

        with pytest.raises(ZoneError):
            zone.add_regional("other.org", "cn", ARecord("10.0.0.1"))


class TestWorldVantage:
    def test_vantage_resolver_is_region_tagged(self, world_2020):
        vantage = world_2020.vantage("cn")
        assert vantage.resolver.region == "cn"
        assert world_2020.resolver.region is None

    def test_regional_site_resolves_differently(self, world_2020):
        site = next(
            (
                w for w in world_2020.spec.websites
                if w.regional_cdns.get("cn")
            ),
            None,
        )
        if site is None:
            pytest.skip("no regional-CDN site in this world")
        infra = world_2020.website_infra[site.domain]
        cdn_hosts = [
            h for h in infra.resource_hosts if h.startswith("static")
        ]
        assert cdn_hosts
        host = cdn_hosts[0]
        default_chain = world_2020.vantage(None).dig.cname_chain(host)
        cn_chain = world_2020.vantage("cn").dig.cname_chain(host)
        assert default_chain != cn_chain
        regional_cdn = world_2020.spec.cdns[site.regional_cdns["cn"]]
        assert any(
            name.endswith(suffix)
            for name in cn_chain
            for suffix in regional_cdn.cname_suffixes
        )


class TestMultiVantageCampaign:
    def test_second_vantage_reveals_hidden_cdns(self, world_2020):
        regional_sites = [
            w.domain for w in world_2020.spec.websites if w.regional_cdns
        ]
        if not regional_sites:
            pytest.skip("no regional-CDN sites in this world")
        limit = max(
            i + 1
            for i, w in enumerate(
                sorted(world_2020.spec.websites, key=lambda w: w.rank)
            )
            if w.domain in regional_sites
        )
        limit = min(limit, len(world_2020.spec.websites))
        default = MeasurementCampaign(world_2020, limit=limit).run()
        cn = MeasurementCampaign(world_2020, limit=limit, region="cn").run()

        def pairs(dataset):
            return {
                (w.domain, cdn)
                for w in dataset.websites
                for cdn in w.cdn.detected_cdns
            }

        default_pairs = pairs(default)
        cn_pairs = pairs(cn)
        assert cn_pairs - default_pairs, (
            "the cn vantage should reveal CDN pairs the default misses"
        )

    def test_union_dominates_single_vantage(self, world_2020):
        default = MeasurementCampaign(world_2020, limit=80).run()
        cn = MeasurementCampaign(world_2020, limit=80, region="cn").run()

        def pairs(dataset):
            return {
                (w.domain, cdn)
                for w in dataset.websites
                for cdn in w.cdn.detected_cdns
            }

        union = pairs(default) | pairs(cn)
        assert len(union) >= len(pairs(default))
