"""Unit tests for hostname normalization and validation."""

import pytest

from repro.names.normalize import (
    InvalidDomainError,
    ancestors,
    ensure_valid_hostname,
    is_valid_hostname,
    normalize,
    parent_name,
    split_labels,
)


class TestNormalize:
    def test_lowercases(self):
        assert normalize("WWW.Example.COM") == "www.example.com"

    def test_strips_trailing_dot(self):
        assert normalize("example.com.") == "example.com"

    def test_strips_whitespace(self):
        assert normalize("  example.com \n") == "example.com"

    def test_root_becomes_empty(self):
        assert normalize(".") == ""
        assert normalize("") == ""

    def test_single_trailing_dot_only(self):
        # Only one trailing dot is an FQDN marker.
        assert normalize("example.com..") == "example.com."

    def test_rejects_non_string(self):
        with pytest.raises(InvalidDomainError):
            normalize(42)  # type: ignore[arg-type]


class TestSplitLabels:
    def test_basic(self):
        assert split_labels("a.b.c") == ["a", "b", "c"]

    def test_empty(self):
        assert split_labels("") == []

    def test_normalizes_first(self):
        assert split_labels("A.B.") == ["a", "b"]


class TestIsValidHostname:
    def test_accepts_normal(self):
        assert is_valid_hostname("example.com")
        assert is_valid_hostname("a-b.example.co.uk")

    def test_accepts_wildcard_leftmost(self):
        assert is_valid_hostname("*.example.com")

    def test_rejects_wildcard_elsewhere(self):
        assert not is_valid_hostname("www.*.example.com")

    def test_rejects_hyphen_edges(self):
        assert not is_valid_hostname("-bad.example.com")
        assert not is_valid_hostname("bad-.example.com")

    def test_rejects_empty(self):
        assert not is_valid_hostname("")

    def test_rejects_too_long_name(self):
        assert not is_valid_hostname(".".join(["abc"] * 80))

    def test_rejects_too_long_label(self):
        assert not is_valid_hostname("a" * 64 + ".com")

    def test_accepts_underscores(self):
        assert is_valid_hostname("_dmarc.example.com")


class TestEnsureValid:
    def test_returns_normalized(self):
        assert ensure_valid_hostname("WWW.Example.COM.") == "www.example.com"

    def test_raises_on_invalid(self):
        with pytest.raises(InvalidDomainError):
            ensure_valid_hostname("-bad-.com")


class TestAncestry:
    def test_parent(self):
        assert parent_name("www.example.com") == "example.com"
        assert parent_name("com") == ""

    def test_ancestors(self):
        assert ancestors("a.b.example.com") == [
            "b.example.com", "example.com", "com",
        ]

    def test_ancestors_include_self(self):
        assert ancestors("example.com", include_self=True) == [
            "example.com", "com",
        ]

    def test_ancestors_of_tld(self):
        assert ancestors("com") == []
