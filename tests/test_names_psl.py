"""Unit tests for the Public Suffix List implementation."""

from repro.names.psl import PublicSuffixList, default_psl, icann_psl


class TestDefaultPsl:
    def test_simple_tld(self):
        psl = default_psl()
        assert psl.public_suffix("example.com") == "com"
        assert psl.registrable_domain("www.example.com") == "example.com"

    def test_two_level_suffix(self):
        psl = default_psl()
        assert psl.public_suffix("www.bbc.co.uk") == "co.uk"
        assert psl.registrable_domain("www.bbc.co.uk") == "bbc.co.uk"

    def test_bare_suffix_has_no_registrable(self):
        psl = default_psl()
        assert psl.registrable_domain("co.uk") is None
        assert psl.registrable_domain("com") is None

    def test_private_section_suffixes(self):
        psl = default_psl()
        assert psl.registrable_domain("foo.github.io") == "foo.github.io"
        assert psl.registrable_domain("d1234.cloudfront.net") == "d1234.cloudfront.net"

    def test_unknown_tld_falls_back_to_last_label(self):
        psl = default_psl()
        assert psl.public_suffix("example.unknowntld") == "unknowntld"
        assert psl.registrable_domain("a.b.example.unknowntld") == "example.unknowntld"

    def test_is_public_suffix(self):
        psl = default_psl()
        assert psl.is_public_suffix("com")
        assert psl.is_public_suffix("co.uk")
        assert not psl.is_public_suffix("example.com")

    def test_empty_name(self):
        psl = default_psl()
        assert psl.public_suffix("") is None
        assert psl.registrable_domain("") is None


class TestIcannPsl:
    def test_private_suffixes_excluded(self):
        psl = icann_psl()
        # cloudfront.net is a *private* suffix: under ICANN rules it is an
        # ordinary registrable domain (this is what the DNS tree uses).
        assert psl.registrable_domain("d1234.cloudfront.net") == "cloudfront.net"

    def test_icann_suffixes_still_present(self):
        psl = icann_psl()
        assert psl.registrable_domain("www.bbc.co.uk") == "bbc.co.uk"


class TestCustomRules:
    def test_wildcard_rule(self):
        psl = PublicSuffixList(["com", "*.ck"])
        assert psl.public_suffix("www.shop.ck") == "shop.ck"
        assert psl.registrable_domain("www.shop.ck") == "www.shop.ck"

    def test_exception_rule(self):
        psl = PublicSuffixList(["com", "*.ck", "!www.ck"])
        assert psl.registrable_domain("www.ck") == "www.ck"
        assert psl.public_suffix("www.ck") == "ck"

    def test_add_rule_at_runtime(self):
        psl = PublicSuffixList(["com"])
        assert psl.registrable_domain("a.mycdn.net") == "mycdn.net"
        psl.add_rule("mycdn.net")
        assert psl.registrable_domain("a.mycdn.net") == "a.mycdn.net"

    def test_comments_and_blanks_ignored(self):
        psl = PublicSuffixList(["// comment", "", "com  // trailing"])
        assert psl.public_suffix("example.com") == "com"

    def test_longest_match_wins(self):
        psl = PublicSuffixList(["uk", "co.uk"])
        assert psl.public_suffix("x.co.uk") == "co.uk"
