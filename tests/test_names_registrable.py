"""Unit tests for registrable-domain helpers (the paper's tld())."""

from repro.names.registrable import (
    is_subdomain_of,
    matches_san_entry,
    registrable_domain,
    same_registrable_domain,
    tld,
)


class TestTld:
    def test_tld_is_registrable_domain(self):
        assert tld("ns1.dynect.net") == "dynect.net"
        assert tld("www.twitter.com") == "twitter.com"

    def test_paper_example_youtube_google(self):
        # tld(ns1.google.com) != tld(youtube.com): the TLD heuristic's
        # false positive the SAN list must rescue.
        assert tld("ns1.google.com") == "google.com"
        assert tld("youtube.com") == "youtube.com"
        assert tld("ns1.google.com") != tld("youtube.com")


class TestSameRegistrable:
    def test_same(self):
        assert same_registrable_domain("a.example.com", "b.example.com")

    def test_different(self):
        assert not same_registrable_domain("a.example.com", "a.example.org")

    def test_identical_bare_suffix(self):
        assert same_registrable_domain("co.uk", "co.uk")

    def test_distinct_bare_suffixes(self):
        assert not same_registrable_domain("co.uk", "org.uk")

    def test_psl_private_section_separates_tenants(self):
        assert not same_registrable_domain("a.github.io", "b.github.io")


class TestIsSubdomainOf:
    def test_true_cases(self):
        assert is_subdomain_of("a.b.example.com", "example.com")
        assert is_subdomain_of("example.com", "example.com")

    def test_label_boundary(self):
        assert not is_subdomain_of("badexample.com", "example.com")

    def test_empty_ancestor(self):
        assert not is_subdomain_of("example.com", "")


class TestSanMatching:
    def test_exact(self):
        assert matches_san_entry("www.example.com", "www.example.com")

    def test_wildcard_one_label(self):
        assert matches_san_entry("www.example.com", "*.example.com")
        assert not matches_san_entry("a.b.example.com", "*.example.com")

    def test_wildcard_does_not_match_apex(self):
        assert not matches_san_entry("example.com", "*.example.com")

    def test_case_insensitive(self):
        assert matches_san_entry("WWW.Example.COM", "*.example.com")
