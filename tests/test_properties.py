"""Property-based tests (hypothesis) for core data structures & invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.graph import DependencyGraph, ProviderNode, ServiceType
from repro.dnssim.cache import DnsCache, NegativeCacheHit
from repro.dnssim.clock import SimulatedClock
from repro.dnssim.records import ARecord, RRType, ResourceRecord
from repro.faults.plan import FaultPlan, FaultRule
from repro.measurement.records import (
    CdnObservation,
    DnsObservation,
    SoaIdentity,
    TlsObservation,
    WebsiteMeasurement,
)
from repro.names.normalize import normalize, split_labels
from repro.names.psl import default_psl
from repro.names.registrable import is_subdomain_of, registrable_domain

_label = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=10
)
_hostnames = st.lists(_label, min_size=1, max_size=5).map(".".join)


class TestNameProperties:
    @given(_hostnames)
    def test_normalize_idempotent(self, name):
        assert normalize(normalize(name)) == normalize(name)

    @given(_hostnames)
    def test_split_join_roundtrip(self, name):
        assert ".".join(split_labels(name)) == normalize(name)

    @given(_hostnames)
    def test_registrable_domain_is_suffix_of_name(self, name):
        base = registrable_domain(name)
        if base is not None:
            assert is_subdomain_of(name, base)

    @given(_hostnames)
    def test_registrable_domain_idempotent(self, name):
        base = registrable_domain(name)
        if base is not None:
            assert registrable_domain(base) == base

    @given(_hostnames)
    def test_public_suffix_shorter_than_registrable(self, name):
        psl = default_psl()
        suffix = psl.public_suffix(name)
        base = psl.registrable_domain(name)
        if base is not None and suffix is not None:
            assert len(split_labels(base)) == len(split_labels(suffix)) + 1

    @given(_hostnames, _label)
    def test_subdomain_relation_transitive_upward(self, name, extra):
        child = f"{extra}.{name}"
        assert is_subdomain_of(child, name)


class TestCacheProperties:
    @given(
        entries=st.lists(
            st.tuples(_hostnames, st.integers(1, 10_000)),
            min_size=1, max_size=30,
        ),
        advance=st.integers(0, 12_000),
    )
    @settings(max_examples=50)
    def test_cache_never_serves_expired(self, entries, advance):
        clock = SimulatedClock()
        cache = DnsCache(clock)
        for name, ttl in entries:
            cache.put(name, RRType.A, [ResourceRecord(name, ttl, ARecord("10.0.0.1"))])
        clock.advance(advance)
        for name, ttl in entries:
            try:
                got = cache.get(name, RRType.A)
            except NegativeCacheHit:
                raise AssertionError("no negative entries were inserted")
            if got is not None:
                # The freshest insert for this name must still be valid.
                max_ttl = max(t for n, t in entries if normalize(n) == normalize(name))
                assert advance <= max_ttl

    @given(st.integers(1, 20), st.integers(21, 60))
    @settings(max_examples=30)
    def test_capacity_bound_holds(self, capacity, inserts):
        clock = SimulatedClock()
        cache = DnsCache(clock, max_entries=capacity)
        for i in range(inserts):
            cache.put(f"h{i}.example", RRType.A,
                      [ResourceRecord(f"h{i}.example", 100, ARecord("10.0.0.1"))])
        assert len(cache) <= capacity


def _random_graph(rng: random.Random) -> DependencyGraph:
    graph = DependencyGraph()
    services = list(ServiceType)
    providers = [
        ProviderNode(f"p{i}", rng.choice(services)) for i in range(rng.randint(2, 8))
    ]
    for i in range(rng.randint(3, 25)):
        provider = rng.choice(providers)
        graph.add_website_dependency(
            f"site{i}.com", provider, critical=rng.random() < 0.6
        )
    for _ in range(rng.randint(0, 10)):
        a, b = rng.sample(providers, 2) if len(providers) >= 2 else (None, None)
        if a is not None:
            graph.add_provider_dependency(a, b, critical=rng.random() < 0.5)
    return graph


class TestGraphProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=50)
    def test_concentration_bounds_impact(self, seed):
        graph = _random_graph(random.Random(seed))
        for provider in graph.providers():
            concentration = graph.concentration(provider)
            impact = graph.impact(provider)
            assert 0 <= impact <= concentration <= len(graph.websites())

    @given(st.integers(0, 10_000))
    @settings(max_examples=50)
    def test_indirect_dominates_direct(self, seed):
        graph = _random_graph(random.Random(seed))
        for provider in graph.providers():
            assert graph.concentration(provider) >= graph.direct_concentration(provider)
            assert graph.impact(provider) >= graph.direct_impact(provider)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30)
    def test_dependents_are_real_websites(self, seed):
        graph = _random_graph(random.Random(seed))
        websites = set(graph.websites())
        for provider in graph.providers():
            assert graph.dependent_websites(provider) <= websites

    @given(st.integers(0, 10_000))
    @settings(max_examples=30)
    def test_top_providers_sorted(self, seed):
        graph = _random_graph(random.Random(seed))
        for service in ServiceType:
            scores = [s for _, s in graph.top_providers(service, 10)]
            assert scores == sorted(scores, reverse=True)


class TestWireFormatProperty:
    @given(
        st.lists(
            st.tuples(_hostnames, st.integers(0, 3600)),
            min_size=1, max_size=8,
        )
    )
    @settings(max_examples=40)
    def test_message_roundtrip_many_records(self, records):
        from repro.dnssim.message import DnsMessage

        msg = DnsMessage.query(records[0][0], RRType.A).response()
        msg.answers = [
            ResourceRecord(name, ttl, ARecord("10.1.2.3"))
            for name, ttl in records
        ]
        out = DnsMessage.from_wire(msg.to_wire())
        assert out.answers == msg.answers

    @given(
        qname=_hostnames,
        msg_id=st.integers(0, 0xFFFF),
        rcode_value=st.sampled_from([0, 2, 3, 5]),
        aa=st.booleans(),
        tc=st.booleans(),
    )
    @settings(max_examples=60)
    def test_header_flags_and_rcode_roundtrip(
        self, qname, msg_id, rcode_value, aa, tc
    ):
        """Every header bit the fault injector manipulates (rcode, AA,
        TC) survives the wire — what SERVFAIL/lame/truncate faults rely
        on to reach the resolver intact."""
        from repro.dnssim.message import DnsMessage, RCode

        msg = DnsMessage.query(qname, RRType.A, msg_id=msg_id).response(
            RCode(rcode_value), aa=aa
        )
        msg.tc = tc
        out = DnsMessage.from_wire(msg.to_wire())
        assert out.id == msg_id
        assert out.rcode == RCode(rcode_value)
        assert out.aa is aa
        assert out.tc is tc
        assert out.question is not None
        assert out.question.qname == normalize(qname)


# -- v3 measurement-record strategies ---------------------------------------

_soas = st.none() | st.builds(SoaIdentity, mname=_hostnames, rname=_hostnames)
_soa_maps = st.dictionaries(_hostnames, _soas, max_size=4)
_failures = st.sampled_from(
    ["", "dns: no reachable authoritative servers",
     "http: status 502", "tcp: all addresses unreachable"]
)
_attempts = st.integers(1, 5)
_hostname_lists = st.lists(_hostnames, max_size=4)
_chain_maps = st.dictionaries(_hostnames, _hostname_lists, max_size=3)

_dns_observations = st.builds(
    DnsObservation,
    domain=_hostnames,
    nameservers=_hostname_lists,
    website_soa=_soas,
    nameserver_soas=_soa_maps,
    resolvable=st.booleans(),
    attempts=_attempts,
    failure_mode=_failures,
    degraded=st.booleans(),
)
_tls_observations = st.builds(
    TlsObservation,
    domain=_hostnames,
    https=st.booleans(),
    san=_hostname_lists.map(tuple),
    issuer=_label,
    ocsp_urls=_hostname_lists.map(lambda hs: tuple(f"http://{h}/" for h in hs)),
    crl_urls=_hostname_lists.map(lambda hs: tuple(f"http://{h}/crl" for h in hs)),
    ocsp_stapled=st.booleans(),
    endpoint_soas=_soa_maps,
    attempts=_attempts,
    failure_mode=_failures,
    degraded=st.booleans(),
)
_cdn_observations = st.builds(
    CdnObservation,
    domain=_hostnames,
    crawl_ok=st.booleans(),
    resource_hostnames=_hostname_lists,
    internal_hostnames=_hostname_lists,
    cname_chains=_chain_maps,
    detected_cdns=_chain_maps,
    cname_soas=_soa_maps,
    attempts=_attempts,
    failure_mode=_failures,
    degraded=st.booleans(),
)
_website_measurements = st.builds(
    WebsiteMeasurement,
    domain=_hostnames,
    rank=st.integers(1, 1_000_000),
    dns=_dns_observations,
    tls=_tls_observations,
    cdn=_cdn_observations,
)


class TestRecordRoundtripProperties:
    """to_dict/from_dict is the identity on every v3 record shape —
    including the degradation triple fault injection fills in."""

    @given(_dns_observations)
    @settings(max_examples=50)
    def test_dns_observation_roundtrip(self, observation):
        assert DnsObservation.from_dict(observation.to_dict()) == observation

    @given(_tls_observations)
    @settings(max_examples=50)
    def test_tls_observation_roundtrip(self, observation):
        assert TlsObservation.from_dict(observation.to_dict()) == observation

    @given(_cdn_observations)
    @settings(max_examples=50)
    def test_cdn_observation_roundtrip(self, observation):
        assert CdnObservation.from_dict(observation.to_dict()) == observation

    @given(_website_measurements)
    @settings(max_examples=25)
    def test_website_measurement_roundtrip_through_shard_json(self, website):
        from repro.measurement.io import shard_from_json, shard_to_json

        payload = shard_to_json([website])
        restored = shard_from_json(payload)
        assert restored == [website]
        # Re-serialization is byte-stable (the checkpoint/merge contract).
        assert shard_to_json(restored) == payload


_fault_rules = st.builds(
    FaultRule,
    name=st.uuids().map(str),
    layer=st.just("dns"),
    kind=st.sampled_from(["drop", "servfail", "refused", "truncate", "lame"]),
    scope=st.one_of(st.just("*"), _hostnames),
    server=st.one_of(st.just("*"), _hostnames),
    probability=st.floats(0.0, 1.0, allow_nan=False),
    rank_window=st.none()
    | st.tuples(st.integers(1, 100), st.integers(100, 10_000)),
)


class TestFaultPlanProperties:
    @given(st.lists(_fault_rules, max_size=6, unique_by=lambda r: r.name),
           st.integers(0, 2**32))
    @settings(max_examples=50)
    def test_plan_json_roundtrip_and_digest_stability(self, rules, seed):
        plan = FaultPlan(rules=tuple(rules), seed=seed)
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.digest() == plan.digest()

    @given(_fault_rules)
    @settings(max_examples=50)
    def test_rule_dict_roundtrip(self, rule):
        assert FaultRule.from_dict(rule.to_dict()) == rule

    @given(st.integers(0, 2**32), st.integers(0, 2**32))
    @settings(max_examples=30)
    def test_digest_separates_seeds(self, seed_a, seed_b):
        rule = FaultRule(name="r", layer="dns", kind="drop", probability=0.5)
        digest_a = FaultPlan(rules=(rule,), seed=seed_a).digest()
        digest_b = FaultPlan(rules=(rule,), seed=seed_b).digest()
        assert (digest_a == digest_b) == (seed_a == seed_b)
