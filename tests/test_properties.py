"""Property-based tests (hypothesis) for core data structures & invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.graph import DependencyGraph, ProviderNode, ServiceType
from repro.dnssim.cache import DnsCache, NegativeCacheHit
from repro.dnssim.clock import SimulatedClock
from repro.dnssim.records import ARecord, RRType, ResourceRecord
from repro.names.normalize import normalize, split_labels
from repro.names.psl import default_psl
from repro.names.registrable import is_subdomain_of, registrable_domain

_label = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=10
)
_hostnames = st.lists(_label, min_size=1, max_size=5).map(".".join)


class TestNameProperties:
    @given(_hostnames)
    def test_normalize_idempotent(self, name):
        assert normalize(normalize(name)) == normalize(name)

    @given(_hostnames)
    def test_split_join_roundtrip(self, name):
        assert ".".join(split_labels(name)) == normalize(name)

    @given(_hostnames)
    def test_registrable_domain_is_suffix_of_name(self, name):
        base = registrable_domain(name)
        if base is not None:
            assert is_subdomain_of(name, base)

    @given(_hostnames)
    def test_registrable_domain_idempotent(self, name):
        base = registrable_domain(name)
        if base is not None:
            assert registrable_domain(base) == base

    @given(_hostnames)
    def test_public_suffix_shorter_than_registrable(self, name):
        psl = default_psl()
        suffix = psl.public_suffix(name)
        base = psl.registrable_domain(name)
        if base is not None and suffix is not None:
            assert len(split_labels(base)) == len(split_labels(suffix)) + 1

    @given(_hostnames, _label)
    def test_subdomain_relation_transitive_upward(self, name, extra):
        child = f"{extra}.{name}"
        assert is_subdomain_of(child, name)


class TestCacheProperties:
    @given(
        entries=st.lists(
            st.tuples(_hostnames, st.integers(1, 10_000)),
            min_size=1, max_size=30,
        ),
        advance=st.integers(0, 12_000),
    )
    @settings(max_examples=50)
    def test_cache_never_serves_expired(self, entries, advance):
        clock = SimulatedClock()
        cache = DnsCache(clock)
        for name, ttl in entries:
            cache.put(name, RRType.A, [ResourceRecord(name, ttl, ARecord("10.0.0.1"))])
        clock.advance(advance)
        for name, ttl in entries:
            try:
                got = cache.get(name, RRType.A)
            except NegativeCacheHit:
                raise AssertionError("no negative entries were inserted")
            if got is not None:
                # The freshest insert for this name must still be valid.
                max_ttl = max(t for n, t in entries if normalize(n) == normalize(name))
                assert advance <= max_ttl

    @given(st.integers(1, 20), st.integers(21, 60))
    @settings(max_examples=30)
    def test_capacity_bound_holds(self, capacity, inserts):
        clock = SimulatedClock()
        cache = DnsCache(clock, max_entries=capacity)
        for i in range(inserts):
            cache.put(f"h{i}.example", RRType.A,
                      [ResourceRecord(f"h{i}.example", 100, ARecord("10.0.0.1"))])
        assert len(cache) <= capacity


def _random_graph(rng: random.Random) -> DependencyGraph:
    graph = DependencyGraph()
    services = list(ServiceType)
    providers = [
        ProviderNode(f"p{i}", rng.choice(services)) for i in range(rng.randint(2, 8))
    ]
    for i in range(rng.randint(3, 25)):
        provider = rng.choice(providers)
        graph.add_website_dependency(
            f"site{i}.com", provider, critical=rng.random() < 0.6
        )
    for _ in range(rng.randint(0, 10)):
        a, b = rng.sample(providers, 2) if len(providers) >= 2 else (None, None)
        if a is not None:
            graph.add_provider_dependency(a, b, critical=rng.random() < 0.5)
    return graph


class TestGraphProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=50)
    def test_concentration_bounds_impact(self, seed):
        graph = _random_graph(random.Random(seed))
        for provider in graph.providers():
            concentration = graph.concentration(provider)
            impact = graph.impact(provider)
            assert 0 <= impact <= concentration <= len(graph.websites())

    @given(st.integers(0, 10_000))
    @settings(max_examples=50)
    def test_indirect_dominates_direct(self, seed):
        graph = _random_graph(random.Random(seed))
        for provider in graph.providers():
            assert graph.concentration(provider) >= graph.direct_concentration(provider)
            assert graph.impact(provider) >= graph.direct_impact(provider)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30)
    def test_dependents_are_real_websites(self, seed):
        graph = _random_graph(random.Random(seed))
        websites = set(graph.websites())
        for provider in graph.providers():
            assert graph.dependent_websites(provider) <= websites

    @given(st.integers(0, 10_000))
    @settings(max_examples=30)
    def test_top_providers_sorted(self, seed):
        graph = _random_graph(random.Random(seed))
        for service in ServiceType:
            scores = [s for _, s in graph.top_providers(service, 10)]
            assert scores == sorted(scores, reverse=True)


class TestWireFormatProperty:
    @given(
        st.lists(
            st.tuples(_hostnames, st.integers(0, 3600)),
            min_size=1, max_size=8,
        )
    )
    @settings(max_examples=40)
    def test_message_roundtrip_many_records(self, records):
        from repro.dnssim.message import DnsMessage

        msg = DnsMessage.query(records[0][0], RRType.A).response()
        msg.answers = [
            ResourceRecord(name, ttl, ARecord("10.1.2.3"))
            for name, ttl in records
        ]
        out = DnsMessage.from_wire(msg.to_wire())
        assert out.answers == msg.answers
