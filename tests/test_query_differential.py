"""The differential harness: fast-path queries == batch-pipeline truth.

The query engine answers from a compiled binary store and must never
drift from the paper's semantics. Every test here derives the *slow*
answer independently — ``analyze_dataset`` on the frozen JSON, then
``top_providers`` / ``website_exposure`` / ``dependent_websites`` /
``provider_metrics`` — builds the payload the engine contract promises,
and asserts the fast answer is **byte-identical** after canonical JSON
rendering. A fixed world is checked exhaustively (every site, every
provider, every ranking mode); hypothesis varies the world; and the
worker-count test proves stores compiled from 1/2/N-worker campaign
checkpoints are the same bytes.
"""

from __future__ import annotations

import hashlib
import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import WorldConfig, build_world
from repro.core import ServiceType, analyze_dataset
from repro.core.graph import ProviderNode
from repro.engine import run_campaign
from repro.failures import predicted_dns_victims, website_exposure
from repro.measurement.io import dataset_from_json, dataset_to_json
from repro.measurement.runner import MeasurementCampaign
from repro.query import QueryEngine, QueryError, payload_to_json
from repro.store import StoreReader, compile_dataset_text
from repro.worldgen.config import PAPER_POPULATION

DIFF_N = 120
DIFF_SEED = 17
WORKERS = int(os.environ.get("REPRO_ENGINE_WORKERS", "2"))

MODES = ("impact", "concentration", "direct_impact", "direct_concentration")


# -- the slow path: everything derived from AnalyzedSnapshot ----------------


def slow_snapshot(text: str):
    """The batch pipeline exactly as ``repro analyze`` runs it."""
    dataset = dataset_from_json(text)
    world_n = dataset.notes.get("world_n") or len(dataset.websites)
    rank_scale = PAPER_POPULATION / world_n if world_n else 1.0
    return analyze_dataset(dataset, rank_scale=rank_scale)


def slow_store_block(text: str, snapshot) -> dict:
    return {
        "schema": "repro-store/1",
        "source_sha256": hashlib.sha256(text.encode("utf-8")).hexdigest(),
        "year": snapshot.year,
        "websites": len(snapshot.websites),
    }


def _metrics_dict(m) -> dict:
    return {
        "concentration": m.concentration,
        "impact": m.impact,
        "direct_concentration": m.direct_concentration,
        "direct_impact": m.direct_impact,
    }


def slow_top(snapshot, block: dict, k: int, mode: str, service: str) -> dict:
    by = mode.removeprefix("direct_")
    ranked = snapshot.graph.top_providers(
        ServiceType(service), k=k, by=by, indirect=not mode.startswith("direct_")
    )
    metrics = snapshot.provider_metrics()
    return {
        "query": {"kind": "top", "k": k, "mode": mode, "service": service},
        "results": [
            {
                "provider": str(node),
                "display": snapshot.graph.display(node),
                "score": score,
                "metrics": _metrics_dict(metrics[node]),
            }
            for node, score in ranked
        ],
        "store": block,
    }


def slow_site(snapshot, block: dict, domain: str) -> dict:
    graph = snapshot.graph
    critical = graph.website_dependencies(domain, critical_only=True)
    dependencies = [
        {
            "provider": str(node),
            "display": graph.display(node),
            "service": node.service.value,
            "critical": node in critical,
        }
        for node in sorted(graph.website_dependencies(domain), key=str)
    ]
    report = website_exposure(snapshot, domain)
    return {
        "query": {"kind": "site", "site": domain},
        "site": {
            "domain": domain,
            "rank": snapshot.by_domain()[domain].rank,
            "dependencies": dependencies,
            "critical_dependency_count": report.critical_dependency_count,
            "direct_critical": report.direct_critical,
            "transitive_critical": report.transitive_critical,
        },
        "store": block,
    }


def _provider_block(snapshot, node: ProviderNode) -> dict:
    return {
        "provider": str(node),
        "display": snapshot.graph.display(node),
        "service": node.service.value,
    }


def slow_dependents(snapshot, block: dict, node: ProviderNode) -> dict:
    graph = snapshot.graph
    direct_critical = graph.direct_dependents(node, critical_only=True)
    consumer_critical = set(graph.provider_consumers(node, critical_only=True))
    metrics = snapshot.provider_metrics()[node]
    return {
        "query": {"kind": "dependents", "provider": str(node)},
        "provider": _provider_block(snapshot, node),
        "direct": [
            {"domain": domain, "critical": domain in direct_critical}
            for domain in sorted(graph.direct_dependents(node))
        ],
        "consumers": [
            {
                "provider": str(consumer),
                "display": graph.display(consumer),
                "critical": consumer in consumer_critical,
            }
            for consumer in graph.provider_consumers(node)
        ],
        "transitive": {
            "concentration": metrics.concentration,
            "impact": metrics.impact,
        },
        "store": block,
    }


def slow_whatif(snapshot, block: dict, node: ProviderNode) -> dict:
    graph = snapshot.graph
    down = graph.dependent_websites(node, critical_only=True)
    at_risk = graph.dependent_websites(node) - down
    return {
        "query": {"kind": "whatif", "provider": str(node)},
        "provider": _provider_block(snapshot, node),
        "down": sorted(down),
        "at_risk": sorted(at_risk),
        "counts": {
            "down": len(down),
            "at_risk": len(at_risk),
            "unaffected": len(snapshot.websites) - len(down) - len(at_risk),
        },
        "metrics": _metrics_dict(snapshot.provider_metrics()[node]),
        "store": block,
    }


def assert_bytes_equal(fast: dict, slow: dict) -> None:
    """The differential contract: canonical JSON must match to the byte."""
    assert payload_to_json(fast) == json.dumps(slow, indent=1, sort_keys=True)


# -- the exhaustive fixed-world check ---------------------------------------


@pytest.fixture(scope="module")
def diff_world():
    return build_world(WorldConfig(n_websites=DIFF_N, seed=DIFF_SEED))


@pytest.fixture(scope="module")
def diff_text(diff_world) -> str:
    return dataset_to_json(MeasurementCampaign(diff_world).run())


@pytest.fixture(scope="module")
def diff_snapshot(diff_text):
    return slow_snapshot(diff_text)


@pytest.fixture(scope="module")
def diff_engine(diff_text) -> QueryEngine:
    return QueryEngine(StoreReader.from_bytes(compile_dataset_text(diff_text)))


@pytest.fixture(scope="module")
def diff_block(diff_text, diff_snapshot) -> dict:
    return slow_store_block(diff_text, diff_snapshot)


class TestFixedWorldExhaustive:
    def test_top_all_services_modes_and_ks(
        self, diff_engine, diff_snapshot, diff_block
    ):
        for service in ServiceType:
            for mode in MODES:
                for k in (1, 3, 5, 10_000):
                    fast = diff_engine.top(k, mode, service.value)
                    slow = slow_top(
                        diff_snapshot, diff_block, k, mode, service.value
                    )
                    assert_bytes_equal(fast, slow)

    def test_every_site_lookup(self, diff_engine, diff_snapshot, diff_block):
        for website in diff_snapshot.websites:
            fast = diff_engine.site(website.domain)
            slow = slow_site(diff_snapshot, diff_block, website.domain)
            assert_bytes_equal(fast, slow)

    def test_every_provider_dependents(
        self, diff_engine, diff_snapshot, diff_block
    ):
        for node in diff_snapshot.graph.providers():
            fast = diff_engine.dependents(str(node))
            slow = slow_dependents(diff_snapshot, diff_block, node)
            assert_bytes_equal(fast, slow)

    def test_every_provider_whatif(
        self, diff_engine, diff_snapshot, diff_block
    ):
        for node in diff_snapshot.graph.providers():
            fast = diff_engine.whatif(str(node))
            slow = slow_whatif(diff_snapshot, diff_block, node)
            assert_bytes_equal(fast, slow)

    def test_unknowns_raise_typed_errors(self, diff_engine):
        with pytest.raises(QueryError):
            diff_engine.site("no-such-site.example")
        with pytest.raises(QueryError):
            diff_engine.whatif("dns:no-such-provider.example")
        with pytest.raises(QueryError):
            diff_engine.top(5, "bogosity", "dns")
        with pytest.raises(QueryError):
            diff_engine.top(5, "impact", "smtp")

    def test_cached_answers_stay_byte_identical(
        self, diff_engine, diff_snapshot, diff_block
    ):
        first = payload_to_json(diff_engine.top(5, "impact", "dns"))
        hits_before = diff_engine.cache.hits
        second = payload_to_json(diff_engine.top(5, "impact", "dns"))
        assert diff_engine.cache.hits > hits_before
        assert first == second


class TestOutagePredictionCrossCheck:
    def test_whatif_union_equals_outage_predict(
        self, diff_world, diff_engine, diff_snapshot
    ):
        """``outage --predict``'s victim set must equal the union of the
        engine's per-nameserver-base what-if ``down`` sets — the third
        independent derivation of the same §2.2 semantics."""
        from repro.names.registrable import registrable_domain

        checked = 0
        for key in sorted(diff_world.spec.dns_providers):
            provider = diff_world.spec.dns_providers[key]
            bases = sorted(
                {registrable_domain(ns) or ns for ns in provider.ns_domains}
            )
            union: set[str] = set()
            for base in bases:
                try:
                    union |= set(diff_engine.whatif(f"dns:{base}")["down"])
                except QueryError:
                    pass  # base never appeared as a provider in the data
            predicted = predicted_dns_victims(
                diff_snapshot, diff_world, key, critical_only=True
            )
            assert sorted(union) == predicted, key
            checked += 1
        assert checked >= 3  # the world must actually exercise providers


class TestCliJsonByteIdentity:
    """`repro query --json` output == slow-path JSON, byte for byte."""

    @pytest.fixture(scope="class")
    def store_path(self, diff_text, tmp_path_factory) -> str:
        path = tmp_path_factory.mktemp("diffcli") / "ds.rstore"
        path.write_bytes(compile_dataset_text(diff_text))
        return str(path)

    def _run(self, capsys, *argv: str) -> str:
        from repro.cli import main

        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_top_json(self, capsys, store_path, diff_snapshot, diff_block):
        out = self._run(
            capsys, "query", store_path,
            "--top", "5", "--mode", "impact", "--service", "dns", "--json",
        )
        slow = slow_top(diff_snapshot, diff_block, 5, "impact", "dns")
        assert out == json.dumps(slow, indent=1, sort_keys=True) + "\n"

    def test_site_json(self, capsys, store_path, diff_snapshot, diff_block):
        domain = diff_snapshot.websites[0].domain
        out = self._run(capsys, "query", store_path, "--site", domain, "--json")
        slow = slow_site(diff_snapshot, diff_block, domain)
        assert out == json.dumps(slow, indent=1, sort_keys=True) + "\n"

    def test_whatif_json(self, capsys, store_path, diff_snapshot, diff_block):
        node = diff_snapshot.graph.providers(ServiceType.DNS)[0]
        out = self._run(
            capsys, "query", store_path, "--whatif", str(node), "--json"
        )
        slow = slow_whatif(diff_snapshot, diff_block, node)
        assert out == json.dumps(slow, indent=1, sort_keys=True) + "\n"

    def test_dependents_json(
        self, capsys, store_path, diff_snapshot, diff_block
    ):
        node = diff_snapshot.graph.providers(ServiceType.CDN)[0]
        out = self._run(
            capsys, "query", store_path, "--dependents", str(node), "--json"
        )
        slow = slow_dependents(diff_snapshot, diff_block, node)
        assert out == json.dumps(slow, indent=1, sort_keys=True) + "\n"


class TestWorkerCountStoreIdentity:
    def test_stores_from_1_2_and_n_worker_checkpoints_match(self, tmp_path):
        """Checkpointed campaigns at different worker counts must compile
        to byte-identical stores (the CI query-differential job runs
        this at REPRO_ENGINE_WORKERS=4)."""
        config = WorldConfig(n_websites=DIFF_N, seed=DIFF_SEED)
        worker_counts = sorted({1, 2, WORKERS})
        blobs = []
        for workers in worker_counts:
            dataset = run_campaign(
                config,
                shards=4,
                workers=workers,
                checkpoint_dir=str(tmp_path / f"ckpt-{workers}"),
            )
            blobs.append(compile_dataset_text(dataset_to_json(dataset)))
        for blob in blobs[1:]:
            assert blob == blobs[0]


class TestHypothesisWorlds:
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n=st.integers(min_value=100, max_value=160),
        seed=st.integers(min_value=0, max_value=9999),
        limit=st.integers(min_value=20, max_value=60),
    )
    def test_generated_worlds_agree(self, n: int, seed: int, limit: int):
        world = build_world(WorldConfig(n_websites=n, seed=seed))
        text = dataset_to_json(MeasurementCampaign(world, limit=limit).run())
        snapshot = slow_snapshot(text)
        block = slow_store_block(text, snapshot)
        engine = QueryEngine(
            StoreReader.from_bytes(compile_dataset_text(text))
        )
        for service in ServiceType:
            for mode in ("impact", "concentration"):
                assert_bytes_equal(
                    engine.top(5, mode, service.value),
                    slow_top(snapshot, block, 5, mode, service.value),
                )
        for website in snapshot.websites:
            assert_bytes_equal(
                engine.site(website.domain),
                slow_site(snapshot, block, website.domain),
            )
        for node in snapshot.graph.providers():
            assert_bytes_equal(
                engine.whatif(str(node)), slow_whatif(snapshot, block, node)
            )
            assert_bytes_equal(
                engine.dependents(str(node)),
                slow_dependents(snapshot, block, node),
            )
