"""Rendering edge cases and world-pair consistency checks."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.artifacts import FigureArtifact, TableArtifact
from repro.analysis.render import render_figure, render_table
from repro.core.evolution import TrendRow
from repro.websim.url import join_url, parse_url


class TestRenderEdgeCases:
    def test_long_series_truncated(self):
        figure = FigureArtifact(id="f", title="t")
        figure.add_series("big", [(i, i) for i in range(50)])
        text = render_figure(figure)
        assert "..." in text

    def test_paper_only_stats_rendered(self):
        figure = FigureArtifact(id="f", title="t")
        figure.stats = {"a": 1}
        figure.paper_stats = {"a": 2, "b": 3}
        text = render_figure(figure)
        assert "(paper: 2)" in text
        assert "paper-only: b = 3" in text

    def test_figure_notes(self):
        figure = FigureArtifact(id="f", title="t", notes=["check this"])
        assert "note: check this" in render_figure(figure)

    def test_table_column_alignment(self):
        table = TableArtifact(id="t", title="x", columns=["col", "value"])
        table.add_row("short", 1)
        table.add_row("a much longer label", 22.5)
        lines = render_table(table).splitlines()
        header = next(l for l in lines if l.startswith("col"))
        first = next(l for l in lines if l.startswith("short"))
        assert header.index("value") == len(first[: first.index("1")])

    def test_trendrow_count_formatting(self):
        row = TrendRow(label="X to Y", count=3, total=10)
        assert row.formatted() == "X to Y: 3 (30.0%)"
        row_no_total = TrendRow(label="X", count=2)
        assert row_no_total.formatted() == "X: 2"

    def test_trendrow_signed_delta(self):
        row = TrendRow(label="Critical dependency", per_bucket={100: 4.7})
        assert "+4.7" in row.formatted()


class TestUrlJoinProperties:
    _path = st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789/._-", min_size=1, max_size=20
    )

    @given(_path)
    def test_root_relative_always_rooted(self, ref):
        base = parse_url("https://x.com/a/b")
        joined = join_url(base, "/" + ref.lstrip("/"))
        assert joined.host == "x.com"
        assert joined.path.startswith("/")

    @given(_path)
    def test_join_preserves_scheme_for_relative(self, ref):
        if "://" in ref:
            return
        base = parse_url("https://x.com/a/b")
        assert join_url(base, ref).scheme == "https"


class TestWorldPairConsistency:
    def test_shared_population(self, world_pair):
        world_2016, world_2020, churn = world_pair
        domains_2016 = {w.domain for w in world_2016.spec.websites}
        domains_2020 = {w.domain for w in world_2020.spec.websites}
        assert set(churn.survivors) == domains_2016 & domains_2020
        assert set(churn.dead) == domains_2016 - domains_2020
        assert set(churn.newcomers) == domains_2020 - domains_2016

    def test_years(self, world_pair):
        world_2016, world_2020, _ = world_pair
        assert world_2016.year == 2016
        assert world_2020.year == 2020

    def test_corner_sites_survive(self, world_pair):
        _, world_2020, churn = world_pair
        assert "twitter.com" in world_2020.spec.website_by_domain()
        assert "twitter.com" not in churn.dead

    def test_market_sizes_shift_with_year(self, world_pair):
        world_2016, world_2020, _ = world_pair
        assert len(world_2016.spec.cdns) == 47
        assert len(world_2020.spec.cdns) == 86
        assert len(world_2016.spec.cas) == 70
        assert len(world_2020.spec.cas) == 59
