"""Tests for the robustness score (the paper's proposed defense metric)."""

import pytest

from repro.failures import robustness_score, website_exposure


class TestRobustnessScore:
    def test_bounded(self, snapshot_2020):
        for website in snapshot_2020.websites[::31]:
            score = robustness_score(snapshot_2020, website.domain)
            assert 0.0 <= score.score <= 1.0

    def test_no_spofs_scores_one(self, snapshot_2020):
        safe = next(
            (
                w for w in snapshot_2020.websites
                if website_exposure(snapshot_2020, w.domain).critical_dependency_count == 0
            ),
            None,
        )
        if safe is None:
            pytest.skip("no fully-redundant website in this world")
        assert robustness_score(snapshot_2020, safe.domain).score == 1.0

    def test_more_spofs_score_lower(self, snapshot_2020):
        scored = [
            (
                website_exposure(snapshot_2020, w.domain).critical_dependency_count,
                robustness_score(snapshot_2020, w.domain).score,
            )
            for w in snapshot_2020.websites[::17]
        ]
        none = [s for count, s in scored if count == 0]
        many = [s for count, s in scored if count >= 3]
        if not none or not many:
            pytest.skip("need both safe and exposed websites")
        assert min(none) > max(many)

    def test_academia_reflects_its_chain(self, snapshot_2020):
        score = robustness_score(snapshot_2020, "academia.edu")
        assert score.direct_spofs >= 3
        assert score.transitive_spofs >= 1
        assert score.score < 0.5
        assert score.worst_provider  # some provider dominates

    def test_spof_counts_match_exposure(self, snapshot_2020):
        for website in snapshot_2020.websites[::43]:
            report = website_exposure(snapshot_2020, website.domain)
            score = robustness_score(snapshot_2020, website.domain)
            assert (
                score.direct_spofs + score.transitive_spofs
                == report.critical_dependency_count
            )


class TestStaplingWhatIf:
    def test_monotone_decrease(self, snapshot_2020):
        from repro.failures.whatif import stapling_adoption_whatif

        sweep = stapling_adoption_whatif(
            snapshot_2020, [0.17, 0.4, 0.7, 1.0]
        )
        rates = [critical for _, critical in sweep]
        assert rates == sorted(rates, reverse=True)

    def test_full_adoption_zeroes_criticality(self, snapshot_2020):
        from repro.failures.whatif import stapling_adoption_whatif

        (_, critical), = stapling_adoption_whatif(snapshot_2020, [1.0])
        assert critical == 0.0

    def test_current_rate_is_noop(self, snapshot_2020):
        from repro.failures.whatif import stapling_adoption_whatif

        https = snapshot_2020.https_websites
        current = sum(1 for w in https if w.ca.ocsp_stapled) / len(https)
        (_, critical), = stapling_adoption_whatif(snapshot_2020, [current])
        actual = sum(1 for w in https if w.ca.is_critical) / len(https)
        assert critical == pytest.approx(actual, abs=0.01)
