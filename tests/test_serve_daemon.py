"""Daemon mechanics: registry, limits, shedding, concurrency, drain.

The differential harness (test_serve_differential.py) proves the
*answers*; this file proves the *daemon* — the multi-store registry's
eviction accounting, the typed refusals at the HTTP boundary (411/413/
400/404/429/503), byte-stable behavior under an 8-thread hammer against
two stores, and graceful drain both in-process (kill mid-request) and
end-to-end (SIGTERM to a real ``repro serve`` subprocess).
"""

from __future__ import annotations

import contextlib
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading

import pytest

from repro import WorldConfig, build_world
from repro.measurement.io import dataset_to_json
from repro.measurement.runner import MeasurementCampaign
from repro.serve.client import (
    ClientTransportError,
    fetch_health,
    fetch_stats,
    request,
    send_batch,
    send_query,
)
from repro.serve.http import ReproServeDaemon
from repro.serve.protocol import BadRequestError, UnknownStoreError
from repro.serve.registry import StoreRegistry, parse_store_specs
from repro.serve.service import ServeService
from repro.store import compile_dataset_text

DAEMON_N = 100
DAEMON_SEED = 7


@pytest.fixture(scope="module")
def store_paths(tmp_path_factory) -> dict[str, str]:
    base = tmp_path_factory.mktemp("servedaemon")
    paths: dict[str, str] = {}
    for year in (2016, 2020):
        world = build_world(
            WorldConfig(n_websites=DAEMON_N, seed=DAEMON_SEED, year=year)
        )
        blob = compile_dataset_text(
            dataset_to_json(MeasurementCampaign(world).run())
        )
        path = base / f"y{year}.rstore"
        path.write_bytes(blob)
        paths[f"y{year}"] = str(path)
    return paths


@contextlib.contextmanager
def running(daemon: ReproServeDaemon):
    thread = threading.Thread(target=daemon.serve_forever)
    thread.start()
    try:
        yield daemon.address
    finally:
        daemon.request_drain()
        thread.join(10)
        daemon.server_close()
        assert not thread.is_alive()


# -- store specs --------------------------------------------------------------


class TestParseStoreSpecs:
    def test_bare_path_is_named_by_stem(self):
        assert parse_store_specs(["/data/y2016.rstore"]) == {
            "y2016": "/data/y2016.rstore"
        }
        assert parse_store_specs(["d.json"]) == {"d": "d.json"}

    def test_name_equals_path(self):
        assert parse_store_specs(["now=/tmp/a.rstore", "b.rstore"]) == {
            "now": "/tmp/a.rstore",
            "b": "b.rstore",
        }

    def test_duplicate_names_are_rejected(self):
        with pytest.raises(ValueError, match="duplicate store name"):
            parse_store_specs(["/a/ds.rstore", "/b/ds.rstore"])

    def test_empty_name_or_path_is_rejected(self):
        with pytest.raises(ValueError, match="bad store spec"):
            parse_store_specs(["=path"])
        with pytest.raises(ValueError, match="bad store spec"):
            parse_store_specs(["name="])

    def test_no_stores_is_rejected(self):
        with pytest.raises(ValueError, match="at least one store"):
            parse_store_specs([])


# -- registry -----------------------------------------------------------------


class TestStoreRegistry:
    def test_miss_then_hit_counters(self, store_paths):
        registry = StoreRegistry(store_paths)
        registry.acquire("y2016")
        registry.acquire("y2016")
        assert (registry.hits, registry.misses, registry.opens) == (1, 1, 1)

    def test_unknown_store_is_typed(self, store_paths):
        registry = StoreRegistry(store_paths)
        with pytest.raises(UnknownStoreError, match="unknown store"):
            registry.acquire("y1999")

    def test_holds_both_stores_under_a_roomy_cap(self, store_paths):
        sizes = {
            name: os.path.getsize(path)
            for name, path in store_paths.items()
        }
        registry = StoreRegistry(
            store_paths, max_mem_bytes=sum(sizes.values())
        )
        for name in store_paths:
            registry.acquire(name)
        stats = registry.stats()
        assert stats["open"] == 2
        assert stats["evictions"] == 0
        assert stats["mapped_bytes"] == sum(sizes.values())
        assert stats["mapped_bytes"] <= stats["max_mem_bytes"]

    def test_tight_cap_evicts_least_recently_queried(self, store_paths):
        sizes = {
            name: os.path.getsize(path)
            for name, path in store_paths.items()
        }
        registry = StoreRegistry(
            store_paths, max_mem_bytes=sum(sizes.values()) - 1
        )
        registry.acquire("y2016")
        registry.acquire("y2020")  # must evict y2016 to fit
        stats = registry.stats()
        assert stats["open"] == 1
        assert stats["evictions"] == 1
        assert stats["per_store"]["y2020"]["open"]
        assert not stats["per_store"]["y2016"]["open"]
        registry.acquire("y2016")  # reopens; y2020 becomes the victim
        assert registry.opens == 3
        assert registry.evictions == 2

    def test_store_bigger_than_cap_still_serves(self, store_paths):
        registry = StoreRegistry(store_paths, max_mem_bytes=1)
        entry = registry.acquire("y2016")
        assert entry.engine.reader.n_sites == DAEMON_N
        registry.acquire("y2020")
        assert registry.stats()["open"] == 1  # never more than the one

    def test_eviction_keeps_inflight_entry_usable(self, store_paths):
        """A request holding an evicted store finishes on the old mmap."""
        registry = StoreRegistry(store_paths, max_mem_bytes=1)
        held = registry.acquire("y2016")
        registry.acquire("y2020")  # evicts y2016 from the registry
        with held.lock:
            payload = held.engine.top(3, "impact", "dns")
        assert payload["query"]["kind"] == "top"

    def test_default_name(self, store_paths):
        single = dict(list(store_paths.items())[:1])
        assert StoreRegistry(single).default_name() == next(iter(single))
        assert StoreRegistry(store_paths).default_name() is None


# -- service envelopes --------------------------------------------------------


class TestServeService:
    def test_single_store_needs_no_name(self, store_paths):
        single = {"only": store_paths["y2020"]}
        service = ServeService(StoreRegistry(single))
        payload = service.answer({"query": {"kind": "top", "k": 2}})
        assert len(payload["results"]) == 2

    def test_multi_store_requires_a_name(self, store_paths):
        service = ServeService(StoreRegistry(store_paths))
        with pytest.raises(BadRequestError, match="'store' is required"):
            service.answer({"query": {"kind": "top"}})

    def test_batch_envelope_validation(self, store_paths):
        service = ServeService(StoreRegistry(store_paths), max_batch=2)
        with pytest.raises(BadRequestError, match="non-empty array"):
            service.answer_batch({"queries": []})
        with pytest.raises(BadRequestError, match="exceeds the limit"):
            service.answer_batch(
                {"queries": [{"store": "y2020", "query": {"kind": "top"}}] * 3}
            )

    def test_batch_per_item_errors_are_inline(self, store_paths):
        service = ServeService(StoreRegistry(store_paths))
        envelope = service.answer_batch(
            {
                "queries": [
                    {"store": "y2020", "query": {"kind": "top", "k": 1}},
                    {"store": "y1999", "query": {"kind": "top"}},
                    {"store": "y2020", "query": {"kind": "zap"}},
                    {"store": "y2020",
                     "query": {"kind": "site", "site": "nope.example"}},
                    "not-an-object",
                ]
            }
        )
        statuses = [result["status"] for result in envelope["results"]]
        assert statuses == [200, 404, 400, 404, 400]
        kinds = [
            result["error"]["type"]
            for result in envelope["results"]
            if "error" in result
        ]
        assert kinds == [
            "unknown-store", "bad-request", "unknown-name", "bad-request",
        ]

    def test_statz_counts_requests(self, store_paths):
        service = ServeService(StoreRegistry(store_paths))
        service.record("/v1/query", 200)
        service.record("/v1/query", 200)
        service.record("/v1/query", 404)
        stats = service.statz()
        assert stats["requests"][
            "requests{endpoint=/v1/query,status=200}"
        ] == 2
        assert stats["requests"][
            "requests{endpoint=/v1/query,status=404}"
        ] == 1
        assert stats["registry"]["stores"] == 2


# -- HTTP boundary ------------------------------------------------------------


def _raw_exchange(host: str, port: int, payload: bytes) -> bytes:
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


class TestHttpBoundary:
    @pytest.fixture()
    def daemon(self, store_paths):
        service = ServeService(StoreRegistry(store_paths))
        with running(
            ReproServeDaemon(service, max_body=2048)
        ) as address:
            yield address

    def test_health_and_statz(self, daemon):
        host, port = daemon
        status, body = fetch_health(host, port)
        assert status == 200
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["stores"] == ["y2016", "y2020"]
        status, body = fetch_stats(host, port)
        assert status == 200
        assert json.loads(body)["schema"] == "repro-serve/1"

    def test_missing_content_length_is_411(self, daemon):
        host, port = daemon
        response = _raw_exchange(
            host, port,
            b"POST /v1/query HTTP/1.1\r\n"
            b"Host: x\r\nConnection: close\r\n\r\n",
        )
        assert response.startswith(b"HTTP/1.1 411 ")
        assert b'"bad-request"' in response

    def test_oversized_body_is_413_and_closes(self, daemon):
        host, port = daemon
        response = _raw_exchange(
            host, port,
            b"POST /v1/query HTTP/1.1\r\n"
            b"Host: x\r\nContent-Length: 999999\r\n\r\n",
        )
        assert response.startswith(b"HTTP/1.1 413 ")

    def test_non_json_body_is_400(self, daemon):
        host, port = daemon
        response = _raw_exchange(
            host, port,
            b"POST /v1/query HTTP/1.1\r\n"
            b"Host: x\r\nContent-Length: 9\r\n"
            b"Connection: close\r\n\r\nnot json!",
        )
        assert response.startswith(b"HTTP/1.1 400 ")

    def test_unknown_endpoints_are_404(self, daemon):
        host, port = daemon
        status, body = request(host, port, "GET", "/nope")
        assert status == 404
        status, body = request(host, port, "POST", "/v2/query", {"a": 1})
        assert status == 404

    def test_unknown_store_is_404(self, daemon):
        host, port = daemon
        status, body = send_query(
            host, port, {"kind": "top"}, store="y1999"
        )
        assert status == 404
        assert json.loads(body)["error"]["type"] == "unknown-store"

    def test_blown_deadline_is_503(self, store_paths):
        service = ServeService(StoreRegistry(store_paths))
        with running(
            ReproServeDaemon(service, deadline_s=1e-9)
        ) as (host, port):
            status, body = send_query(
                host, port, {"kind": "top"}, store="y2020"
            )
            assert status == 503
            assert json.loads(body)["error"]["type"] == "deadline"

    def test_draining_daemon_sheds_with_503(self, store_paths):
        service = ServeService(StoreRegistry(store_paths))
        daemon = ReproServeDaemon(service)
        with running(daemon) as (host, port):
            daemon.draining.set()  # flag only: accept loop still alive
            status, body = send_query(
                host, port, {"kind": "top"}, store="y2020"
            )
            assert status == 503
            assert json.loads(body)["error"]["type"] == "draining"


class _GatedService(ServeService):
    """Blocks every answer until released — for 429 and drain tests."""

    def __init__(self, registry: StoreRegistry) -> None:
        super().__init__(registry)
        self.entered = threading.Event()
        self.release = threading.Event()

    def answer(self, req):
        self.entered.set()
        assert self.release.wait(20), "gated request never released"
        return super().answer(req)


class TestLoadShedding:
    def test_inflight_bound_sheds_with_429(self, store_paths):
        service = _GatedService(StoreRegistry(store_paths))
        daemon = ReproServeDaemon(service, max_inflight=1)
        with running(daemon) as (host, port):
            results: list[tuple[int, bytes]] = []

            def slow_request():
                results.append(
                    send_query(host, port, {"kind": "top"}, store="y2020")
                )

            blocker = threading.Thread(target=slow_request)
            blocker.start()
            assert service.entered.wait(10)
            status, body = send_query(
                host, port, {"kind": "top"}, store="y2020"
            )
            assert status == 429
            assert json.loads(body)["error"]["type"] == "overloaded"
            service.release.set()
            blocker.join(10)
            assert results[0][0] == 200


# -- the 8-thread hammer ------------------------------------------------------


class TestConcurrentHammer:
    def test_eight_threads_two_stores_byte_identical(self, store_paths):
        """8 client threads hammer /v1/batch with interleaved two-store
        requests; every concurrent response must equal the serial one."""
        service = ServeService(StoreRegistry(store_paths))
        with running(ReproServeDaemon(service)) as (host, port):
            requests = []
            for k in range(1, 7):
                requests.append([
                    {"store": "y2016",
                     "query": {"kind": "top", "k": k, "service": "dns"}},
                    {"store": "y2020",
                     "query": {"kind": "top", "k": k, "service": "cdn"}},
                    {"store": "y2020",
                     "query": {"kind": "top", "k": k, "mode":
                               "concentration", "service": "ca"}},
                ])
            serial = [
                send_batch(host, port, [dict(i) for i in req])
                for req in requests
            ]
            assert all(status == 200 for status, _ in serial)

            failures: list[str] = []
            rounds = 5

            def hammer(thread_index: int) -> None:
                for round_index in range(rounds):
                    for req_index, req in enumerate(requests):
                        status, body = send_batch(
                            host, port, [dict(i) for i in req]
                        )
                        if (status, body) != serial[req_index]:
                            failures.append(
                                f"thread {thread_index} round {round_index} "
                                f"request {req_index}: {status} {body!r:.200}"
                            )

            threads = [
                threading.Thread(target=hammer, args=(index,))
                for index in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120)
            assert failures == []

    def test_hammer_under_memory_pressure(self, store_paths):
        """Same two-store hammer with a cap that fits only one store, so
        every alternation evicts — answers must still be byte-stable."""
        sizes = [os.path.getsize(path) for path in store_paths.values()]
        registry = StoreRegistry(store_paths, max_mem_bytes=max(sizes))
        service = ServeService(registry)
        with running(ReproServeDaemon(service)) as (host, port):
            queries = [
                ({"kind": "top", "k": 3}, "y2016"),
                ({"kind": "top", "k": 3}, "y2020"),
            ]
            serial = [
                send_query(host, port, dict(query), store=store)
                for query, store in queries
            ]
            mismatches: list[int] = []

            def hammer() -> None:
                for _ in range(10):
                    for index, (query, store) in enumerate(queries):
                        got = send_query(
                            host, port, dict(query), store=store
                        )
                        if got != serial[index]:
                            mismatches.append(index)

            threads = [
                threading.Thread(target=hammer) for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120)
            assert mismatches == []
            assert registry.evictions > 0  # the cap actually bit
            assert registry.stats()["open"] == 1


# -- drain --------------------------------------------------------------------


class TestGracefulDrain:
    def test_kill_mid_request_finishes_inflight(self, store_paths):
        """request_drain() while a request is in flight: the in-flight
        answer completes (200), new work is refused, and the server
        thread exits once the handler finishes."""
        service = _GatedService(StoreRegistry(store_paths))
        daemon = ReproServeDaemon(service)
        thread = threading.Thread(target=daemon.serve_forever)
        thread.start()
        host, port = daemon.address
        inflight: list[tuple[int, bytes]] = []

        def slow_request():
            inflight.append(
                send_query(host, port, {"kind": "top"}, store="y2020")
            )

        requester = threading.Thread(target=slow_request)
        requester.start()
        assert service.entered.wait(10)
        daemon.request_drain()
        # New work is refused: 503 on a raced-in connection, or the
        # accept loop is already gone and the connect itself fails.
        try:
            status, body = send_query(
                host, port, {"kind": "top"}, store="y2020", timeout=5
            )
            assert status == 503
            assert json.loads(body)["error"]["type"] == "draining"
        except ClientTransportError:
            pass
        service.release.set()
        requester.join(20)
        thread.join(20)
        daemon.server_close()
        assert inflight and inflight[0][0] == 200
        assert not thread.is_alive()

    def test_sigterm_drains_a_real_daemon(self, store_paths):
        """End to end: ``repro serve`` subprocess answers a query, gets
        SIGTERM, and exits 0 after announcing the drain."""
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo_root, "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                *(f"{name}={path}" for name, path in store_paths.items()),
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
            cwd=repo_root,
        )
        try:
            announce = proc.stderr.readline()
            match = re.search(r"http://([^:]+):(\d+)", announce)
            assert match, announce
            host, port = match.group(1), int(match.group(2))
            status, body = send_query(
                host, port, {"kind": "top", "k": 2}, store="y2020"
            )
            assert status == 200
            proc.send_signal(signal.SIGTERM)
            remaining = proc.stderr.read()
            assert proc.wait(timeout=30) == 0
            assert "drained" in remaining
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(10)
