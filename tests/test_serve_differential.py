"""The serve differential harness: daemon bytes == one-shot CLI bytes.

The daemon's whole value proposition is "the same answers, without the
process startup" — so every answer it produces must be *byte-identical*
to ``repro query --json`` against the same store. The reference here is
a direct :class:`QueryEngine` over the same ``.rstore`` file, which the
query differential harness already proves byte-identical to the batch
pipeline and to the CLI; this file closes the remaining hop over HTTP.

Coverage on a fixed two-epoch world (n=120, seed=17, years 2016/2020):

* every site, every provider (dependents + whatif), and every
  service x mode top-K — one HTTP round-trip each,
* the same full query set pushed through the **batch** endpoint in
  chunks, asserting each item's embedded payload re-renders to the
  reference bytes,
* the **diff** endpoint's ``a``/``b`` halves against each epoch's
  reference engine, plus structural checks on the delta block,
* the in-process CLI: ``repro query --json`` stdout equals the daemon
  response body plus the trailing newline.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import WorldConfig, build_world
from repro.measurement.io import dataset_to_json
from repro.measurement.runner import MeasurementCampaign
from repro.query import QueryEngine, QueryError, payload_to_json
from repro.serve.client import send_batch, send_diff, send_query
from repro.serve.http import ReproServeDaemon
from repro.serve.registry import StoreRegistry
from repro.serve.service import ServeService
from repro.store import StoreReader, compile_dataset_text
from repro.store.format import SERVICE_CODES
from repro.store.reader import METRIC_COLUMNS

DIFF_N = 120
DIFF_SEED = 17
YEARS = (2016, 2020)


def canonical(payload: dict) -> str:
    """The exact rendering ``repro query --json`` prints (sans newline)."""
    return json.dumps(payload, indent=1, sort_keys=True)


# -- fixtures: two epoch stores behind one daemon ----------------------------


@pytest.fixture(scope="module")
def store_paths(tmp_path_factory) -> dict[str, str]:
    base = tmp_path_factory.mktemp("servediff")
    paths: dict[str, str] = {}
    for year in YEARS:
        world = build_world(
            WorldConfig(n_websites=DIFF_N, seed=DIFF_SEED, year=year)
        )
        blob = compile_dataset_text(
            dataset_to_json(MeasurementCampaign(world).run())
        )
        path = base / f"y{year}.rstore"
        path.write_bytes(blob)
        paths[f"y{year}"] = str(path)
    return paths


@pytest.fixture(scope="module")
def engines(store_paths) -> dict[str, QueryEngine]:
    """Reference engines — the proven ``repro query --json`` fast path."""
    return {
        name: QueryEngine(StoreReader.load(path))
        for name, path in store_paths.items()
    }


@pytest.fixture(scope="module")
def daemon(store_paths):
    registry = StoreRegistry(store_paths)
    server = ReproServeDaemon(ServeService(registry))
    thread = threading.Thread(target=server.serve_forever)
    thread.start()
    try:
        yield server.address
    finally:
        server.request_drain()
        thread.join(10)
        server.server_close()


def every_query(engine: QueryEngine) -> list[dict]:
    """Every question the one-shot CLI can ask of this store."""
    reader = engine.reader
    queries: list[dict] = []
    for service in SERVICE_CODES:
        for mode in METRIC_COLUMNS:
            for k in (1, 5, 10_000):
                queries.append(
                    {"kind": "top", "k": k, "mode": mode, "service": service}
                )
    for site in range(reader.n_sites):
        queries.append({"kind": "site", "site": reader.site_domain(site)})
    for provider in range(reader.n_providers):
        key = reader.provider_key(provider)
        queries.append({"kind": "dependents", "provider": key})
        queries.append({"kind": "whatif", "provider": key})
    return queries


def reference_bytes(engine: QueryEngine, query: dict) -> str:
    if query["kind"] == "top":
        payload = engine.top(query["k"], query["mode"], query["service"])
    elif query["kind"] == "site":
        payload = engine.site(query["site"])
    elif query["kind"] == "dependents":
        payload = engine.dependents(query["provider"])
    else:
        payload = engine.whatif(query["provider"])
    return payload_to_json(payload)


# -- single-query byte identity ----------------------------------------------


class TestSingleQueryByteIdentity:
    @pytest.mark.parametrize("store", [f"y{year}" for year in YEARS])
    def test_every_question_both_epochs(self, daemon, engines, store):
        host, port = daemon
        engine = engines[store]
        checked = 0
        for query in every_query(engine):
            status, body = send_query(host, port, query, store=store)
            assert status == 200, body
            assert body.decode("utf-8") == reference_bytes(engine, query)
            checked += 1
        assert checked > 2 * DIFF_N  # sites twice over plus tops

    def test_store_block_pins_the_epoch(self, daemon, engines):
        """The two stores really are different epochs — the store block
        (and thus the answer bytes) must differ between them."""
        host, port = daemon
        years = set()
        for store, engine in engines.items():
            status, body = send_query(
                host, port, {"kind": "top", "k": 5}, store=store
            )
            assert status == 200
            years.add(json.loads(body)["store"]["year"])
        assert years == set(YEARS)


# -- batch byte identity ------------------------------------------------------


class TestBatchByteIdentity:
    def test_full_query_set_in_chunks(self, daemon, engines):
        """Everything single-query answered, again through /v1/batch —
        interleaving both stores so the per-store vectorization and the
        registry recency path are both exercised."""
        host, port = daemon
        items = []
        for store, engine in engines.items():
            items.extend(
                {"store": store, "query": query}
                for query in every_query(engine)
            )
        # Interleave the two stores' questions deterministically.
        items.sort(key=lambda item: canonical(item))
        chunk_size = 200
        for start in range(0, len(items), chunk_size):
            chunk = items[start : start + chunk_size]
            status, body = send_batch(
                host, port, [dict(item) for item in chunk]
            )
            assert status == 200, body
            envelope = json.loads(body)
            assert envelope["schema"] == "repro-serve/1"
            assert len(envelope["results"]) == len(chunk)
            for item, result in zip(chunk, envelope["results"]):
                assert result["status"] == 200, (item, result)
                assert canonical(result["payload"]) == reference_bytes(
                    engines[item["store"]], item["query"]
                )

    def test_batch_and_single_agree(self, daemon):
        host, port = daemon
        query = {"kind": "top", "k": 3, "mode": "impact", "service": "cdn"}
        _, single = send_query(host, port, query, store="y2020")
        _, batch = send_batch(
            host, port, [{"store": "y2020", "query": query}]
        )
        embedded = json.loads(batch)["results"][0]["payload"]
        assert canonical(embedded) == single.decode("utf-8")


# -- diff-endpoint halves -----------------------------------------------------


class TestDiffHalvesByteIdentity:
    def _diff(self, daemon, query: dict) -> dict:
        host, port = daemon
        status, body = send_diff(host, port, "y2016", "y2020", query)
        assert status == 200, body
        return json.loads(body)

    def test_top_halves_and_rank_deltas(self, daemon, engines):
        for mode in METRIC_COLUMNS:
            for service in SERVICE_CODES:
                query = {
                    "kind": "top", "k": 10, "mode": mode, "service": service,
                }
                envelope = self._diff(daemon, query)
                assert canonical(envelope["a"]) == reference_bytes(
                    engines["y2016"], query
                )
                assert canonical(envelope["b"]) == reference_bytes(
                    engines["y2020"], query
                )
                ranks_a = {
                    e["provider"]: i
                    for i, e in enumerate(envelope["a"]["results"], start=1)
                }
                ranks_b = {
                    e["provider"]: i
                    for i, e in enumerate(envelope["b"]["results"], start=1)
                }
                delta = envelope["delta"]
                assert delta["kind"] == "top"
                seen = {entry["provider"] for entry in delta["providers"]}
                assert seen == set(ranks_a) | set(ranks_b)
                for entry in delta["providers"]:
                    assert entry["rank_a"] == ranks_a.get(entry["provider"])
                    assert entry["rank_b"] == ranks_b.get(entry["provider"])
                    if entry["rank_a"] is None or entry["rank_b"] is None:
                        assert entry["rank_delta"] is None
                    else:
                        assert entry["rank_delta"] == (
                            entry["rank_a"] - entry["rank_b"]
                        )

    def test_lookup_halves_for_common_names(self, daemon, engines):
        """Sites/providers present in both epochs: halves byte-identical,
        set deltas consistent with the halves."""
        reader_a = engines["y2016"].reader
        reader_b = engines["y2020"].reader
        sites_b = {
            reader_b.site_domain(i) for i in range(reader_b.n_sites)
        }
        common_sites = sorted(
            domain
            for domain in (
                reader_a.site_domain(i) for i in range(reader_a.n_sites)
            )
            if domain in sites_b
        )
        assert common_sites  # same population, same seed
        for domain in common_sites[:20]:
            query = {"kind": "site", "site": domain}
            envelope = self._diff(daemon, query)
            assert canonical(envelope["a"]) == reference_bytes(
                engines["y2016"], query
            )
            assert canonical(envelope["b"]) == reference_bytes(
                engines["y2020"], query
            )
            deps = envelope["delta"]["dependencies"]
            providers_a = {
                d["provider"] for d in envelope["a"]["site"]["dependencies"]
            }
            providers_b = {
                d["provider"] for d in envelope["b"]["site"]["dependencies"]
            }
            assert set(deps["gained"]) == providers_b - providers_a
            assert set(deps["lost"]) == providers_a - providers_b

        keys_b = {
            reader_b.provider_key(i) for i in range(reader_b.n_providers)
        }
        common_keys = sorted(
            key
            for key in (
                reader_a.provider_key(i)
                for i in range(reader_a.n_providers)
            )
            if key in keys_b
        )
        assert common_keys
        for key in common_keys[:10]:
            query = {"kind": "whatif", "provider": key}
            envelope = self._diff(daemon, query)
            assert canonical(envelope["a"]) == reference_bytes(
                engines["y2016"], query
            )
            assert canonical(envelope["b"]) == reference_bytes(
                engines["y2020"], query
            )
            down = envelope["delta"]["down"]
            assert down["count_a"] == len(envelope["a"]["down"])
            assert down["count_b"] == len(envelope["b"]["down"])

    def test_diff_half_name_miss_is_typed(self, daemon):
        host, port = daemon
        status, body = send_diff(
            host, port, "y2016", "y2020",
            {"kind": "site", "site": "no-such-site.example"},
        )
        assert status == 404
        assert json.loads(body)["error"]["type"] == "unknown-name"


# -- the CLI hop --------------------------------------------------------------


class TestCliByteIdentity:
    def test_query_json_stdout_equals_daemon_body(
        self, daemon, store_paths, engines, capsys
    ):
        """``repro query --json`` prints exactly the daemon's response
        body plus the trailing newline — the whole contract, end to end."""
        from repro.cli import main

        host, port = daemon
        reader = engines["y2020"].reader
        provider = reader.provider_key(0)
        for flags, query in (
            (
                ["--top", "7", "--mode", "concentration", "--service", "cdn"],
                {
                    "kind": "top", "k": 7,
                    "mode": "concentration", "service": "cdn",
                },
            ),
            (
                ["--site", reader.site_domain(0)],
                {"kind": "site", "site": reader.site_domain(0)},
            ),
            (
                ["--whatif", provider],
                {"kind": "whatif", "provider": provider},
            ),
            (
                ["--dependents", provider],
                {"kind": "dependents", "provider": provider},
            ),
        ):
            assert main(
                ["query", store_paths["y2020"], *flags, "--json"]
            ) == 0
            out = capsys.readouterr().out
            status, body = send_query(host, port, query, store="y2020")
            assert status == 200
            assert out == body.decode("utf-8") + "\n"

    def test_reference_engine_rejects_what_the_daemon_rejects(
        self, daemon, engines
    ):
        """A name the engine raises on must come back as a typed 404,
        never a 500 — the error taxonomies stay aligned."""
        host, port = daemon
        with pytest.raises(QueryError):
            engines["y2020"].site("no-such-site.example")
        status, body = send_query(
            host, port,
            {"kind": "site", "site": "no-such-site.example"},
            store="y2020",
        )
        assert status == 404
        assert json.loads(body)["error"]["type"] == "unknown-name"
