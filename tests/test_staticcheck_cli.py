"""End-to-end tests for ``repro lint`` against the on-disk corpus.

``tests/staticcheck_corpus/bad`` is a miniature ``repro`` package tree
with at least one violation per rule; ``.../good`` mirrors it with the
compliant version of each pattern (plus one justified suppression).
"""

import json
from pathlib import Path

from repro.cli import main
from repro.staticcheck.report import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    JSON_REPORT_VERSION,
)

CORPUS = Path(__file__).parent / "staticcheck_corpus"
BAD = str(CORPUS / "bad")
GOOD = str(CORPUS / "good")


class TestCorpus:
    def test_bad_corpus_fails_with_accurate_locations(self, capsys):
        assert main(["lint", BAD]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        # Every rule in the pack must fire at least once.
        for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
            assert rule_id in out
        # Findings carry path:line:col anchors into the corpus.
        assert "bad/repro/dnssim/wallclock.py:11:" in out
        assert "bad/repro/engine/workers.py:" in out

    def test_good_corpus_is_clean_with_one_suppression(self, capsys):
        assert main(["lint", GOOD]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "0 finding(s), 1 suppressed" in out

    def test_json_report_over_bad_corpus(self, capsys):
        assert main(["lint", "--format", "json", BAD]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == JSON_REPORT_VERSION
        assert payload["exit_code"] == EXIT_FINDINGS
        for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
            assert payload["counts"][rule_id] >= 1, rule_id
        assert payload["files_checked"] == len(
            list((CORPUS / "bad").rglob("*.py"))
        )
        for finding in payload["findings"]:
            assert Path(finding["path"]).exists()
            assert finding["line"] >= 1

    def test_rule_selection_narrows_the_run(self, capsys):
        assert main(
            ["lint", "--rules", "REP003", "--format", "json", BAD]
        ) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["REP003"] >= 1
        assert all(f["rule"] == "REP003" for f in payload["findings"])

    def test_single_file_paths_work(self, capsys):
        bad_file = str(CORPUS / "bad" / "repro" / "measurement" / "emit.py")
        assert main(["lint", bad_file]) == EXIT_FINDINGS
        assert "REP002" in capsys.readouterr().out


class TestUsageErrors:
    def test_unknown_rule_id_is_a_usage_error(self, capsys):
        assert main(["lint", "--rules", "REP999", BAD]) == EXIT_USAGE
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_is_a_usage_error(self, capsys):
        assert main(["lint", "does/not/exist"]) == EXIT_USAGE
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
            assert rule_id in out
