"""End-to-end tests for ``repro lint`` against the on-disk corpus.

``tests/staticcheck_corpus/bad`` is a miniature ``repro`` package tree
with at least one violation per rule; ``.../good`` mirrors it with the
compliant version of each pattern (plus justified suppressions).
"""

import json
from pathlib import Path

from repro.cli import main
from repro.staticcheck.report import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    JSON_REPORT_VERSION,
    SARIF_VERSION,
)
from repro.staticcheck.rules import rule_ids

CORPUS = Path(__file__).parent / "staticcheck_corpus"
BAD = str(CORPUS / "bad")
GOOD = str(CORPUS / "good")

ALL_IDS = tuple(rule_ids())


class TestCorpus:
    def test_bad_corpus_fails_with_accurate_locations(self, capsys):
        assert main(["lint", BAD]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        # Every rule in the pack must fire at least once.
        for rule_id in ALL_IDS:
            assert rule_id in out, rule_id
        # Findings carry path:line:col anchors into the corpus.
        assert "bad/repro/dnssim/wallclock.py:11:" in out
        assert "bad/repro/engine/workers.py:" in out

    def test_good_corpus_is_clean_with_suppressions(self, capsys):
        assert main(["lint", GOOD]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "0 finding(s), 2 suppressed" in out

    def test_json_report_over_bad_corpus(self, capsys):
        assert main(["lint", "--format", "json", BAD]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == JSON_REPORT_VERSION
        assert payload["exit_code"] == EXIT_FINDINGS
        for rule_id in ALL_IDS:
            assert payload["counts"][rule_id] >= 1, rule_id
        assert payload["files_checked"] == len(
            list((CORPUS / "bad").rglob("*.py"))
        )
        for finding in payload["findings"]:
            assert Path(finding["path"]).exists()
            assert finding["line"] >= 1

    def test_rule_selection_narrows_the_run(self, capsys):
        assert main(
            ["lint", "--rules", "REP003", "--format", "json", BAD]
        ) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["REP003"] >= 1
        assert all(f["rule"] == "REP003" for f in payload["findings"])

    def test_single_file_paths_work(self, capsys):
        bad_file = str(CORPUS / "bad" / "repro" / "measurement" / "emit.py")
        assert main(["lint", bad_file]) == EXIT_FINDINGS
        assert "REP002" in capsys.readouterr().out

    def test_taint_flow_only_rep007_catches_laundered_wallclock(self, capsys):
        """The acceptance case: ``repro.telemetry.profile`` may read the
        wall clock (REP001/REP006 allow it), but laundering the value
        through locals into ``to_dict`` is caught — by REP007 alone,
        with a full source-to-sink witness path."""
        profile = str(CORPUS / "bad" / "repro" / "telemetry" / "profile.py")
        assert main(["lint", "--format", "json", profile]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == {"REP007"}
        message = payload["findings"][0]["message"]
        assert "time.time()" in message
        assert "sink line" in message
        assert " -> " in message


class TestSarif:
    def test_sarif_format_is_valid_2_1_0(self, capsys):
        assert main(["lint", "--format", "sarif", BAD]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == SARIF_VERSION
        assert "sarif-2.1.0" in payload["$schema"]
        (run,) = payload["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-staticcheck"
        assert [r["id"] for r in driver["rules"]] == list(ALL_IDS)
        assert run["results"], "bad corpus must produce SARIF results"
        for result in run["results"]:
            assert result["level"] == "error"
            (loc,) = result["locations"]
            region = loc["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1  # SARIF columns are 1-based

    def test_sarif_carries_suppressions(self, capsys):
        assert main(["lint", "--format", "sarif", GOOD]) == EXIT_CLEAN
        payload = json.loads(capsys.readouterr().out)
        (run,) = payload["runs"]
        suppressed = [r for r in run["results"] if "suppressions" in r]
        assert len(suppressed) == 2
        for result in suppressed:
            (sup,) = result["suppressions"]
            assert sup["kind"] == "inSource"
            assert sup["justification"]

    def test_text_json_sarif_agree_on_findings(self, capsys):
        """The three renderers are views of one result: same finding
        count, same rule ids, same locations."""
        assert main(["lint", "--format", "json", BAD]) == EXIT_FINDINGS
        json_payload = json.loads(capsys.readouterr().out)
        assert main(["lint", "--format", "sarif", BAD]) == EXIT_FINDINGS
        sarif_payload = json.loads(capsys.readouterr().out)
        assert main(["lint", BAD]) == EXIT_FINDINGS
        text = capsys.readouterr().out

        json_keys = sorted(
            (f["path"], f["line"], f["rule"]) for f in json_payload["findings"]
        )
        sarif_results = sarif_payload["runs"][0]["results"]
        sarif_keys = sorted(
            (
                r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"],
                r["locations"][0]["physicalLocation"]["region"]["startLine"],
                r["ruleId"],
            )
            for r in sarif_results
            if "suppressions" not in r
        )
        assert json_keys == sarif_keys
        assert f"{len(json_keys)} finding(s)" in text
        for path, line, rule in json_keys:
            assert f"{path}:{line}:" in text

    def test_sarif_side_file(self, capsys, tmp_path):
        out_path = tmp_path / "lint.sarif"
        assert main(["lint", "--sarif", str(out_path), GOOD]) == EXIT_CLEAN
        payload = json.loads(out_path.read_text())
        assert payload["version"] == SARIF_VERSION
        # stdout still got the text report
        assert "0 finding(s)" in capsys.readouterr().out


class TestIncrementalCache:
    def test_warm_cache_reparses_zero_files(self, capsys, tmp_path):
        cache = str(tmp_path / "cache.json")
        assert main(
            ["lint", "--cache", cache, "--format", "json", GOOD]
        ) == EXIT_CLEAN
        cold = json.loads(capsys.readouterr().out)
        assert cold["reparsed_files"] == cold["files_checked"]
        assert cold["cached_files"] == 0

        assert main(
            ["lint", "--cache", cache, "--format", "json", GOOD]
        ) == EXIT_CLEAN
        warm = json.loads(capsys.readouterr().out)
        assert warm["reparsed_files"] == 0
        assert warm["cached_files"] == warm["files_checked"]
        # Identical verdict either way.
        assert warm["counts"] == cold["counts"]
        assert warm["suppressed"] == cold["suppressed"]

    def test_cache_invalidated_by_content_change(self, capsys, tmp_path):
        tree = tmp_path / "pkg"
        tree.mkdir()
        target = tree / "mod.py"
        target.write_text('"""Fixture."""\n\nX = 1\n')
        cache = str(tmp_path / "cache.json")
        assert main(["lint", "--cache", cache, str(tree)]) == EXIT_CLEAN
        capsys.readouterr()

        target.write_text('"""Fixture."""\n\nimport time\nX = time.time()\n')
        assert main(["lint", "--cache", cache, str(tree)]) == EXIT_FINDINGS
        assert "REP001" in capsys.readouterr().out

    def test_cache_invalidated_by_config_change(self, capsys, tmp_path):
        cache = str(tmp_path / "cache.json")
        assert main(["lint", "--cache", cache, GOOD]) == EXIT_CLEAN
        capsys.readouterr()
        # A different rule selection is a different config fingerprint:
        # the cached all-rules verdicts must not answer this run.
        assert main(
            ["lint", "--cache", cache, "--rules", "REP001", "--format",
             "json", GOOD]
        ) == EXIT_CLEAN
        payload = json.loads(capsys.readouterr().out)
        assert payload["reparsed_files"] == payload["files_checked"]


class TestParallel:
    def test_jobs_output_is_byte_identical(self, capsys):
        assert main(["lint", "--jobs", "1", BAD]) == EXIT_FINDINGS
        serial = capsys.readouterr().out
        assert main(["lint", "--jobs", "4", BAD]) == EXIT_FINDINGS
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_jobs_json_identical_over_good(self, capsys):
        assert main(["lint", "--jobs", "1", "--format", "json", GOOD]) == EXIT_CLEAN
        serial = capsys.readouterr().out
        assert main(["lint", "--jobs", "3", "--format", "json", GOOD]) == EXIT_CLEAN
        assert capsys.readouterr().out == serial


class TestFix:
    def test_fix_rewrites_set_iteration_and_pop_front(self, capsys, tmp_path):
        tree = tmp_path / "pkg"
        tree.mkdir()
        target = tree / "mod.py"
        target.write_text(
            '"""Fixture."""\n'
            "\n"
            "\n"
            "def order(items: set) -> list:\n"
            "    out = []\n"
            "    for item in items:\n"
            "        out.append(item)\n"
            "    return out\n"
            "\n"
            "\n"
            "def drainq() -> int:\n"
            "    queue = [3, 1, 2]\n"
            "    total = 0\n"
            "    while queue:\n"
            "        total += queue.pop(0)\n"
            "    return total\n"
        )
        assert main(["lint", "--fix", str(tree)]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "fixed" in out
        fixed = target.read_text()
        assert "for item in sorted(items):" in fixed
        assert "from collections import deque" in fixed
        assert "queue = deque([3, 1, 2])" in fixed
        assert "queue.popleft()" in fixed
        assert ".pop(0)" not in fixed
        # The fixed file must actually run and behave identically.
        namespace: dict = {}
        exec(compile(fixed, "mod.py", "exec"), namespace)
        assert namespace["order"]({"b", "a"}) == ["a", "b"]
        assert namespace["drainq"]() == 6

    def test_fix_is_a_noop_on_clean_trees(self, capsys, tmp_path):
        tree = tmp_path / "pkg"
        tree.mkdir()
        source = '"""Fixture."""\n\nX = 1\n'
        target = tree / "mod.py"
        target.write_text(source)
        assert main(["lint", "--fix", str(tree)]) == EXIT_CLEAN
        assert "fixed 0 finding(s)" in capsys.readouterr().out
        assert target.read_text() == source


class TestUsageErrors:
    def test_unknown_rule_id_is_a_usage_error(self, capsys):
        assert main(["lint", "--rules", "REP999", BAD]) == EXIT_USAGE
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_is_a_usage_error(self, capsys):
        assert main(["lint", "does/not/exist"]) == EXIT_USAGE
        assert "no such path" in capsys.readouterr().err

    def test_bad_jobs_is_a_usage_error(self, capsys):
        assert main(["lint", "--jobs", "0", BAD]) == EXIT_USAGE
        assert "--jobs" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_IDS:
            assert rule_id in out
