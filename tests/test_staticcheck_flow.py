"""Unit tests for ``repro.staticcheck.flow`` — the CFG builder, the
fixed-point solver, the taint lattice, and the module call graph."""

import ast
import textwrap

from repro.staticcheck.flow import (
    CFG,
    ReachingDefinitions,
    TaintAnalysis,
    build_call_graph,
    build_cfg,
    function_cfgs,
    solve_forward,
)
from repro.staticcheck.rules.base import import_table


def parse(source):
    return ast.parse(textwrap.dedent(source))


def cfg_for_function(source, name=None):
    tree = parse(source)
    for scope, cfg in function_cfgs(tree):
        if name is None or scope.name == name:
            return cfg
    raise AssertionError(f"no function {name!r} in source")


def taint_for(source, name=None):
    tree = parse(source)
    cfg = cfg_for_function(source, name)
    return TaintAnalysis(cfg, import_table(tree)).run()


def node_at_line(cfg, line):
    for node in cfg.statements():
        if node.stmt is not None and node.stmt.lineno == line:
            return node
    raise AssertionError(f"no CFG node at line {line}")


class TestCFG:
    def test_straight_line_is_a_chain(self):
        cfg = build_cfg(parse("a = 1\nb = 2\nc = 3\n"))
        statements = list(cfg.statements())
        assert len(statements) == 3
        assert statements[0].succs == [statements[1].index]
        assert statements[1].succs == [statements[2].index]
        assert CFG.EXIT in statements[2].succs

    def test_if_else_branches_rejoin(self):
        cfg = build_cfg(
            parse("if cond:\n    a = 1\nelse:\n    a = 2\nafter = a\n")
        )
        test_node = node_at_line(cfg, 1)
        after = node_at_line(cfg, 5)
        assert len(test_node.succs) == 2
        # Both branch bodies flow into the statement after the if.
        assert sorted(after.preds) == sorted(
            [node_at_line(cfg, 2).index, node_at_line(cfg, 4).index]
        )

    def test_while_loop_has_back_edge(self):
        cfg = build_cfg(parse("while cond:\n    body = 1\nafter = 2\n"))
        head = node_at_line(cfg, 1)
        body = node_at_line(cfg, 2)
        assert head.index in body.succs  # back edge
        assert node_at_line(cfg, 3).index not in body.succs

    def test_break_exits_the_loop(self):
        cfg = build_cfg(
            parse("while cond:\n    break\nafter = 2\n")
        )
        break_node = node_at_line(cfg, 2)
        head = node_at_line(cfg, 1)
        # break targets the loop's exit join, never back to the head.
        (succ,) = break_node.succs
        assert succ != head.index
        after = node_at_line(cfg, 3)
        assert after.index in cfg.nodes[succ].succs or succ == after.index

    def test_return_goes_to_exit(self):
        cfg = cfg_for_function("def f():\n    return 1\n    x = 2\n")
        ret = node_at_line(cfg, 2)
        assert ret.succs == [CFG.EXIT]

    def test_try_handler_reachable_from_body(self):
        cfg = build_cfg(
            parse(
                """
                try:
                    risky = 1
                except ValueError:
                    handled = 2
                after = 3
                """
            )
        )
        risky = node_at_line(cfg, 3)
        handled = node_at_line(cfg, 5)
        # The may-raise edge makes the handler reachable.
        reachable = set()
        stack = [risky.index]
        while stack:
            index = stack.pop()
            if index in reachable:
                continue
            reachable.add(index)
            stack.extend(cfg.nodes[index].succs)
        assert handled.index in reachable

    def test_nested_defs_are_opaque(self):
        cfg = build_cfg(
            parse("def outer():\n    inner = 1\n\nafter = 2\n")
        )
        lines = [
            node.stmt.lineno for node in cfg.statements() if node.stmt is not None
        ]
        assert 1 in lines and 4 in lines
        assert 2 not in lines  # the nested body is not in this CFG


class TestReachingDefinitions:
    def solve(self, source, name=None):
        cfg = cfg_for_function(source, name)
        return cfg, solve_forward(cfg, ReachingDefinitions(cfg))

    def test_branch_merges_definitions(self):
        source = """
        def f(cond):
            if cond:
                x = 1
            else:
                x = 2
            return x
        """
        cfg, facts = self.solve(source)
        ret = node_at_line(cfg, 7)
        assert facts[ret.index]["x"] == frozenset({4, 6})

    def test_redefinition_kills(self):
        source = """
        def f():
            x = 1
            x = 2
            return x
        """
        cfg, facts = self.solve(source)
        ret = node_at_line(cfg, 5)
        assert facts[ret.index]["x"] == frozenset({4})

    def test_loop_carried_definition(self):
        source = """
        def f(items):
            x = 0
            for item in items:
                x = item
            return x
        """
        cfg, facts = self.solve(source)
        ret = node_at_line(cfg, 6)
        assert facts[ret.index]["x"] == frozenset({3, 5})


class TestTaintAnalysis:
    def flows_on_return(self, source, name=None):
        tree = parse(source)
        cfg = cfg_for_function(source, name)
        analysis = TaintAnalysis(cfg, import_table(tree)).run()
        for node in cfg.statements():
            if isinstance(node.stmt, ast.Return) and node.stmt.value is not None:
                return analysis.flows_at(node.stmt.value, node)
        raise AssertionError("no return statement")

    def test_wallclock_flows_through_locals(self):
        flows = self.flows_on_return(
            """
            import time

            def f():
                t = time.time()
                u = t + 1
                return u
            """
        )
        assert [flow.label for flow in flows] == ["wallclock"]
        path = flows[0].render_path()
        assert path.startswith("line 5 (time.time())")
        assert path.endswith("sink line 7")

    def test_sorted_never_sanitizes_value_taint(self):
        flows = self.flows_on_return(
            """
            import random

            def f():
                vals = [random.random() for _ in range(3)]
                return sorted(vals)
            """
        )
        assert [flow.label for flow in flows] == ["entropy"]

    def test_sorted_sanitizes_order_taint(self):
        flows = self.flows_on_return(
            """
            def f(names: set):
                return sorted(names)
            """
        )
        assert flows == []

    def test_list_of_set_is_order_tainted(self):
        flows = self.flows_on_return(
            """
            def f(names: set):
                rows = list(names)
                return rows
            """
        )
        assert [flow.label for flow in flows] == ["order"]

    def test_xor_fold_drops_iterorder(self):
        flows = self.flows_on_return(
            """
            def f(names: set):
                total = 0
                for name in names:
                    total ^= len(name)
                return total
            """
        )
        assert flows == []

    def test_witness_is_deterministic_and_capped(self):
        source = """
        import time

        def f(flag):
            x = time.time()
            for _ in range(100):
                x = x + 1
            return x
        """
        first = self.flows_on_return(source)
        second = self.flows_on_return(source)
        assert first == second
        assert len(first[0].witness) <= 16


class TestCallGraph:
    def test_reachability_is_transitive_and_sorted(self):
        graph = build_call_graph(
            parse(
                """
                def a():
                    b()

                def b():
                    c()

                def c():
                    pass

                def unrelated():
                    pass
                """
            )
        )
        assert graph.reachable_from("a") == ["a", "b", "c"]

    def test_callback_reference_counts_as_edge(self):
        graph = build_call_graph(
            parse(
                """
                def task():
                    pass

                def submit(pool):
                    pool.map(task, [1, 2])
                """
            )
        )
        assert "task" in graph.reachable_from("submit")
