"""Unit tests for the invariant linter's rule pack (REP001–REP006).

Each rule gets a bad snippet that must flag, a good snippet that must
pass, and a noqa-suppression path. The on-disk corpus under
``tests/staticcheck_corpus/`` exercises the same rules through the CLI
(see ``test_staticcheck_cli.py``); these tests pin the per-rule
semantics at the ``lint_source`` level.
"""

import json
import textwrap

from repro.staticcheck import lint_source
from repro.staticcheck.driver import PARSE_RULE_ID, parse_suppressions
from repro.staticcheck.report import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    JSON_REPORT_VERSION,
    exit_code_for,
    render_json,
    render_text,
)


def lint(source, module="repro.measurement.example", **kwargs):
    return lint_source(textwrap.dedent(source), module=module, **kwargs)


def rule_ids_of(result):
    return [finding.rule_id for finding in result.findings]


class TestRep001Determinism:
    def test_wall_clock_read_is_flagged(self):
        result = lint(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert rule_ids_of(result) == ["REP001"]
        assert "wall clock" in result.findings[0].message

    def test_unseeded_random_is_flagged_seeded_is_not(self):
        bad = lint("import random\nrng = random.Random()\n")
        good = lint("import random\nrng = random.Random(1234)\n")
        assert rule_ids_of(bad) == ["REP001"]
        assert good.clean

    def test_module_level_rng_and_entropy(self):
        result = lint(
            """
            import os
            import random
            import uuid

            def roll():
                return random.random(), os.urandom(4), uuid.uuid4()
            """
        )
        assert rule_ids_of(result) == ["REP001", "REP001", "REP001"]

    def test_forbidden_from_import_is_flagged_even_unused(self):
        result = lint("from random import choice\n")
        assert rule_ids_of(result) == ["REP001"]
        assert "import of random.choice" in result.findings[0].message

    def test_allowlisted_module_is_exempt(self):
        result = lint(
            "import time\n\ndef now():\n    return time.monotonic()\n",
            module="repro.dnssim.clock",
        )
        assert result.clean

    def test_import_alias_is_resolved(self):
        result = lint(
            """
            import time as clk

            def stamp():
                return clk.perf_counter()
            """
        )
        assert rule_ids_of(result) == ["REP001"]

    def test_noqa_suppresses_with_reason(self):
        result = lint(
            "import time\n"
            "t = time.time()  # repro: noqa[REP001] -- operator-facing only\n"
        )
        assert result.clean
        assert len(result.suppressions) == 1
        assert result.suppressions[0].reason == "operator-facing only"

    def test_seeded_random_in_faults_package_is_flagged(self):
        # Inside repro.faults even a *seeded* Random bypasses the keyed
        # PRNG contract: draws would depend on call order, not keys.
        result = lint(
            "import random\nrng = random.Random(42)\n",
            module="repro.faults.injector",
        )
        assert rule_ids_of(result) == ["REP001"]
        assert "repro.faults.prng" in result.findings[0].message

    def test_unseeded_random_in_faults_package_is_flagged_once(self):
        result = lint(
            "import random\nrng = random.Random()\n",
            module="repro.faults.injector",
        )
        assert rule_ids_of(result) == ["REP001"]

    def test_faults_prng_module_may_construct_seeded_random(self):
        result = lint(
            "import random\n\ndef stream(seed):\n"
            "    return random.Random(seed)\n",
            module="repro.faults.prng",
        )
        assert result.clean

    def test_seeded_random_outside_faults_package_still_fine(self):
        result = lint(
            "import random\nrng = random.Random(7)\n",
            module="repro.worldgen.generate",
        )
        assert result.clean


class TestRep002SortedIteration:
    def test_for_loop_over_set_is_flagged(self):
        result = lint(
            """
            names = {"a", "b"}
            for name in names:
                print(name)
            """
        )
        # The flow-sensitive REP008 confirms the order actually leaks.
        assert rule_ids_of(result) == ["REP002", "REP008"]

    def test_sorted_wrap_passes(self):
        result = lint(
            """
            names = {"a", "b"}
            for name in sorted(names):
                print(name)
            """
        )
        assert result.clean

    def test_join_and_list_of_set_are_flagged(self):
        result = lint(
            """
            def render(tags: set) -> str:
                return ",".join(tags) + str(list(tags))
            """
        )
        assert rule_ids_of(result) == ["REP002", "REP008", "REP002"]

    def test_order_insensitive_consumers_pass(self):
        result = lint(
            """
            def stats(tags: set):
                return len(tags), max(tags), any(t for t in tags)
            """
        )
        assert result.clean

    def test_set_algebra_result_is_tracked(self):
        result = lint(
            """
            def diff(seen: set, all_items: set):
                return [item for item in all_items - seen]
            """
        )
        assert rule_ids_of(result) == ["REP002"]

    def test_self_attribute_sets_are_tracked_across_methods(self):
        result = lint(
            """
            class Collector:
                def __init__(self):
                    self.seen = set()

                def dump(self):
                    return list(self.seen)
            """
        )
        assert rule_ids_of(result) == ["REP002"]

    def test_bare_noqa_suppresses_any_rule(self):
        result = lint(
            'names = {"a"}\n'
            "rows = list(names)  # repro: noqa -- order never serialized\n"
        )
        assert result.clean and len(result.suppressions) == 1

    def test_noqa_for_other_rule_does_not_suppress(self):
        result = lint(
            'names = {"a"}\n'
            "rows = list(names)  # repro: noqa[REP001] -- wrong rule id\n"
        )
        assert rule_ids_of(result) == ["REP002"]


class TestRep003Layering:
    def test_upward_import_is_flagged(self):
        result = lint(
            "from repro.engine.plan import plan_campaign\n",
            module="repro.dnssim.resolver",
        )
        assert rule_ids_of(result) == ["REP003"]
        assert "strictly downward" in result.findings[0].message

    def test_peer_simulator_import_is_flagged(self):
        result = lint("import repro.tlssim\n", module="repro.dnssim.resolver")
        assert rule_ids_of(result) == ["REP003"]
        assert "peers" in result.findings[0].message

    def test_downward_import_passes(self):
        result = lint(
            "from repro.names import psl\nfrom repro.dnssim.zones import Zone\n",
            module="repro.worldgen.builder",
        )
        assert result.clean

    def test_relative_import_is_resolved(self):
        # ``from ..engine import plan`` inside repro.analysis climbs to
        # repro.engine — a legal downward import for analysis (layer 7).
        down = lint(
            "from ..engine import plan\n", module="repro.analysis.tables"
        )
        assert down.clean
        # The same relative import from a simulator is upward.
        up = lint(
            "from ..engine import plan\n", module="repro.dnssim.resolver"
        )
        assert rule_ids_of(up) == ["REP003"]

    def test_lazy_function_body_import_is_still_checked(self):
        result = lint(
            """
            def render():
                from repro.cli import main
                return main
            """,
            module="repro.analysis.tables",
        )
        assert rule_ids_of(result) == ["REP003"]

    def test_top_level_package_import_counts_as_cli(self):
        result = lint(
            "from repro import run_campaign\n", module="repro.names.psl"
        )
        assert rule_ids_of(result) == ["REP003"]


class TestRep004WorkerSafety:
    def test_lambda_submission_is_flagged(self):
        result = lint("list(pool.map(lambda x: x, items))\n")
        assert rule_ids_of(result) == ["REP004"]
        assert "pickle" in result.findings[0].message

    def test_nested_function_submission_is_flagged(self):
        result = lint(
            """
            def run(pool, items):
                def work(item):
                    return item
                return pool.map(work, items)
            """
        )
        assert rule_ids_of(result) == ["REP004"]

    def test_bound_method_submission_is_flagged(self):
        result = lint(
            """
            def run(pool, worker, items):
                return pool.imap_unordered(worker.measure, items)
            """
        )
        assert rule_ids_of(result) == ["REP004"]

    def test_module_level_function_passes(self):
        result = lint(
            """
            def work(item):
                return item

            def run(pool, items):
                return pool.map(work, items)
            """
        )
        assert result.clean

    def test_task_rebinding_module_state_is_flagged(self):
        result = lint(
            """
            _CACHE = {}

            def work(item):
                global _CACHE
                _CACHE = {}
                return item

            def run(pool, items):
                return pool.map(work, items)
            """
        )
        assert rule_ids_of(result) == ["REP004"]
        assert "initializer" in result.findings[0].message

    def test_initializer_may_rebind_module_state(self):
        result = lint(
            """
            _CONFIG = None

            def setup(config):
                global _CONFIG
                _CONFIG = config

            def run(pool_factory, config):
                return pool_factory(initializer=setup, initargs=(config,))
            """
        )
        assert result.clean


class TestRep005SerializationContract:
    RECORDS = "repro.measurement.records"

    def test_unfrozen_record_is_flagged(self):
        result = lint(
            """
            from dataclasses import dataclass

            @dataclass
            class Rec:
                domain: str

                def to_dict(self):
                    return {"domain": self.domain}

                @classmethod
                def from_dict(cls, data):
                    return cls(domain=data["domain"])
            """,
            module=self.RECORDS,
        )
        assert rule_ids_of(result) == ["REP005"]
        assert "frozen=True" in result.findings[0].message

    def test_key_field_drift_is_flagged_both_ways(self):
        result = lint(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Rec:
                domain: str
                rank: int

                def to_dict(self):
                    return {"domain": self.domain, "extra": 1}

                @classmethod
                def from_dict(cls, data):
                    return cls(domain=data["domain"], rank=0)
            """,
            module=self.RECORDS,
        )
        messages = " | ".join(f.message for f in result.findings)
        assert rule_ids_of(result) == ["REP005"] * 3
        assert "['extra']" in messages  # to_dict key that is not a field
        assert "omits field(s) ['rank']" in messages

    def test_missing_methods_are_flagged(self):
        result = lint(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Rec:
                domain: str
            """,
            module=self.RECORDS,
        )
        assert rule_ids_of(result) == ["REP005"]
        assert "to_dict and from_dict" in result.findings[0].message

    def test_compliant_record_passes(self):
        result = lint(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Rec:
                domain: str
                rank: int = 0

                def to_dict(self):
                    return {"domain": self.domain, "rank": self.rank}

                @classmethod
                def from_dict(cls, data):
                    return cls(domain=data["domain"], rank=data.get("rank", 0))
            """,
            module=self.RECORDS,
        )
        assert result.clean

    def test_rule_only_applies_to_record_modules(self):
        result = lint(
            """
            from dataclasses import dataclass

            @dataclass
            class Helper:
                value: int
            """,
            module="repro.core.metrics",
        )
        assert result.clean


class TestRep006TelemetryBoundary:
    def test_core_importing_telemetry_is_flagged(self):
        result = lint(
            "from repro.telemetry import Telemetry\n",
            module="repro.core.classification",
        )
        assert rule_ids_of(result) == ["REP006"]
        assert "observability-free" in result.findings[0].message

    def test_core_lazy_import_is_flagged_too(self):
        result = lint(
            """
            def classify():
                from repro.telemetry.metrics import MetricsRegistry
                return MetricsRegistry
            """,
            module="repro.core.graph",
        )
        assert rule_ids_of(result) == ["REP006"]

    def test_other_layers_may_import_telemetry(self):
        result = lint(
            "from repro.telemetry import Telemetry\n",
            module="repro.measurement.runner",
        )
        assert result.clean

    def test_store_importing_the_runner_is_flagged(self):
        # A dotted forbidden target names one module: the layer DAG
        # allows store -> measurement, but not the live-campaign runner.
        result = lint(
            "from repro.measurement.runner import MeasurementCampaign\n",
            module="repro.store.compile",
        )
        assert rule_ids_of(result) == ["REP006"]
        assert "never a live campaign" in result.findings[0].message

    def test_store_lazy_runner_import_is_one_finding(self):
        result = lint(
            """
            def freeze():
                import repro.measurement.runner as runner
                return runner
            """,
            module="repro.store.compile",
        )
        assert rule_ids_of(result) == ["REP006"]

    def test_store_may_import_the_frozen_dataset_side(self):
        result = lint(
            "from repro.measurement.io import dataset_from_json\n"
            "from repro.measurement.records import Dataset\n",
            module="repro.store.compile",
        )
        assert result.clean

    def test_core_importing_the_store_is_doubly_forbidden(self):
        # Both the DAG (core is below store) and the explicit edge fire.
        result = lint(
            "from repro.store import StoreReader\n",
            module="repro.core.pipeline",
        )
        assert sorted(set(rule_ids_of(result))) == ["REP003", "REP006"]

    def test_query_importing_the_store_is_clean(self):
        result = lint(
            "from repro.store.reader import StoreReader\n",
            module="repro.query.engine",
        )
        assert result.clean

    def test_store_importing_query_violates_the_dag(self):
        result = lint(
            "from repro.query import QueryEngine\n",
            module="repro.store.compile",
        )
        assert rule_ids_of(result) == ["REP003"]
        assert "strictly downward" in result.findings[0].message

    def test_wallclock_call_in_serialized_module_is_flagged(self):
        result = lint(
            """
            import time

            def stamp():
                return time.monotonic()
            """,
            module="repro.telemetry.spans",
        )
        # REP001 (ambient wall clock) and REP006 (serialization path)
        # both fire: the serialized side of telemetry has no exemption.
        assert sorted(set(rule_ids_of(result))) == ["REP001", "REP006"]
        assert any(
            "simulated clock" in f.message
            for f in result.findings
            if f.rule_id == "REP006"
        )

    def test_importing_the_wallclock_module_is_flagged(self):
        result = lint(
            "from repro.telemetry.profile import PhaseTimer\n",
            module="repro.telemetry.export",
        )
        assert rule_ids_of(result) == ["REP006"]
        assert "serialization path" in result.findings[0].message

    def test_relative_import_of_the_wallclock_module_is_flagged(self):
        result = lint(
            "from .profile import PhaseTimer\n",
            module="repro.telemetry.metrics",
        )
        assert rule_ids_of(result) == ["REP006"]

    def test_profile_module_itself_may_read_real_time(self):
        result = lint(
            """
            import time

            def elapsed(start):
                return time.monotonic() - start
            """,
            module="repro.telemetry.profile",
        )
        assert result.clean

    def test_nonserialized_telemetry_module_is_not_policed(self):
        result = lint(
            "from repro.telemetry.profile import PhaseTimer\n",
            module="repro.telemetry.context_helpers",
        )
        assert result.clean


class TestDriverMechanics:
    def test_syntax_error_becomes_parse_finding(self):
        result = lint("def broken(:\n")
        assert rule_ids_of(result) == [PARSE_RULE_ID]

    def test_parse_suppressions_reads_rules_and_reason(self):
        directives = parse_suppressions(
            "x = 1\n"
            "y = 2  # repro: noqa[REP001,REP002] -- because\n"
            "z = 3  # repro: noqa\n"
        )
        assert directives[2] == (frozenset({"REP001", "REP002"}), "because")
        assert directives[3] == (None, "")
        assert 1 not in directives

    def test_rule_selection_via_config(self):
        from repro.staticcheck import LintConfig

        source = 'names = {"a"}\nrows = list(names)\n'
        only_rep001 = lint_source(
            source, module="m", config=LintConfig(rules=frozenset({"REP001"}))
        )
        assert only_rep001.clean  # the REP002 finding is not even computed


class TestReporters:
    def _result(self):
        return lint(
            "import time\n"
            "a = time.time()\n"
            "b = time.time()  # repro: noqa[REP001] -- waived\n"
        )

    def test_text_report_has_findings_and_summary(self):
        text = render_text(self._result())
        assert "REP001" in text
        assert "checked 1 file(s): 1 finding(s), 1 suppressed" in text

    def test_json_report_schema(self):
        result = self._result()
        payload = json.loads(render_json(result))
        assert payload["version"] == JSON_REPORT_VERSION
        assert payload["files_checked"] == 1
        assert payload["exit_code"] == EXIT_FINDINGS
        from repro.staticcheck.rules import rule_ids

        assert set(payload["counts"]) == set(rule_ids())
        assert payload["counts"]["REP001"] == 1
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "path", "line", "col", "message"}
        assert finding["rule"] == "REP001" and finding["line"] == 2
        (suppressed,) = payload["suppressed"]
        assert suppressed["reason"] == "waived"

    def test_exit_codes(self):
        assert exit_code_for(lint("x = 1\n")) == EXIT_CLEAN
        assert exit_code_for(self._result()) == EXIT_FINDINGS


def only(rule_id, **overrides):
    from repro.staticcheck import LintConfig

    return LintConfig(rules=frozenset({rule_id}), **overrides)


class TestRep007TaintTracking:
    def test_laundered_wallclock_into_serializer(self):
        result = lint(
            """
            import json
            import time


            def snapshot() -> str:
                started = time.time()
                payload = {"started": started}
                return json.dumps(payload)
            """,
            config=only("REP007"),
        )
        (finding,) = result.findings
        assert finding.rule_id == "REP007"
        assert "time.time()" in finding.message
        assert "sink line" in finding.message
        assert " -> " in finding.message  # the witness path

    def test_sink_return_of_to_dict(self):
        result = lint(
            """
            import time


            class Timer:
                def to_dict(self) -> dict:
                    elapsed = time.time()
                    payload = {"elapsed": elapsed}
                    return payload
            """,
            config=only("REP007"),
        )
        assert rule_ids_of(result) == ["REP007"]

    def test_entropy_into_digest(self):
        result = lint(
            """
            import hashlib
            import os


            def token() -> str:
                raw = os.urandom(16)
                return hashlib.sha256(raw).hexdigest()
            """,
            config=only("REP007"),
        )
        (finding,) = result.findings
        assert "os.urandom()" in finding.message

    def test_set_order_into_serializer(self):
        result = lint(
            """
            import json


            def dump(names: set) -> str:
                rows = list(names)
                return json.dumps(rows)
            """,
            config=only("REP007"),
        )
        assert rule_ids_of(result) == ["REP007"]

    def test_sorted_flow_is_clean(self):
        result = lint(
            """
            import json


            def dump(names: set) -> str:
                rows = sorted(names)
                return json.dumps(rows)
            """,
            config=only("REP007"),
        )
        assert result.clean

    def test_untainted_serialization_is_clean(self):
        result = lint(
            """
            import json


            def dump(rows: list) -> str:
                return json.dumps(rows)
            """,
            config=only("REP007"),
        )
        assert result.clean


class TestRep008FlowIteration:
    def test_set_iteration_order_reaching_append(self):
        result = lint(
            """
            def collect(names: set) -> list:
                out = []
                for name in names:
                    out.append(name)
                return out
            """,
            config=only("REP008"),
        )
        (finding,) = result.findings
        assert "sorted" in finding.message
        assert "iterated here" in finding.message

    def test_xor_fold_is_clean_without_a_waiver(self):
        """The FP class behind the REP002 waivers: commutative folds."""
        result = lint(
            """
            def checksum(names: set) -> int:
                total = 0
                for name in names:
                    total ^= len(name)
                return total
            """,
            config=only("REP008"),
        )
        assert result.clean

    def test_dict_fromkeys_laundering_into_join(self):
        result = lint(
            """
            def header(columns: set) -> str:
                ordered = dict.fromkeys(columns)
                return "|".join(ordered)
            """,
            config=only("REP008"),
        )
        assert rule_ids_of(result) == ["REP008"]

    def test_sorted_iteration_is_clean(self):
        result = lint(
            """
            def collect(names: set) -> list:
                out = []
                for name in sorted(names):
                    out.append(name)
                return out
            """,
            config=only("REP008"),
        )
        assert result.clean

    def test_appending_a_whole_set_object_is_clean(self):
        """Appending the set itself does not leak its iteration order."""
        result = lint(
            """
            def group(names: set) -> list:
                out = []
                out.append(names)
                return out
            """,
            config=only("REP008"),
        )
        assert result.clean


class TestRep009WorkerReachability:
    def test_mutation_through_helper_is_flagged(self):
        result = lint(
            """
            _CACHE: dict = {}


            def _remember(key, value):
                _CACHE[key] = value


            def run_shard(shard):
                value = len(shard)
                _remember(shard, value)
                return value


            def launch(pool, shards):
                return list(pool.imap(run_shard, shards))
            """,
            module="repro.engine.tasks",
            config=only("REP009"),
        )
        (finding,) = result.findings
        assert "_CACHE" in finding.message
        assert "_remember" in finding.message

    def test_initializer_may_rebind(self):
        result = lint(
            """
            _WORLD = None


            def _init_worker(world):
                global _WORLD
                _WORLD = world


            def run_shard(shard):
                return len(shard)


            def launch(pool_cls, world, shards):
                with pool_cls(initializer=_init_worker) as pool:
                    return list(pool.imap(run_shard, shards))
            """,
            module="repro.engine.tasks",
            config=only("REP009"),
        )
        assert result.clean

    def test_read_only_module_state_is_clean(self):
        result = lint(
            """
            _WORLD = None


            def run_shard(shard):
                return 0 if _WORLD is None else len(shard)


            def launch(pool, shards):
                return list(pool.imap(run_shard, shards))
            """,
            module="repro.engine.tasks",
            config=only("REP009"),
        )
        assert result.clean

    def test_configured_entry_points_without_local_submission(self):
        result = lint(
            """
            _STATS: dict = {}


            def entry(shard):
                _STATS[shard] = 1
            """,
            module="repro.engine.tasks",
            config=only(
                "REP009",
                rep009_entry_points=frozenset({"repro.engine.tasks:entry"}),
            ),
        )
        (finding,) = result.findings
        assert "_STATS" in finding.message

    def test_local_mutation_is_clean(self):
        result = lint(
            """
            def run_shard(shard):
                local: dict = {}
                local[shard] = 1
                return local


            def launch(pool, shards):
                return list(pool.imap(run_shard, shards))
            """,
            module="repro.engine.tasks",
            config=only("REP009"),
        )
        assert result.clean


class TestRep010PerfSmells:
    def test_pop_front_on_list_is_flagged_with_fix(self):
        result = lint(
            """
            def drainq() -> int:
                queue = [3, 1, 2]
                total = 0
                while queue:
                    total += queue.pop(0)
                return total
            """,
            config=only("REP010"),
        )
        (finding,) = result.findings
        assert "pop(0)" in finding.message
        assert finding.fix  # construction is local and unique: fixable
        replacements = [edit.replacement for edit in finding.fix]
        assert ".popleft()" in replacements
        assert "from collections import deque\n" in replacements

    def test_pop_front_on_unknown_receiver_is_clean(self):
        result = lint(
            """
            def drainq(queue) -> int:
                total = 0
                while queue:
                    total += queue.pop(0)
                return total
            """,
            config=only("REP010"),
        )
        assert result.clean  # may already be a deque

    def test_membership_in_loop(self):
        result = lint(
            """
            def hits(queries, known: list) -> int:
                count = 0
                for query in queries:
                    if query in known:
                        count += 1
                return count
            """,
            config=only("REP010"),
        )
        (finding,) = result.findings
        assert "membership" in finding.message

    def test_membership_against_mutating_list_is_clean(self):
        result = lint(
            """
            def dedupe(items) -> list:
                seen = []
                for item in items:
                    if item in seen:
                        continue
                    seen.append(item)
                return seen
            """,
            config=only("REP010"),
        )
        assert result.clean  # hoisting would change behavior

    def test_shrinking_min_max(self):
        result = lint(
            """
            def schedule(jobs: list) -> list:
                done = []
                while jobs:
                    job = min(jobs)
                    jobs.remove(job)
                    done.append(job)
                return done
            """,
            config=only("REP010"),
        )
        (finding,) = result.findings
        assert "min()" in finding.message

    def test_nested_same_iterable(self):
        result = lint(
            """
            def pairs(nodes: list) -> list:
                out = []
                for a in nodes:
                    for b in nodes:
                        out.append((a, b))
                return out
            """,
            config=only("REP010"),
        )
        (finding,) = result.findings
        assert "nested loops" in finding.message

    def test_nested_different_iterables_are_clean(self):
        result = lint(
            """
            def cross(lefts: list, rights: list) -> list:
                out = []
                for a in lefts:
                    for b in rights:
                        out.append((a, b))
                return out
            """,
            config=only("REP010"),
        )
        assert result.clean
