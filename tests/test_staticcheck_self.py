"""The linter applied to this repository itself.

This is the teeth of the whole exercise: ``src/repro`` must be clean
under every rule, and any suppression must carry a written
justification. The optional mypy check mirrors the CI ``staticcheck``
job (skipped when mypy is not installed — it is not a runtime
dependency).
"""

import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.staticcheck import DEFAULT_CONFIG, lint_paths

SRC = Path(repro.__file__).parent


class TestSelfCheck:
    @pytest.fixture(scope="class")
    def result(self):
        return lint_paths([SRC], DEFAULT_CONFIG)

    def test_src_has_zero_findings(self, result):
        rendered = "\n".join(f.render() for f in result.findings)
        assert result.findings == [], f"lint findings in src/:\n{rendered}"

    def test_whole_package_was_scanned(self, result):
        assert result.files_checked == len(list(SRC.rglob("*.py")))

    def test_every_suppression_is_justified(self, result):
        unjustified = [
            s.finding.render()
            for s in result.suppressions
            if not s.reason.strip()
        ]
        assert unjustified == [], (
            "reason-less noqa in src/ (add '-- why' to the directive): "
            f"{unjustified}"
        )

    def test_suppressions_are_rare(self, result):
        # A ratchet, not a style preference: every waiver weakens the
        # determinism contract. Raising this number needs a PR argument.
        assert len(result.suppressions) <= 3

    def test_no_bare_noqa_directives_in_src(self):
        """Every waiver must name the exact rules it silences. A bare
        ``# repro: noqa`` also swallows findings from rules added later
        — which is precisely how waivers go stale."""
        from repro.staticcheck.driver import parse_suppressions

        bare: list[str] = []
        for path in sorted(SRC.rglob("*.py")):
            directives = parse_suppressions(path.read_text(encoding="utf-8"))
            for lineno, (rules, _reason) in sorted(directives.items()):
                if rules is None:
                    bare.append(f"{path}:{lineno}")
        assert bare == [], (
            f"bare 'repro: noqa' in src/ (name the rule ids): {bare}"
        )

    def test_serve_layer_sits_between_query_and_cli(self):
        """The daemon is layer 12: above query (it wraps engines), below
        the CLI, and REP006 pins it away from the measurement and
        simulation side — serve answers questions, it never measures."""
        layers = DEFAULT_CONFIG.rep003_layers
        assert layers["query"] < layers["serve"] < layers["cli"]
        for edge in (
            ("serve", "measurement.runner"),
            ("serve", "engine"),
            ("serve", "worldgen"),
        ):
            assert edge in DEFAULT_CONFIG.rep006_forbidden_edges

    def test_benchmark_and_script_trees_lint_clean(self):
        """The CI staticcheck job lints scripts/ and benchmarks/ too;
        keep the gate mirrored here so a regression fails fast."""
        repo_root = SRC.parent.parent
        trees = [repo_root / "scripts", repo_root / "benchmarks"]
        present = [t for t in trees if t.is_dir()]
        assert present, "scripts/ and benchmarks/ trees went missing"
        aux = lint_paths(present, DEFAULT_CONFIG)
        rendered = "\n".join(f.render() for f in aux.findings)
        assert aux.findings == [], f"lint findings:\n{rendered}"
        unjustified = [
            s.finding.render()
            for s in aux.suppressions
            if not s.reason.strip()
        ]
        assert unjustified == []


class TestTypeChecking:
    def test_engine_and_io_pass_strict_mypy(self):
        pytest.importorskip("mypy")
        repo_root = SRC.parent.parent
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "mypy",
                "--config-file",
                str(repo_root / "pyproject.toml"),
                str(SRC / "engine"),
                str(SRC / "measurement" / "io.py"),
                str(SRC / "store"),
                str(SRC / "query"),
                str(SRC / "serve"),
            ],
            capture_output=True,
            text=True,
            cwd=repo_root,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
