"""Wire-format contract tests for the ``repro-store/1`` binary store.

Three layers of assurance: hypothesis proves the compile → load →
recompile loop is byte-stable across generated worlds and that *any*
single-bit flip or truncation is rejected with a typed error; targeted
tests pin the error taxonomy (future wire version → ``StoreVersionError``,
everything else → ``StoreCorruptError``); a golden file freezes the CLI
``query --top 5`` JSON answer for the canonical frozen dataset, so wire
or ranking drift shows up as a reviewable diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import WorldConfig, build_world
from repro.measurement.io import dataset_to_json
from repro.measurement.runner import MeasurementCampaign
from repro.query import LRUCache, QueryEngine
from repro.store import (
    SCHEMA,
    StoreCorruptError,
    StoreError,
    StoreReader,
    StoreVersionError,
    WIRE_VERSION,
    compile_dataset_text,
    compile_file,
)
from repro.store.format import MAGIC

GOLDEN_DIR = Path(__file__).parent / "goldens"
VERSION_OFFSET = len(MAGIC)  # the u32 wire version sits right after magic


def small_dataset_text(n: int, seed: int, limit: int) -> str:
    world = build_world(WorldConfig(n_websites=n, seed=seed))
    return dataset_to_json(MeasurementCampaign(world, limit=limit).run())


@pytest.fixture(scope="module")
def frozen_text() -> str:
    # The committed golden dataset: stable input for every wire test.
    return (GOLDEN_DIR / "dataset_nofault.json").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def frozen_blob(frozen_text: str) -> bytes:
    return compile_dataset_text(frozen_text)


class TestRoundTrip:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n=st.integers(min_value=100, max_value=140),
        seed=st.integers(min_value=0, max_value=9999),
        limit=st.integers(min_value=15, max_value=40),
    )
    def test_compile_load_recompile_is_byte_identical(
        self, n: int, seed: int, limit: int
    ):
        text = small_dataset_text(n, seed, limit)
        blob = compile_dataset_text(text)
        reader = StoreReader.from_bytes(blob)
        assert reader.header["schema"] == SCHEMA
        assert reader.n_sites == limit
        # The store answers basic shape questions without re-parsing JSON.
        for i in range(reader.n_sites):
            assert reader.find_site(reader.site_domain(i)) == i
        assert compile_dataset_text(text) == blob

    def test_compile_file_round_trips_through_mmap(
        self, frozen_text, frozen_blob, tmp_path
    ):
        src = tmp_path / "ds.json"
        src.write_text(frozen_text, encoding="utf-8")
        out = tmp_path / "ds.rstore"
        written = compile_file(str(src), str(out))
        assert written == out.stat().st_size
        assert out.read_bytes() == frozen_blob
        reader = StoreReader.load(str(out))
        assert reader.n_sites == 25
        assert reader.header["year"] == 2020

    def test_header_records_source_digest(self, frozen_text, frozen_blob):
        import hashlib

        header = StoreReader.from_bytes(frozen_blob).header
        expected = hashlib.sha256(frozen_text.encode("utf-8")).hexdigest()
        assert header["source_sha256"] == expected


class TestCorruptionRejection:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_any_single_bit_flip_is_rejected(self, frozen_blob, data):
        pos = data.draw(
            st.integers(min_value=0, max_value=len(frozen_blob) - 1)
        )
        bit = data.draw(st.integers(min_value=0, max_value=7))
        mutated = bytearray(frozen_blob)
        mutated[pos] ^= 1 << bit
        with pytest.raises(StoreError):
            StoreReader.from_bytes(bytes(mutated))

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_any_truncation_is_corrupt(self, frozen_blob, data):
        keep = data.draw(
            st.integers(min_value=0, max_value=len(frozen_blob) - 1)
        )
        with pytest.raises(StoreCorruptError):
            StoreReader.from_bytes(frozen_blob[:keep])

    def test_future_wire_version_raises_version_error(self, frozen_blob):
        mutated = bytearray(frozen_blob)
        future = WIRE_VERSION + 1
        mutated[VERSION_OFFSET : VERSION_OFFSET + 4] = future.to_bytes(
            4, "little"
        )
        with pytest.raises(StoreVersionError) as exc:
            StoreReader.from_bytes(bytes(mutated))
        # The message must name both versions so operators can triage.
        assert str(future) in str(exc.value)
        assert str(WIRE_VERSION) in str(exc.value)

    def test_bad_magic_is_corrupt_not_version(self, frozen_blob):
        mutated = b"NOTSTORE" + frozen_blob[len(MAGIC) :]
        with pytest.raises(StoreCorruptError):
            StoreReader.from_bytes(mutated)

    def test_digest_flip_is_corrupt(self, frozen_blob):
        mutated = bytearray(frozen_blob)
        mutated[-1] ^= 0xFF
        with pytest.raises(StoreCorruptError):
            StoreReader.from_bytes(bytes(mutated))

    def test_empty_file_is_corrupt(self, tmp_path):
        path = tmp_path / "empty.rstore"
        path.write_bytes(b"")
        with pytest.raises(StoreCorruptError):
            StoreReader.load(str(path))

    def test_truncated_file_on_disk_is_corrupt(self, frozen_blob, tmp_path):
        path = tmp_path / "short.rstore"
        path.write_bytes(frozen_blob[: len(frozen_blob) // 2])
        with pytest.raises(StoreCorruptError):
            StoreReader.load(str(path))


class TestLRUCache:
    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'; 'b' is now oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_counters_track_hits_misses_evictions(self):
        cache = LRUCache(capacity=1)
        cache.put("a", 1)
        cache.get("a")
        cache.get("x")
        cache.put("b", 2)
        stats = cache.stats()
        assert stats == {
            "capacity": 1,
            "size": 1,
            "hits": 1,
            "misses": 1,
            "evictions": 1,
        }

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # overwrite refreshes recency; 'b' evicts next
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)


class TestGoldenQuery:
    def test_top5_dns_matches_golden(
        self, frozen_blob, tmp_path, capsys, regen_goldens
    ):
        """The full CLI path — compiled store to ``--json`` answer —
        frozen as a golden so ranking or wire drift is a visible diff."""
        from repro.cli import main

        from .test_golden_corpus import _check_golden

        store = tmp_path / "golden.rstore"
        store.write_bytes(frozen_blob)
        assert main(
            ["query", str(store), "--top", "5", "--service", "dns", "--json"]
        ) == 0
        out = capsys.readouterr().out
        json.loads(out)  # the golden must stay machine-readable
        _check_golden("query_top5_dns.json", out, regen_goldens)

    def test_engine_agrees_with_golden_file(self, frozen_blob, regen_goldens):
        if regen_goldens:
            pytest.skip("regenerating goldens")
        from repro.query import payload_to_json

        engine = QueryEngine(StoreReader.from_bytes(frozen_blob))
        expected = (GOLDEN_DIR / "query_top5_dns.json").read_text(
            encoding="utf-8"
        )
        assert payload_to_json(engine.top(5, "impact", "dns")) + "\n" == expected
