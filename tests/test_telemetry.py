"""Unit tests for repro.telemetry: metrics, spans, exporters, config.

The contracts under test are the ones the engine leans on (DESIGN §10):
integer metric arithmetic merges exactly and associatively, span trees
are well-formed by construction on the simulated clock, and every
exporter emits one canonical byte form.
"""

from __future__ import annotations

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import (
    ATTEMPT_BUCKETS,
    SMALL_COUNT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_SPAN,
    Telemetry,
    TelemetryConfig,
    Tracer,
    chrome_trace,
    metrics_from_json,
    metrics_to_json,
    summary_table,
)
from repro.telemetry.metrics import metric_key


class TestMetricKey:
    def test_no_labels_is_bare_name(self):
        assert metric_key("dns.queries", {}) == "dns.queries"

    def test_labels_sorted_by_key(self):
        assert (
            metric_key("sites.degraded", {"mode": "x", "layer": "dns"})
            == "sites.degraded{layer=dns,mode=x}"
        )

    def test_label_order_is_canonical(self):
        a = metric_key("m", {"a": 1, "b": 2})
        b = metric_key("m", {"b": 2, "a": 1})
        assert a == b


class TestHistogram:
    def test_bounds_must_be_sorted_and_nonempty(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((3, 1, 2))

    def test_bucketing_is_inclusive_upper_bound(self):
        h = Histogram((1, 2, 3))
        for value in (0, 1, 2, 3, 4, 99):
            h.observe(value)
        # 0,1 <=1 | 2 <=2 | 3 <=3 | 4,99 overflow
        assert h.counts == [2, 1, 1, 2]
        assert h.total == 6
        assert h.sum == 0 + 1 + 2 + 3 + 4 + 99

    def test_mean(self):
        h = Histogram(SMALL_COUNT_BUCKETS)
        assert h.mean == 0.0
        h.observe(2)
        h.observe(4)
        assert h.mean == 3.0

    def test_merge_requires_equal_bounds(self):
        with pytest.raises(ValueError):
            Histogram((1, 2)).merge(Histogram((1, 3)))

    def test_roundtrip(self):
        h = Histogram(ATTEMPT_BUCKETS)
        for value in (1, 1, 2, 7):
            h.observe(value)
        again = Histogram.from_dict(h.to_dict())
        assert again.to_dict() == h.to_dict()

    def test_from_dict_validates_bucket_count(self):
        payload = {"bounds": [1, 2], "counts": [0, 0], "total": 0, "sum": 0}
        with pytest.raises(ValueError):
            Histogram.from_dict(payload)


class TestMetricsRegistry:
    def test_count_and_read_with_labels(self):
        reg = MetricsRegistry()
        reg.count("dns.queries")
        reg.count("dns.queries", 2)
        reg.count("dns.queries", layer="dns")
        assert reg.counter("dns.queries") == 3
        assert reg.counter("dns.queries", layer="dns") == 1
        assert reg.counter("missing") == 0

    def test_observe_and_read(self):
        reg = MetricsRegistry()
        reg.observe("site.attempts", 2, ATTEMPT_BUCKETS, layer="dns")
        h = reg.histogram("site.attempts", layer="dns")
        assert h is not None and h.total == 1
        assert reg.histogram("site.attempts") is None

    def test_to_dict_is_sorted(self):
        reg = MetricsRegistry()
        reg.count("zeta")
        reg.count("alpha")
        assert list(reg.to_dict()["counters"]) == ["alpha", "zeta"]

    def test_drain_serializes_and_resets(self):
        reg = MetricsRegistry()
        reg.count("sites")
        reg.observe("x", 1)
        state = reg.drain()
        assert state["counters"] == {"sites": 1}
        assert reg.empty
        assert reg.drain() == {"counters": {}, "histograms": {}}

    def test_merge_dict_equals_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg in (a, b):
            reg.count("sites", 2)
            reg.observe("x", 3)
        merged = MetricsRegistry()
        merged.merge(a)
        merged_dict = MetricsRegistry()
        merged_dict.merge_dict(a.to_dict())
        assert merged.to_dict() == merged_dict.to_dict()


def _apply(reg: MetricsRegistry, events) -> None:
    for kind, name, value in events:
        if kind == "count":
            reg.count(name, value)
        else:
            reg.observe(name, value)


_EVENTS = st.lists(
    st.tuples(
        st.sampled_from(["count", "observe"]),
        st.sampled_from(["a", "b", "c{l=1}"]),
        st.integers(min_value=0, max_value=50),
    ),
    max_size=30,
)


class TestMergeAssociativity:
    @given(_EVENTS, _EVENTS, _EVENTS)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative(self, ev_a, ev_b, ev_c):
        def registry(events):
            reg = MetricsRegistry()
            _apply(reg, events)
            return reg

        left = MetricsRegistry()
        left.merge(registry(ev_a))
        left.merge(registry(ev_b))
        inner = MetricsRegistry()
        inner.merge(registry(ev_b))
        inner.merge(registry(ev_c))
        left.merge(registry(ev_c))
        right = registry(ev_a)
        right.merge(inner)
        assert left.to_dict() == right.to_dict()

    @given(_EVENTS, _EVENTS)
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_single_registry_over_concatenation(self, ev_a, ev_b):
        merged = MetricsRegistry()
        for events in (ev_a, ev_b):
            shard = MetricsRegistry()
            _apply(shard, events)
            merged.merge_dict(shard.drain())
        direct = MetricsRegistry()
        _apply(direct, ev_a + ev_b)
        assert merged.to_dict() == direct.to_dict()


class _ManualClock:
    def __init__(self) -> None:
        self.t = 0.0

    def now(self) -> float:
        return self.t


class TestTracer:
    def test_spans_nest_and_cover_children(self):
        clock = _ManualClock()
        tracer = Tracer(now=clock.now)
        with tracer.span("outer", "cat"):
            clock.t = 1.0
            with tracer.span("inner"):
                clock.t = 2.5
            tracer.event("mark", note="hi")
            clock.t = 3.0
        (root,) = tracer.drain()
        assert root.name == "outer" and root.category == "cat"
        assert root.start == 0.0 and root.end == 3.0
        inner, mark = root.children
        assert inner.start == 1.0 and inner.end == 2.5
        assert mark.kind == "instant" and mark.attrs == {"note": "hi"}
        assert root.duration == 3.0
        assert tracer.open_spans == 0

    def test_seq_increases_in_preorder(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                tracer.event("c")
            tracer.event("d")
        (root,) = tracer.drain()
        seqs = [span.seq for span in root.walk()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_attrs_via_context_manager_set(self):
        tracer = Tracer()
        with tracer.span("op", domain="x.com") as sp:
            sp.set(ok=True)
        (root,) = tracer.drain()
        assert root.attrs == {"domain": "x.com", "ok": True}

    def test_exception_still_closes_the_span(self):
        clock = _ManualClock()
        tracer = Tracer(now=clock.now)
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                clock.t = 1.0
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.open_spans == 0
        (root,) = tracer.drain()
        assert root.end == 1.0
        assert root.children[0].end == 1.0

    def test_site_filter_records_only_matching_sites(self):
        tracer = Tracer(site_filter=frozenset({"keep.com"}))
        assert not tracer.recording
        tracer.begin_site("drop.com")
        with tracer.span("ignored"):
            pass
        tracer.end_site()
        tracer.begin_site("keep.com")
        with tracer.span("kept"):
            pass
        tracer.end_site()
        roots = tracer.drain()
        assert [r.name for r in roots] == ["kept"]
        assert not tracer.recording

    def test_unfiltered_tracer_records_outside_site_context(self):
        tracer = Tracer()
        tracer.begin_site("any.com")
        tracer.end_site()
        with tracer.span("interservice"):
            pass
        assert [r.name for r in tracer.drain()] == ["interservice"]

    def test_drain_detaches(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.drain() == []

    def test_null_span_is_reentrant_noop(self):
        with NULL_SPAN as a:
            with NULL_SPAN as b:
                a.set(x=1)
                b.set(y=2)
        assert a is b is NULL_SPAN


# A recursive op-tree: each node is (n_events, [children]). Driving the
# tracer from a random tree and asserting structural invariants is the
# property-level version of "well-formed by construction".
_OP_TREE = st.recursive(
    st.tuples(st.integers(min_value=0, max_value=2), st.just([])),
    lambda children: st.tuples(
        st.integers(min_value=0, max_value=2),
        st.lists(children, max_size=3),
    ),
    max_leaves=12,
)


def _drive(tracer: Tracer, clock: _ManualClock, node, depth=0) -> None:
    n_events, children = node
    with tracer.span(f"op{depth}"):
        for i in range(n_events):
            tracer.event(f"ev{i}")
        for child in children:
            clock.t += 0.5
            _drive(tracer, clock, child, depth + 1)
        clock.t += 0.25


def _assert_well_formed(span) -> None:
    assert span.start <= span.end
    if span.kind == "instant":
        assert span.start == span.end
        assert not span.children
    previous_seq = span.seq
    for child in span.children:
        assert child.seq > previous_seq
        assert span.start <= child.start
        assert child.end <= span.end
        _assert_well_formed(child)
        previous_seq = max(s.seq for s in child.walk())


class TestTracerProperties:
    @given(st.lists(_OP_TREE, min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_random_op_trees_produce_well_formed_forests(self, forest):
        clock = _ManualClock()
        tracer = Tracer(now=clock.now)
        for node in forest:
            _drive(tracer, clock, node)
        assert tracer.open_spans == 0
        roots = tracer.drain()
        assert len(roots) == len(forest)
        for root in roots:
            _assert_well_formed(root)


class TestTracingUnderFaults:
    """Span trees must stay well-formed whatever a fault plan throws at
    the stack: drops, retries, brownouts, and OCSP rot all exit through
    the same context managers."""

    @given(
        p_drop=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        p_http=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        p_ocsp=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_fault_plans_never_break_the_span_forest(
        self, p_drop, p_http, p_ocsp, seed
    ):
        from repro import WorldConfig, build_world
        from repro.faults import FaultPlan, FaultRule
        from repro.measurement.runner import MeasurementCampaign

        plan = FaultPlan(
            rules=(
                FaultRule(name="ns-flaky", layer="dns", kind="drop",
                          probability=round(p_drop, 2)),
                FaultRule(name="brownout", layer="web", kind="http_error",
                          status=503, probability=round(p_http, 2),
                          rank_window=(1, 3)),
                FaultRule(name="ocsp-rot", layer="tls", kind="ocsp_expired",
                          probability=round(p_ocsp, 2)),
            ),
            seed=seed,
        )
        telemetry = TelemetryConfig(metrics=True, trace=True).build()
        world = build_world(WorldConfig(n_websites=120, seed=5))
        campaign = MeasurementCampaign(
            world, limit=3, fault_plan=plan, telemetry=telemetry
        )
        for domain, rank in campaign.ranked_sites():
            campaign.measure_site(domain, rank)
        assert telemetry.tracer.open_spans == 0
        roots = telemetry.tracer.drain()
        assert [r.name for r in roots] == ["site.measure"] * 3
        for root in roots:
            _assert_well_formed(root)
            phases = [c.name for c in root.children if c.kind == "span"]
            assert phases == ["site.crawl", "site.dns", "site.tls", "site.cdn"]


class TestChromeTrace:
    def _trace(self):
        clock = _ManualClock()
        tracer = Tracer(now=clock.now)
        with tracer.span("site.measure", "measure", domain="x.com"):
            clock.t = 0.5
            tracer.event("cache.hit", "dns", qname="x.com")
            with tracer.span("dns.lookup", "dns"):
                clock.t = 1.25
        return chrome_trace(tracer.drain(), label="test trace")

    def test_events_are_balanced_and_nested(self):
        payload = json.loads(self._trace())
        events = payload["traceEvents"]
        assert [e["ph"] for e in events] == ["M", "M", "B", "i", "B", "E", "E"]
        assert events[0]["args"]["name"] == "test trace"
        assert events[1]["args"]["name"] == "simulated clock"

    def test_timestamps_are_simulated_microseconds(self):
        events = json.loads(self._trace())["traceEvents"]
        begin = [e for e in events if e["ph"] == "B"]
        assert begin[0]["ts"] == 0
        assert begin[1]["ts"] == 500_000
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "t" and instant["ts"] == 500_000

    def test_output_is_canonical_json(self):
        text = self._trace()
        assert text.endswith("\n")
        payload = json.loads(text)
        assert text == json.dumps(payload, indent=2, sort_keys=True) + "\n"
        assert self._trace() == text

    def test_args_carry_seq_and_attrs(self):
        events = json.loads(self._trace())["traceEvents"]
        root = next(e for e in events if e.get("name") == "site.measure")
        assert root["args"]["domain"] == "x.com"
        assert root["args"]["seq"] == 1


def _load_schema_checker():
    import importlib.util
    from pathlib import Path

    path = (
        Path(__file__).resolve().parent.parent
        / "scripts"
        / "check_trace_schema.py"
    )
    spec = importlib.util.spec_from_file_location("check_trace_schema", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestTraceSchemaChecker:
    """The CI gate (scripts/check_trace_schema.py) must accept what the
    exporter produces and reject structural corruption."""

    def test_exporter_output_validates(self):
        clock = _ManualClock()
        tracer = Tracer(now=clock.now)
        with tracer.span("site.measure", "measure", domain="x.com"):
            tracer.event("cache.hit", "dns")
            with tracer.span("dns.lookup", "dns"):
                clock.t = 1.0
        payload = json.loads(chrome_trace(tracer.drain()))
        assert _load_schema_checker().validate(payload) == []

    def test_corruptions_are_rejected(self):
        checker = _load_schema_checker()
        clock = _ManualClock()
        tracer = Tracer(now=clock.now)
        with tracer.span("a"):
            pass
        text = chrome_trace(tracer.drain())
        intact = json.loads(text)
        assert checker.validate(intact) == []
        unbalanced = json.loads(text)
        unbalanced["traceEvents"] = [
            e for e in unbalanced["traceEvents"] if e["ph"] != "E"
        ]
        assert any("never closed" in e for e in checker.validate(unbalanced))
        drifting = json.loads(text)
        drifting["traceEvents"][-1]["ts"] = -5
        assert checker.validate(drifting)


class TestMetricsExport:
    def _registry(self):
        reg = MetricsRegistry()
        reg.count("sites", 25)
        reg.observe("site.attempts", 2, ATTEMPT_BUCKETS, layer="dns")
        return reg

    def test_roundtrip(self):
        reg = self._registry()
        again = metrics_from_json(metrics_to_json(reg))
        assert again.to_dict() == reg.to_dict()

    def test_registry_and_dict_inputs_serialize_identically(self):
        reg = self._registry()
        assert metrics_to_json(reg) == metrics_to_json(reg.to_dict())

    def test_format_marker_is_enforced(self):
        with pytest.raises(ValueError, match="repro-metrics/1"):
            metrics_from_json(json.dumps({"format": "nope", "counters": {}}))

    def test_notes_ride_along(self):
        payload = json.loads(metrics_to_json(self._registry(), notes={"k": 1}))
        assert payload["notes"] == {"k": 1}

    def test_summary_table_lists_series(self):
        text = summary_table(self._registry(), title="t")
        assert text.splitlines()[0] == "t"
        assert "sites" in text and "site.attempts{layer=dns}" in text
        assert "n=1 mean=2.00" in text

    def test_summary_table_empty(self):
        assert "(empty)" in summary_table(MetricsRegistry())


class TestTelemetryFacade:
    def test_config_is_picklable(self):
        config = TelemetryConfig(
            metrics=True, diagnostics=True, trace=True, trace_sites=("a.com",)
        )
        assert pickle.loads(pickle.dumps(config)) == config

    def test_build_wires_the_requested_components(self):
        tel = TelemetryConfig(metrics=True).build()
        assert tel.metrics is not None
        assert tel.tracer is None and tel.diagnostics is None
        tel = TelemetryConfig(
            metrics=False, trace=True, trace_sites=("a.com",)
        ).build()
        assert tel.metrics is None
        assert tel.tracer is not None
        assert tel.tracer.site_filter == frozenset({"a.com"})

    def test_disabled_components_are_noops(self):
        tel = TelemetryConfig(metrics=False).build()
        assert tel.span("x") is NULL_SPAN
        tel.event("x")
        tel.count("sites")
        tel.diag("dns.queries")
        tel.observe("x", 1)
        assert tel.drain_metrics() is None

    def test_campaign_and_diagnostic_scopes_are_separate(self):
        tel = TelemetryConfig(metrics=True, diagnostics=True).build()
        tel.count("sites")
        tel.diag("dns.queries", 5)
        assert tel.metrics.counter("sites") == 1
        assert tel.metrics.counter("dns.queries") == 0
        assert tel.diagnostics.counter("dns.queries") == 5
        state = tel.drain_metrics()
        assert state["counters"] == {"sites": 1}
        assert tel.diagnostics.counter("dns.queries") == 5
