"""Unit tests for CAs, OCSP responders/caches, and CRLs."""

import pytest

from repro.tlssim.ca import CertificateAuthority, IssuancePolicy
from repro.tlssim.crl import CertificateRevocationList
from repro.tlssim.ocsp import CertStatus, OCSPResponseCache


@pytest.fixture
def ca() -> CertificateAuthority:
    return CertificateAuthority(
        name="TestCA", operator="testco", ocsp_host="ocsp.testca.net",
        crl_host="crl.testca.net",
    )


class TestIssuance:
    def test_root_is_trust_anchor_material(self, ca):
        assert ca.root.is_ca and ca.root.is_self_signed

    def test_intermediate_signed_by_root(self, ca):
        assert ca.intermediate.issuer_name == ca.root.subject
        assert ca.intermediate.signature == f"sig:{ca.root.key_id}"

    def test_leaf_fields(self, ca):
        cert = ca.issue("example.com", ("example.com",), now=0.0)
        assert cert.issuer_name == ca.intermediate.subject
        assert cert.ocsp_urls == ("http://ocsp.testca.net/ocsp",)
        assert cert.crl_urls and "crl.testca.net" in cert.crl_urls[0]

    def test_policy_can_omit_endpoints(self):
        ca = CertificateAuthority(
            "NoEndpoints", "x", "ocsp.x.net",
            policy=IssuancePolicy(include_ocsp=False, include_crl=False),
        )
        cert = ca.issue("a.com", ("a.com",), now=0.0)
        assert cert.ocsp_urls == () and cert.crl_urls == ()

    def test_san_required(self, ca):
        with pytest.raises(ValueError):
            ca.issue("example.com", (), now=0.0)

    def test_chain_for(self, ca):
        cert = ca.issue("example.com", ("example.com",), now=0.0)
        chain = ca.chain_for(cert)
        assert chain.leaf is cert
        assert chain.intermediates == [ca.intermediate]

    def test_no_intermediate_mode(self):
        ca = CertificateAuthority("Direct", "x", "ocsp.x.net", use_intermediate=False)
        cert = ca.issue("a.com", ("a.com",), now=0.0)
        assert cert.issuer_name == ca.root.subject
        assert len(ca.chain_for(cert)) == 1


class TestRevocation:
    def test_revoke_and_ocsp(self, ca):
        cert = ca.issue("example.com", ("example.com",), now=0.0)
        assert ca.ocsp_responder.status_of(cert.serial, 0.0).status == CertStatus.GOOD
        ca.revoke(cert.serial)
        assert ca.is_revoked(cert.serial)
        assert ca.ocsp_responder.status_of(cert.serial, 0.0).status == CertStatus.REVOKED

    def test_unrevoke(self, ca):
        cert = ca.issue("example.com", ("example.com",), now=0.0)
        ca.revoke(cert.serial)
        ca.unrevoke(cert.serial)
        assert ca.ocsp_responder.status_of(cert.serial, 0.0).status == CertStatus.GOOD

    def test_revoking_foreign_serial_rejected(self, ca):
        with pytest.raises(ValueError):
            ca.revoke(999_999_999)

    def test_unknown_serial_status(self, ca):
        assert ca.ocsp_responder.status_of(123456789, 0.0).status == CertStatus.UNKNOWN

    def test_misconfiguration_revokes_everything(self, ca):
        cert = ca.issue("example.com", ("example.com",), now=0.0)
        ca.ocsp_responder.misconfigured_revoke_all = True
        assert ca.ocsp_responder.status_of(cert.serial, 0.0).status == CertStatus.REVOKED
        ca.ocsp_responder.misconfigured_revoke_all = False
        assert ca.ocsp_responder.status_of(cert.serial, 0.0).status == CertStatus.GOOD

    def test_response_validity_window(self, ca):
        response = ca.ocsp_responder.status_of(1, now=100.0)
        assert response.is_fresh_at(100.0)
        assert response.is_fresh_at(100.0 + ca.ocsp_responder.response_lifetime)
        assert not response.is_fresh_at(101.0 + ca.ocsp_responder.response_lifetime)

    def test_crl_contents(self, ca):
        cert = ca.issue("example.com", ("example.com",), now=0.0)
        ca.revoke(cert.serial)
        crl = ca.cdp.current_crl(now=0.0)
        assert crl.is_revoked(cert.serial)
        assert not crl.is_revoked(cert.serial + 1)
        assert crl.is_fresh_at(0.0)

    def test_crl_freshness(self):
        crl = CertificateRevocationList("x", this_update=0.0, next_update=10.0)
        assert crl.is_fresh_at(5.0)
        assert not crl.is_fresh_at(11.0)


class TestOcspClientCache:
    def test_caches_fresh_responses(self, ca):
        cache = OCSPResponseCache()
        response = ca.ocsp_responder.status_of(1, now=0.0)
        cache.put(response)
        assert cache.get(1, now=0.0) is response
        assert cache.hits == 1

    def test_expired_responses_dropped(self, ca):
        cache = OCSPResponseCache()
        response = ca.ocsp_responder.status_of(1, now=0.0)
        cache.put(response)
        assert cache.get(1, now=response.next_update + 1) is None
        assert len(cache) == 0

    def test_sticky_bad_responses(self, ca):
        """The GlobalSign dynamic: a cached REVOKED response outlives the fix."""
        cache = OCSPResponseCache()
        ca.ocsp_responder.misconfigured_revoke_all = True
        bad = ca.ocsp_responder.status_of(1, now=0.0)
        cache.put(bad)
        ca.ocsp_responder.misconfigured_revoke_all = False
        cached = cache.get(1, now=100.0)
        assert cached is not None and cached.status == CertStatus.REVOKED
