"""Unit tests for certificates and chains."""

import pytest

from repro.tlssim.certificate import Certificate, CertificateChain, next_serial


def make_cert(**overrides) -> Certificate:
    defaults = dict(
        subject="example.com",
        san=("example.com", "*.example.com"),
        issuer_name="test intermediate ca",
        serial=next_serial(),
        not_before=0.0,
        not_after=1000.0,
    )
    defaults.update(overrides)
    return Certificate(**defaults)


class TestCertificate:
    def test_serials_unique(self):
        assert next_serial() != next_serial()

    def test_normalization(self):
        cert = make_cert(subject="Example.COM", san=("WWW.Example.COM",))
        assert cert.subject == "example.com"
        assert cert.san == ("www.example.com",)

    def test_empty_validity_rejected(self):
        with pytest.raises(ValueError):
            make_cert(not_before=10.0, not_after=10.0)

    def test_hostname_match_exact_and_wildcard(self):
        cert = make_cert()
        assert cert.matches_hostname("example.com")
        assert cert.matches_hostname("www.example.com")
        assert not cert.matches_hostname("a.b.example.com")
        assert not cert.matches_hostname("other.org")

    def test_hostname_falls_back_to_subject_without_san(self):
        cert = make_cert(san=())
        assert cert.matches_hostname("example.com")

    def test_validity_window(self):
        cert = make_cert(not_before=100.0, not_after=200.0)
        assert not cert.is_valid_at(99.9)
        assert cert.is_valid_at(150.0)
        assert cert.is_valid_at(200.0)
        assert not cert.is_valid_at(200.1)

    def test_self_signed_detection(self):
        cert = make_cert(subject="root ca", issuer_name="Root CA", san=())
        assert cert.is_self_signed


class TestChain:
    def test_issuer_lookup(self):
        inter = make_cert(
            subject="test intermediate ca", issuer_name="test root ca",
            san=(), is_ca=True,
        )
        leaf = make_cert()
        chain = CertificateChain(leaf=leaf, intermediates=[inter])
        assert chain.issuer_of(leaf) is inter
        assert chain.issuer_of(inter) is None
        assert len(chain) == 2

    def test_non_ca_not_an_issuer(self):
        fake = make_cert(subject="test intermediate ca", san=(), is_ca=False)
        leaf = make_cert()
        chain = CertificateChain(leaf=leaf, intermediates=[fake])
        assert chain.issuer_of(leaf) is None
