"""Unit tests for chain validation and revocation checking."""

import pytest

from repro.tlssim.ca import CertificateAuthority
from repro.tlssim.certificate import CertificateChain
from repro.tlssim.errors import (
    CertificateExpiredError,
    HostnameMismatchError,
    RevocationCheckError,
    RevokedCertificateError,
    UntrustedIssuerError,
)
from repro.tlssim.validation import (
    RevocationPolicy,
    TrustStore,
    validate_certificate,
)


@pytest.fixture
def ca():
    return CertificateAuthority("VCA", "vca", "ocsp.vca.net")


@pytest.fixture
def store(ca):
    return TrustStore([ca.root])


def handshake(ca, domain="example.com", **issue_kwargs):
    cert = ca.issue(domain, (domain, f"*.{domain}"), now=0.0, **issue_kwargs)
    return cert, ca.chain_for(cert)


def ocsp_fetcher_for(ca, now=1.0):
    def fetch(url, serial):
        return ca.ocsp_responder.status_of(serial, now)
    return fetch


class TestTrustStore:
    def test_only_self_signed_ca_roots(self, ca):
        store = TrustStore()
        with pytest.raises(ValueError):
            store.add(ca.intermediate)
        store.add(ca.root)
        assert len(store) == 1
        assert store.find(ca.root.subject) is ca.root


class TestChainValidation:
    def test_valid_chain(self, ca, store):
        _, chain = handshake(ca)
        report = validate_certificate(
            "example.com", chain, store, now=1.0,
            fetch_ocsp=ocsp_fetcher_for(ca),
        )
        assert report.ok and report.chain_ok

    def test_hostname_mismatch(self, ca, store):
        _, chain = handshake(ca)
        with pytest.raises(HostnameMismatchError):
            validate_certificate("other.org", chain, store, now=1.0)

    def test_expired_leaf(self, ca, store):
        cert = ca.issue("example.com", ("example.com",), now=0.0, validity=10.0)
        with pytest.raises(CertificateExpiredError):
            validate_certificate(
                "example.com", ca.chain_for(cert), store, now=11.0
            )

    def test_untrusted_root(self, ca):
        other = CertificateAuthority("Other", "o", "ocsp.o.net")
        _, chain = handshake(ca)
        with pytest.raises(UntrustedIssuerError):
            validate_certificate(
                "example.com", chain, TrustStore([other.root]), now=1.0,
                fetch_ocsp=ocsp_fetcher_for(ca),
            )

    def test_missing_intermediate(self, ca, store):
        cert, _ = handshake(ca)
        broken = CertificateChain(leaf=cert, intermediates=[])
        with pytest.raises(UntrustedIssuerError):
            validate_certificate("example.com", broken, store, now=1.0)

    def test_forged_signature(self, ca, store):
        from dataclasses import replace

        cert, chain = handshake(ca)
        forged = replace(cert, signature="sig:attacker-key")
        with pytest.raises(UntrustedIssuerError):
            validate_certificate(
                "example.com",
                CertificateChain(leaf=forged, intermediates=chain.intermediates),
                store, now=1.0,
            )


class TestRevocationChecking:
    def test_live_ocsp_good(self, ca, store):
        _, chain = handshake(ca)
        report = validate_certificate(
            "example.com", chain, store, now=1.0,
            fetch_ocsp=ocsp_fetcher_for(ca),
        )
        assert report.revocation_checked
        assert report.revocation_source == "ocsp"

    def test_live_ocsp_revoked(self, ca, store):
        cert, chain = handshake(ca)
        ca.revoke(cert.serial)
        with pytest.raises(RevokedCertificateError):
            validate_certificate(
                "example.com", chain, store, now=1.0,
                fetch_ocsp=ocsp_fetcher_for(ca),
            )

    def test_stapled_response_avoids_ca_contact(self, ca, store):
        cert, chain = handshake(ca)
        stapled = ca.ocsp_responder.status_of(cert.serial, now=0.5)

        def exploding_fetch(url, serial):
            raise AssertionError("CA should not be contacted when stapled")

        report = validate_certificate(
            "example.com", chain, store, now=1.0,
            stapled_response=stapled, fetch_ocsp=exploding_fetch,
        )
        assert report.stapled and report.revocation_source == "stapled"

    def test_stale_staple_falls_back(self, ca, store):
        cert, chain = handshake(ca)
        stapled = ca.ocsp_responder.status_of(cert.serial, now=0.0)
        late = stapled.next_update + 10
        report = validate_certificate(
            "example.com", chain, store, now=late,
            stapled_response=stapled,
            fetch_ocsp=ocsp_fetcher_for(ca, now=late),
        )
        assert report.revocation_source == "ocsp"

    def test_hard_fail_when_unreachable(self, ca, store):
        _, chain = handshake(ca)
        with pytest.raises(RevocationCheckError):
            validate_certificate(
                "example.com", chain, store, now=1.0,
                fetch_ocsp=lambda url, serial: None,
                policy=RevocationPolicy.HARD_FAIL,
            )

    def test_soft_fail_when_unreachable(self, ca, store):
        _, chain = handshake(ca)
        report = validate_certificate(
            "example.com", chain, store, now=1.0,
            fetch_ocsp=lambda url, serial: None,
            policy=RevocationPolicy.SOFT_FAIL,
        )
        assert report.ok and not report.revocation_checked

    def test_crl_fallback(self, ca, store):
        cert, chain = handshake(ca)
        ca.revoke(cert.serial)
        with pytest.raises(RevokedCertificateError):
            validate_certificate(
                "example.com", chain, store, now=1.0,
                fetch_ocsp=lambda url, serial: None,
                fetch_crl=lambda url: ca.cdp.current_crl(1.0),
            )
        ca.unrevoke(cert.serial)
        report = validate_certificate(
            "example.com", chain, store, now=1.0,
            fetch_ocsp=lambda url, serial: None,
            fetch_crl=lambda url: ca.cdp.current_crl(1.0),
        )
        assert report.revocation_source == "crl"

    def test_must_staple_without_staple_fails(self, ca, store):
        cert = ca.issue(
            "example.com", ("example.com",), now=0.0, must_staple=True
        )
        with pytest.raises(RevocationCheckError):
            validate_certificate(
                "example.com", ca.chain_for(cert), store, now=1.0,
                fetch_ocsp=ocsp_fetcher_for(ca),
            )

    def test_must_staple_with_staple_ok(self, ca, store):
        cert = ca.issue(
            "example.com", ("example.com",), now=0.0, must_staple=True
        )
        stapled = ca.ocsp_responder.status_of(cert.serial, now=0.5)
        report = validate_certificate(
            "example.com", ca.chain_for(cert), store, now=1.0,
            stapled_response=stapled,
        )
        assert report.ok
