"""Integration tests for the web client and crawler over a generated world."""

import pytest

from repro.tlssim.validation import RevocationPolicy
from repro.websim.crawler import CrawlResult


@pytest.fixture(scope="module")
def any_https_site(world_2020):
    for spec in world_2020.spec.websites:
        if spec.https and spec.ocsp_stapled:
            return spec
    pytest.skip("no stapled https site in world")


class TestWebClient:
    def test_fetch_landing_page(self, world_2020):
        spec = world_2020.spec.websites[0]
        scheme = "https" if spec.https else "http"
        result = world_2020.web_client.get(f"{scheme}://www.{spec.domain}/")
        assert result.ok, result.error
        assert result.status == 200
        assert result.ip

    def test_https_validates_chain(self, world_2020):
        spec = next(w for w in world_2020.spec.websites if w.https)
        result = world_2020.web_client.get(f"https://www.{spec.domain}/")
        assert result.https_ok
        assert result.chain is not None
        assert result.validation.chain_ok

    def test_stapled_site_presents_staple(self, world_2020, any_https_site):
        result = world_2020.web_client.get(f"https://www.{any_https_site.domain}/")
        assert result.stapled_response is not None

    def test_unknown_host_fails_cleanly(self, world_2020):
        result = world_2020.web_client.get("https://no-such-site.example/")
        assert not result.ok
        assert result.error.startswith("dns:")

    def test_bad_url_fails_cleanly(self, world_2020):
        result = world_2020.web_client.get("not a url")
        assert not result.ok and result.error.startswith("bad-url")

    def test_hard_fail_client_checks_revocation(self, world_2020):
        spec = next(
            w for w in world_2020.spec.websites
            if w.https and w.ca_key not in (None, "_private") and not w.ocsp_stapled
        )
        client = world_2020.fresh_client(policy=RevocationPolicy.HARD_FAIL)
        result = client.get(f"https://www.{spec.domain}/")
        assert result.ok, result.error
        assert result.validation.revocation_checked

    def test_revoked_cert_rejected(self, world_2020):
        spec = next(
            w for w in world_2020.spec.websites
            if w.https and w.ca_key not in (None, "_private") and not w.ocsp_stapled
        )
        infra = world_2020.website_infra[spec.domain]
        ca = infra.issuing_ca
        ca.revoke(infra.chain.leaf.serial)
        try:
            client = world_2020.fresh_client(policy=RevocationPolicy.HARD_FAIL)
            result = client.get(f"https://www.{spec.domain}/")
            assert not result.ok
            assert "revoked" in result.error
        finally:
            ca.unrevoke(infra.chain.leaf.serial)


class TestCrawler:
    def test_crawl_records_hostnames(self, world_2020):
        spec = next(w for w in world_2020.spec.websites if w.n_internal_resources >= 3)
        result: CrawlResult = world_2020.crawler.crawl(spec.domain)
        assert result.ok
        assert result.landing_url.endswith(f"{spec.domain}/")
        assert len(result.resource_hostnames) >= 1

    def test_crawl_extracts_certificate_fields(self, world_2020):
        spec = next(w for w in world_2020.spec.websites if w.https)
        result = world_2020.crawler.crawl(spec.domain)
        assert result.https
        assert result.certificate is not None
        assert spec.domain in result.san

    def test_crawl_falls_back_to_http(self, world_2020):
        spec = next(w for w in world_2020.spec.websites if not w.https)
        result = world_2020.crawler.crawl(spec.domain)
        assert result.ok and not result.https
        assert result.landing_url.startswith("http://")

    def test_crawl_of_dead_domain(self, world_2020):
        result = world_2020.crawler.crawl("definitely-not-registered.example")
        assert not result.ok
        assert result.error

    def test_external_resources_visible(self, world_2020):
        spec = next(
            w for w in world_2020.spec.websites if w.external_resource_domains
        )
        result = world_2020.crawler.crawl(spec.domain)
        external_hosts = {
            f"cdn.{d}" for d in spec.external_resource_domains
        }
        assert external_hosts & set(result.resource_hostnames)

    def test_hostnames_with_self_includes_landing_host(self, world_2020):
        spec = world_2020.spec.websites[0]
        result = world_2020.crawler.crawl(spec.domain)
        assert result.hostnames_with_self()[0] == f"www.{spec.domain}"
