"""Unit tests for the HTTP fabric, virtual hosts, and CDN mechanics."""

import pytest

from repro.websim.cdn import CdnProvider
from repro.websim.http import (
    ConnectionFailedError,
    HttpFabric,
    HttpResponse,
    HttpServer,
    VirtualHost,
)


def ok_handler(host, path):
    return HttpResponse(status=200, body=f"{host}{path}")


@pytest.fixture
def server():
    srv = HttpServer("origin.x.com", ["10.1.0.1"], operator="x")
    srv.add_vhost(VirtualHost("x.com", ok_handler))
    srv.add_vhost(VirtualHost("*.edge.x.com", ok_handler))
    return srv


class TestVirtualHost:
    def test_exact_match(self, server):
        assert server.vhost_for("x.com").hostname == "x.com"

    def test_wildcard_match(self, server):
        assert server.vhost_for("cust1.edge.x.com") is not None
        assert server.vhost_for("edge.x.com") is None  # apex not covered

    def test_exact_beats_wildcard(self, server):
        server.add_vhost(VirtualHost("special.edge.x.com", ok_handler))
        assert server.vhost_for("special.edge.x.com").hostname == "special.edge.x.com"

    def test_unknown_host_is_421(self, server):
        assert server.request("unknown.org", "/").status == 421

    def test_request_dispatch(self, server):
        response = server.request("x.com", "/index")
        assert response.ok and response.body == "x.com/index"

    def test_https_support_flag(self, server):
        assert not server.vhost_for("x.com").supports_https


class TestFabric:
    def test_connect_and_request(self, server):
        fabric = HttpFabric()
        fabric.register_server(server)
        assert fabric.connect("10.1.0.1") is server

    def test_unknown_ip(self):
        fabric = HttpFabric()
        with pytest.raises(ConnectionFailedError):
            fabric.connect("10.9.9.9")

    def test_outage(self, server):
        fabric = HttpFabric()
        fabric.register_server(server)
        fabric.set_server_available(server, False)
        with pytest.raises(ConnectionFailedError):
            fabric.connect("10.1.0.1")
        fabric.set_server_available(server, True)
        assert fabric.connect("10.1.0.1") is server

    def test_ip_conflict(self, server):
        fabric = HttpFabric()
        fabric.register_server(server)
        with pytest.raises(ValueError):
            fabric.register_server(HttpServer("other", ["10.1.0.1"]))

    def test_counters(self, server):
        fabric = HttpFabric()
        fabric.register_server(server)
        fabric.connect("10.1.0.1")
        fabric.set_server_available(server, False)
        with pytest.raises(ConnectionFailedError):
            fabric.connect("10.1.0.1")
        assert fabric.connections == 2 and fabric.failures == 1

    def test_server_needs_ip(self):
        with pytest.raises(ValueError):
            HttpServer("no-ip", [])


class TestCdnProvider:
    def make_cdn(self):
        edge = HttpServer("edge.fastcdn.net", ["10.2.0.1", "10.2.0.2"], operator="fastcdn")
        return CdnProvider(
            name="FastCDN", operator="fastcdn",
            cname_suffixes=["fastcdn.net", "fastcdn-alt.org"],
            edge_server=edge,
        )

    def test_needs_suffix(self):
        edge = HttpServer("e", ["10.0.0.1"])
        with pytest.raises(ValueError):
            CdnProvider("X", "x", [], edge)

    def test_edge_hostname_allocation(self):
        cdn = self.make_cdn()
        assert cdn.edge_hostname_for("Customer-1") == "customer-1.fastcdn.net"

    def test_serves_cname(self):
        cdn = self.make_cdn()
        assert cdn.serves_cname("a.fastcdn.net")
        assert cdn.serves_cname("b.fastcdn-alt.org")
        assert not cdn.serves_cname("a.othercdn.net")
        assert not cdn.serves_cname("notfastcdn.net")

    def test_deploy_registers_vhosts(self):
        cdn = self.make_cdn()
        deployment = cdn.deploy("cust1", ["static.cust1.com"])
        assert deployment.edge_hostname == "cust1.fastcdn.net"
        # Edge answers for both the customer hostname (SNI) and edge name.
        assert cdn.edge_server.vhost_for("static.cust1.com") is not None
        assert cdn.edge_server.vhost_for("cust1.fastcdn.net") is not None
        response = cdn.edge_server.request("static.cust1.com", "/obj")
        assert response.ok and response.headers.get("x-cache") == "HIT"

    def test_custom_handler(self):
        cdn = self.make_cdn()
        cdn.deploy(
            "api", ["api.cust.com"],
            handler=lambda host, path: HttpResponse(status=503),
        )
        assert cdn.edge_server.request("api.cust.com", "/").status == 503
