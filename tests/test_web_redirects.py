"""Tests for HTTP redirect handling in the web client."""

import pytest

from repro.websim.http import HttpResponse, HttpServer, VirtualHost


def redirect(target: str, status: int = 301):
    def handle(host, path):
        return HttpResponse(status=status, headers={"Location": target})
    return handle


def page(body: str):
    def handle(host, path):
        return HttpResponse(status=200, body=body)
    return handle


@pytest.fixture
def world_client(world_2020):
    return world_2020.web_client


class TestClientRedirects:
    def _server_with(self, world, vhosts):
        from repro.dnssim.records import ARecord

        server = HttpServer("redir.test", ["10.200.0.1"], operator="test")
        for vhost in vhosts:
            server.add_vhost(vhost)
        world.http_fabric.register_server(server)
        return server

    def test_apex_to_www_redirect_followed(self, world_2020):
        # Find a canonicalizing site in the generated world.
        target = next(
            (
                w for w in world_2020.spec.websites
                if sum(ord(c) for c in w.domain) % 5 == 0
            ),
            None,
        )
        if target is None:
            pytest.skip("no canonicalizing site in world")
        scheme = "https" if target.https else "http"
        result = world_2020.web_client.get(f"{scheme}://{target.domain}/")
        assert result.ok, result.error
        assert result.redirect_chain == [f"{scheme}://www.{target.domain}/"]
        assert result.final_url.startswith(f"{scheme}://www.")

    def test_crawler_survives_canonicalizing_sites(self, world_2020):
        target = next(
            (
                w for w in world_2020.spec.websites
                if sum(ord(c) for c in w.domain) % 5 == 0
            ),
            None,
        )
        if target is None:
            pytest.skip("no canonicalizing site in world")
        crawl = world_2020.crawler.crawl(target.domain, prefer_www=False)
        assert crawl.ok

    def test_redirect_loop_detected(self, world_2020):
        from repro.dnssim.records import ARecord
        from repro.dnssim.zone import Zone
        from repro.dnssim.records import SOARecord

        server = HttpServer("loop.test-zone.com", ["10.200.1.1"], operator="t")
        server.add_vhost(VirtualHost(
            "loop.test-zone.com", redirect("http://loop.test-zone.com/")
        ))
        world_2020.http_fabric.register_server(server)
        # Give it DNS presence via a one-off zone on the TLD server.
        tld_server = world_2020.dns_network.server_at(
            world_2020.resolver._root_hints[  # type: ignore[attr-defined]
                next(iter(world_2020.resolver._root_hints))
            ]
        )
        zone = Zone("test-zone.com", SOARecord("ns1.test-zone.com", "h.test-zone.com"))
        zone.add("loop.test-zone.com", ARecord("10.200.1.1"))
        zone.add("test-zone.com", ARecord("10.200.1.1"))
        # Serve from the root server directly (it answers authoritatively).
        tld_server.serve_zone(zone)
        # The injected zone bypasses the com delegation, so resolution must
        # start from the root: drop any cached com NS from earlier tests.
        world_2020.resolver.cache.flush()
        result = world_2020.web_client.get("http://loop.test-zone.com/")
        assert not result.ok
        assert "too many redirects" in result.error

    def test_no_location_header_is_plain_response(self, world_2020):
        spec = world_2020.spec.websites[1]
        scheme = "https" if spec.https else "http"
        result = world_2020.web_client.get(f"{scheme}://www.{spec.domain}/")
        assert result.redirect_chain == []
