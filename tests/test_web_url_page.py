"""Unit tests for URL parsing and the page model / HTML extraction."""

import pytest

from repro.websim.page import PageBuilder, Resource, WebPage, extract_resource_urls
from repro.websim.url import ParsedUrl, UrlError, join_url, parse_url


class TestParseUrl:
    def test_basic(self):
        parsed = parse_url("https://Example.com/a/b?q=1")
        assert parsed.scheme == "https"
        assert parsed.host == "example.com"
        assert parsed.path == "/a/b?q=1"
        assert parsed.is_https

    def test_default_path(self):
        assert parse_url("http://x.com").path == "/"

    def test_port_stripped(self):
        assert parse_url("http://x.com:8080/p").host == "x.com"

    def test_rejects_relative(self):
        with pytest.raises(UrlError):
            parse_url("/relative/path")

    def test_rejects_unknown_scheme(self):
        with pytest.raises(UrlError):
            parse_url("ftp://x.com/file")

    def test_rejects_empty_host(self):
        with pytest.raises(UrlError):
            parse_url("https:///path")

    def test_str_roundtrip(self):
        assert str(parse_url("https://x.com/p")) == "https://x.com/p"


class TestJoinUrl:
    def test_absolute(self):
        base = parse_url("https://x.com/a/")
        assert join_url(base, "http://y.com/z").host == "y.com"

    def test_scheme_relative(self):
        base = parse_url("https://x.com/a/")
        joined = join_url(base, "//cdn.y.com/lib.js")
        assert joined.scheme == "https" and joined.host == "cdn.y.com"

    def test_root_relative(self):
        base = parse_url("https://x.com/a/b")
        assert join_url(base, "/c").path == "/c"

    def test_path_relative(self):
        base = parse_url("https://x.com/a/b")
        assert join_url(base, "c.png").path == "/a/c.png"


class TestPageRendering:
    def test_render_and_extract_roundtrip(self):
        page = WebPage(
            url="https://x.com/",
            title="X",
            resources=[
                Resource("https://static0.x.com/app.js", "script"),
                Resource("https://img.x.com/logo.png", "image"),
                Resource("/assets/site.css", "stylesheet"),
                Resource("https://cdn.tracker.net/t.js", "script"),
            ],
        )
        html = PageBuilder().render(page)
        extracted = extract_resource_urls(html)
        assert "https://static0.x.com/app.js" in extracted
        assert "https://img.x.com/logo.png" in extracted
        assert "/assets/site.css" in extracted
        assert "https://cdn.tracker.net/t.js" in extracted

    def test_extract_dedupes_in_order(self):
        html = (
            '<img src="https://a.com/1.png">'
            '<img src="https://b.com/2.png">'
            '<img src="https://a.com/1.png">'
        )
        assert extract_resource_urls(html) == [
            "https://a.com/1.png", "https://b.com/2.png",
        ]

    def test_extract_handles_mixed_quotes_and_case(self):
        html = "<IMG SRC='https://a.com/x.png'><script src=\"https://b.com/y.js\"></script>"
        assert extract_resource_urls(html) == [
            "https://a.com/x.png", "https://b.com/y.js",
        ]

    def test_extract_ignores_tagless_text(self):
        assert extract_resource_urls("src=https://a.com/x") == []

    def test_resource_urls_helper(self):
        page = WebPage(url="u", resources=[Resource("a", "image")])
        assert page.resource_urls() == ["a"]
