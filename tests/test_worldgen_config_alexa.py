"""Unit tests for world configuration, rank scaling, and the Alexa model."""

import random

import pytest

from repro.worldgen.alexa import (
    CORNER_CASE_DOMAINS,
    AlexaList,
    churn_2016_to_2020,
    generate_domains,
)
from repro.worldgen.config import CalibrationTargets, WorldConfig


class TestWorldConfig:
    def test_rank_scale(self):
        config = WorldConfig(n_websites=10_000)
        assert config.rank_scale == 10.0
        assert config.effective_rank(50) == 500.0

    def test_scaled_bucket(self):
        config = WorldConfig(n_websites=10_000)
        assert config.scaled_bucket(100) == 10
        assert config.scaled_bucket(100_000) == 10_000

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            WorldConfig(n_websites=50)

    def test_years_span_paper_window(self):
        # Intermediate years are valid — the timeline interpolates between
        # the paper's 2016 and 2020 snapshots — but not years outside it.
        assert WorldConfig(year=2018).year == 2018
        for year in (2015, 2021):
            with pytest.raises(ValueError):
                WorldConfig(year=year)

    def test_targets_defaults(self):
        targets = CalibrationTargets()
        assert targets.n_cdns == 86 and targets.n_cas == 59
        assert targets.n_cdns_2016 == 47 and targets.n_cas_2016 == 70


class TestDomainGeneration:
    def test_count_and_uniqueness(self):
        domains = generate_domains(500, random.Random(1))
        assert len(domains) == 500
        assert len(set(domains)) == 500

    def test_corner_cases_pinned_on_top(self):
        domains = generate_domains(500, random.Random(1))
        assert domains[: len(CORNER_CASE_DOMAINS)] == list(CORNER_CASE_DOMAINS)

    def test_deterministic(self):
        a = generate_domains(300, random.Random(7))
        b = generate_domains(300, random.Random(7))
        assert a == b

    def test_without_corner_cases(self):
        domains = generate_domains(200, random.Random(1), include_corner_cases=False)
        assert "google.com" not in domains


class TestAlexaList:
    def test_rank_lookup(self):
        lst = AlexaList(2020, ["a.com", "b.com", "c.com"])
        assert lst.rank_of("b.com") == 2
        assert lst.top(2) == ["a.com", "b.com"]
        assert "c.com" in lst and "z.com" not in lst
        with pytest.raises(KeyError):
            lst.rank_of("z.com")


class TestChurn:
    def test_death_rate(self):
        rng = random.Random(3)
        lst_2016 = AlexaList(2016, generate_domains(1000, rng))
        lst_2020, churn = churn_2016_to_2020(lst_2016, rng)
        assert len(lst_2020) == len(lst_2016)
        assert 0.02 <= len(churn.dead) / 1000 <= 0.06  # ~3.8%
        assert len(churn.newcomers) == len(churn.dead)

    def test_corner_cases_never_die(self):
        rng = random.Random(3)
        lst_2016 = AlexaList(2016, generate_domains(1000, rng))
        _, churn = churn_2016_to_2020(lst_2016, rng)
        assert not set(churn.dead) & set(CORNER_CASE_DOMAINS)

    def test_survivor_order_preserved(self):
        rng = random.Random(3)
        lst_2016 = AlexaList(2016, generate_domains(500, rng))
        lst_2020, churn = churn_2016_to_2020(lst_2016, rng)
        survivors_in_2020 = [d for d in lst_2020.domains if d in set(churn.survivors)]
        assert survivors_in_2020 == churn.survivors
