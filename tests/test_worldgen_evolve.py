"""Tests for the 2016→2020 evolution machinery."""

from dataclasses import replace

import pytest

from repro.worldgen.config import WorldConfig
from repro.worldgen.evolve import (
    CumulativeRates,
    DNS_PVT_TO_SINGLE_THIRD,
    evolve_to_2020,
)
from repro.worldgen.generate import generate_snapshot
from repro.worldgen.spec import PRIVATE


@pytest.fixture(scope="module")
def evolved_pair():
    config = WorldConfig(n_websites=1500, seed=13)
    base = generate_snapshot(replace(config, year=2016))
    spec_2020, churn = evolve_to_2020(base, config)
    return base, spec_2020, churn


class TestCumulativeRates:
    def test_annulus_conversion(self):
        rates = CumulativeRates(0.0, 7.4, 9.8, 10.7).annulus_rates()
        # k=100 bucket: 0%; (100,1K]: (74-0)/900; (1K,10K]: (980-74)/9000...
        assert rates[0] == 0.0
        assert rates[1] == pytest.approx(74 / 900 * 100)
        assert rates[2] == pytest.approx((980 - 74) / 9000 * 100)
        assert rates[3] == pytest.approx((10_700 - 980) / 90_000 * 100)

    def test_uniform_rates(self):
        rates = CumulativeRates(5.0, 5.0, 5.0, 5.0).annulus_rates()
        for rate in rates:
            assert rate == pytest.approx(5.0)

    def test_decreasing_cumulative_clamps_to_zero(self):
        rates = CumulativeRates(10.0, 1.0, 0.5, 0.1).annulus_rates()
        assert rates[0] == pytest.approx(10.0)
        assert all(r >= 0.0 for r in rates)


class TestEvolution:
    def test_population_preserved(self, evolved_pair):
        base, spec_2020, churn = evolved_pair
        assert len(spec_2020.websites) == len(base.websites)
        assert len(churn.dead) + len(churn.survivors) == len(base.websites)

    def test_dead_sites_absent(self, evolved_pair):
        _, spec_2020, churn = evolved_pair
        domains_2020 = set(spec_2020.website_by_domain())
        assert not set(churn.dead) & domains_2020

    def test_newcomers_present(self, evolved_pair):
        _, spec_2020, churn = evolved_pair
        domains_2020 = set(spec_2020.website_by_domain())
        assert set(churn.newcomers) <= domains_2020

    def test_dns_transition_rates_near_paper(self, evolved_pair):
        base, spec_2020, _ = evolved_pair
        old = base.website_by_domain()
        new = spec_2020.website_by_domain()
        common = set(old) & set(new)
        pvt_to_third = sum(
            1 for d in common
            if not old[d].dns.uses_third_party and new[d].dns.is_critical
        ) / len(common)
        third_to_pvt = sum(
            1 for d in common
            if old[d].dns.is_critical and not new[d].dns.uses_third_party
        ) / len(common)
        assert pvt_to_third == pytest.approx(0.107, abs=0.03)
        assert third_to_pvt == pytest.approx(0.060, abs=0.025)

    def test_critical_dependency_increases(self, evolved_pair):
        base, spec_2020, _ = evolved_pair
        crit16 = sum(1 for w in base.websites if w.dns.is_critical) / len(base.websites)
        crit20 = sum(1 for w in spec_2020.websites if w.dns.is_critical) / len(
            spec_2020.websites
        )
        assert 0.01 <= crit20 - crit16 <= 0.09  # paper: +4.7%

    def test_https_adoption_grows(self, evolved_pair):
        base, spec_2020, _ = evolved_pair
        https16 = sum(1 for w in base.websites if w.https) / len(base.websites)
        https20 = sum(1 for w in spec_2020.websites if w.https) / len(spec_2020.websites)
        assert https20 > https16
        assert https20 == pytest.approx(0.78, abs=0.04)

    def test_cdn_usage_grows(self, evolved_pair):
        base, spec_2020, _ = evolved_pair
        cdn16 = sum(1 for w in base.websites if w.uses_cdn) / len(base.websites)
        cdn20 = sum(1 for w in spec_2020.websites if w.uses_cdn) / len(spec_2020.websites)
        assert cdn20 > cdn16

    def test_dyn_exodus(self, evolved_pair):
        base, spec_2020, _ = evolved_pair
        dyn16 = sum(1 for w in base.websites if "dyn" in w.dns.providers)
        dyn20 = sum(1 for w in spec_2020.websites if "dyn" in w.dns.providers)
        assert dyn20 < dyn16  # the post-attack shrink (2% -> 0.6%)

    def test_symantec_customers_migrated(self, evolved_pair):
        _, spec_2020, _ = evolved_pair
        assert not any(
            w.ca_key == "symantec" for w in spec_2020.websites if w.https
        )

    def test_no_dangling_provider_references(self, evolved_pair):
        _, spec_2020, _ = evolved_pair
        for website in spec_2020.websites:
            for provider in website.dns.providers:
                assert provider == PRIVATE or provider in spec_2020.dns_providers
            for cdn in website.cdns:
                assert cdn == PRIVATE or cdn in spec_2020.cdns
            if website.https and website.ca_key not in (None, PRIVATE):
                assert website.ca_key in spec_2020.cas

    def test_pinned_corner_sites_follow_their_script(self, evolved_pair):
        _, spec_2020, _ = evolved_pair
        by_domain = spec_2020.website_by_domain()
        twitter = by_domain["twitter.com"]
        assert set(twitter.dns.providers) == {"dyn", PRIVATE}  # added redundancy
        espn = by_domain["espn.com"]
        assert espn.dns.providers == ["aws-dns"]  # private -> single third
        microsoft = by_domain["microsoft.com"]
        assert not microsoft.ocsp_stapled  # dropped stapling
