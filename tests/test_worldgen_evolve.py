"""Tests for the 2016→2020 evolution machinery."""

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.worldgen.config import WorldConfig
from repro.worldgen.evolve import (
    CumulativeRates,
    DNS_PVT_TO_SINGLE_THIRD,
    _annulus_of,
    _apply_quota,
    _apply_website_transitions,
    _rebalance_market,
    _sanitize_against_market,
    evolve_to_2020,
)
from repro.worldgen.generate import generate_snapshot
from repro.worldgen.spec import DnsSetup, PRIVATE, SnapshotSpec, WebsiteSpec


@pytest.fixture(scope="module")
def evolved_pair():
    config = WorldConfig(n_websites=1500, seed=13)
    base = generate_snapshot(replace(config, year=2016))
    spec_2020, churn = evolve_to_2020(base, config)
    return base, spec_2020, churn


class TestCumulativeRates:
    def test_annulus_conversion(self):
        rates = CumulativeRates(0.0, 7.4, 9.8, 10.7).annulus_rates()
        # k=100 bucket: 0%; (100,1K]: (74-0)/900; (1K,10K]: (980-74)/9000...
        assert rates[0] == 0.0
        assert rates[1] == pytest.approx(74 / 900 * 100)
        assert rates[2] == pytest.approx((980 - 74) / 9000 * 100)
        assert rates[3] == pytest.approx((10_700 - 980) / 90_000 * 100)

    def test_uniform_rates(self):
        rates = CumulativeRates(5.0, 5.0, 5.0, 5.0).annulus_rates()
        for rate in rates:
            assert rate == pytest.approx(5.0)

    def test_decreasing_cumulative_clamps_to_zero(self):
        rates = CumulativeRates(10.0, 1.0, 0.5, 0.1).annulus_rates()
        assert rates[0] == pytest.approx(10.0)
        assert all(r >= 0.0 for r in rates)


class TestEvolution:
    def test_population_preserved(self, evolved_pair):
        base, spec_2020, churn = evolved_pair
        assert len(spec_2020.websites) == len(base.websites)
        assert len(churn.dead) + len(churn.survivors) == len(base.websites)

    def test_dead_sites_absent(self, evolved_pair):
        _, spec_2020, churn = evolved_pair
        domains_2020 = set(spec_2020.website_by_domain())
        assert not set(churn.dead) & domains_2020

    def test_newcomers_present(self, evolved_pair):
        _, spec_2020, churn = evolved_pair
        domains_2020 = set(spec_2020.website_by_domain())
        assert set(churn.newcomers) <= domains_2020

    def test_dns_transition_rates_near_paper(self, evolved_pair):
        base, spec_2020, _ = evolved_pair
        old = base.website_by_domain()
        new = spec_2020.website_by_domain()
        common = set(old) & set(new)
        pvt_to_third = sum(
            1 for d in common
            if not old[d].dns.uses_third_party and new[d].dns.is_critical
        ) / len(common)
        third_to_pvt = sum(
            1 for d in common
            if old[d].dns.is_critical and not new[d].dns.uses_third_party
        ) / len(common)
        assert pvt_to_third == pytest.approx(0.107, abs=0.03)
        assert third_to_pvt == pytest.approx(0.060, abs=0.025)

    def test_critical_dependency_increases(self, evolved_pair):
        base, spec_2020, _ = evolved_pair
        crit16 = sum(1 for w in base.websites if w.dns.is_critical) / len(base.websites)
        crit20 = sum(1 for w in spec_2020.websites if w.dns.is_critical) / len(
            spec_2020.websites
        )
        assert 0.01 <= crit20 - crit16 <= 0.09  # paper: +4.7%

    def test_https_adoption_grows(self, evolved_pair):
        base, spec_2020, _ = evolved_pair
        https16 = sum(1 for w in base.websites if w.https) / len(base.websites)
        https20 = sum(1 for w in spec_2020.websites if w.https) / len(spec_2020.websites)
        assert https20 > https16
        assert https20 == pytest.approx(0.78, abs=0.04)

    def test_cdn_usage_grows(self, evolved_pair):
        base, spec_2020, _ = evolved_pair
        cdn16 = sum(1 for w in base.websites if w.uses_cdn) / len(base.websites)
        cdn20 = sum(1 for w in spec_2020.websites if w.uses_cdn) / len(spec_2020.websites)
        assert cdn20 > cdn16

    def test_dyn_exodus(self, evolved_pair):
        base, spec_2020, _ = evolved_pair
        dyn16 = sum(1 for w in base.websites if "dyn" in w.dns.providers)
        dyn20 = sum(1 for w in spec_2020.websites if "dyn" in w.dns.providers)
        assert dyn20 < dyn16  # the post-attack shrink (2% -> 0.6%)

    def test_symantec_customers_migrated(self, evolved_pair):
        _, spec_2020, _ = evolved_pair
        assert not any(
            w.ca_key == "symantec" for w in spec_2020.websites if w.https
        )

    def test_no_dangling_provider_references(self, evolved_pair):
        _, spec_2020, _ = evolved_pair
        for website in spec_2020.websites:
            for provider in website.dns.providers:
                assert provider == PRIVATE or provider in spec_2020.dns_providers
            for cdn in website.cdns:
                assert cdn == PRIVATE or cdn in spec_2020.cdns
            if website.https and website.ca_key not in (None, PRIVATE):
                assert website.ca_key in spec_2020.cas

    def test_pinned_corner_sites_follow_their_script(self, evolved_pair):
        _, spec_2020, _ = evolved_pair
        by_domain = spec_2020.website_by_domain()
        twitter = by_domain["twitter.com"]
        assert set(twitter.dns.providers) == {"dyn", PRIVATE}  # added redundancy
        espn = by_domain["espn.com"]
        assert espn.dns.providers == ["aws-dns"]  # private -> single third
        microsoft = by_domain["microsoft.com"]
        assert not microsoft.ocsp_stapled  # dropped stapling


def _site(domain, rank, **kw):
    return WebsiteSpec(domain=domain, rank=rank, entity=domain, **kw)


class TestQuotaAccounting:
    @settings(max_examples=50, deadline=None)
    @given(
        rates=st.tuples(*(st.floats(0, 100) for _ in range(4))),
        n=st.integers(100, 400),
        eligible_every=st.integers(1, 4),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_applied_never_exceeds_eligible_or_base(
        self, rates, n, eligible_every, seed
    ):
        """The quota invariant: per annulus, applications are bounded by
        the base population, and only eligible sites are ever acted on."""
        config = WorldConfig(n_websites=1000, seed=1)
        websites = [_site(f"w{i}.test", i + 1) for i in range(n)]
        eligible = lambda w: w.rank % eligible_every == 0  # noqa: E731
        touched = []
        applied = _apply_quota(
            websites,
            config,
            CumulativeRates(*rates),
            eligible=eligible,
            action=touched.append,
            rng=random.Random(seed),
        )
        assert applied == len(touched)
        assert applied <= sum(1 for w in websites if eligible(w))
        in_buckets = sum(
            1 for w in websites
            if _annulus_of(config.effective_rank(w.rank)) is not None
        )
        assert applied <= in_buckets
        assert all(eligible(w) for w in touched)

    def test_annulus_of_rank_beyond_top_100k_is_none(self):
        """Small worlds scale tail ranks past the paper's last bucket;
        those sites belong to no annulus (regression: they used to land
        in the (10K,100K] bucket and inflate its quota base)."""
        assert _annulus_of(100_000) == 3
        assert _annulus_of(100_001) is None
        assert _annulus_of(150_000.0) is None

    def test_quota_skips_sites_beyond_top_100k(self):
        config = WorldConfig(n_websites=100, seed=1)  # rank_scale = 1000
        websites = [_site(f"w{i}.test", i + 1) for i in range(150)]
        touched = []
        _apply_quota(
            websites,
            config,
            CumulativeRates(100.0, 100.0, 100.0, 100.0),
            eligible=lambda w: True,
            action=touched.append,
            rng=random.Random(7),
        )
        assert touched
        assert all(
            config.effective_rank(w.rank) <= 100_000 for w in touched
        )


class TestStaplingQuotaBase:
    def test_zero_2016_https_world_staples_only_new_adopters(self):
        """Table 5's denominators are 2016-HTTPS sites. With none, the
        stapling quotas must apply to nobody — newly adopted sites draw
        from NEW_HTTPS_STAPLING_RATE alone (regression: the quota base
        once included the adopters themselves, double-applying)."""
        base = generate_snapshot(WorldConfig(n_websites=800, seed=3, year=2016))
        for website in base.websites:
            website.https = False
            website.ocsp_stapled = False
            website.ca_key = None
        _apply_website_transitions(
            base.websites,
            WorldConfig(n_websites=800, seed=3),
            base.dns_providers,
            base.cdns,
            base.cas,
            random.Random(11),
            https_target=0.5,
        )
        adopters = [w for w in base.websites if w.https]
        assert adopters
        stapled = sum(1 for w in adopters if w.ocsp_stapled) / len(adopters)
        assert stapled == pytest.approx(0.119, abs=0.06)
        assert not any(w.ocsp_stapled for w in base.websites if not w.https)


class TestCdnTransitions:
    def test_no_duplicate_cdn_entries_after_evolution(self, evolved_pair):
        """Redundancy additions must decline rather than duplicate an
        existing CDN (regression: quota was burnt on no-op duplicates)."""
        _, spec_2020, _ = evolved_pair
        for website in spec_2020.websites:
            assert len(website.cdns) == len(set(website.cdns)), website.domain


class TestSanitize:
    def test_two_dead_providers_collapse_to_one_private(self):
        config = WorldConfig(n_websites=100, seed=1)
        base = generate_snapshot(replace(config, year=2016))
        website = _site(
            "doomed.test", 5,
            dns=DnsSetup(providers=["dead-a", "dead-b"], soa_masked=False),
        )
        spec = SnapshotSpec(
            year=2020,
            websites=[website],
            dns_providers=base.dns_providers,
            cdns=base.cdns,
            cas=base.cas,
        )
        _sanitize_against_market(spec, random.Random(2), config)
        assert website.dns.providers == [PRIVATE]


class _FakeProvider:
    def __init__(self, share_weight):
        self.share_weight = share_weight


class TestRebalanceDeadBand:
    def _slots(self, counts):
        websites = []
        rank = 1
        for key, count in counts.items():
            for _ in range(count):
                websites.append(
                    _site(f"w{rank}.test", rank, dns=DnsSetup(providers=[key]))
                )
                rank += 1
        return websites

    def test_within_band_imbalance_is_left_alone(self):
        websites = self._slots({"a": 55, "b": 45})
        market = {"a": _FakeProvider(1.0), "b": _FakeProvider(1.0)}
        _rebalance_market(
            websites, market, random.Random(5),
            get_keys=lambda w: w.dns.providers,
            set_key=lambda w, i, k: w.dns.providers.__setitem__(i, k),
            tolerance=1.0,
        )
        counts = {"a": 0, "b": 0}
        for w in websites:
            counts[w.dns.providers[0]] += 1
        assert counts == {"a": 55, "b": 45}  # |55-50| <= sqrt(50)

    def test_beyond_band_excess_is_shed(self):
        websites = self._slots({"a": 90, "b": 10})
        market = {"a": _FakeProvider(1.0), "b": _FakeProvider(1.0)}
        _rebalance_market(
            websites, market, random.Random(5),
            get_keys=lambda w: w.dns.providers,
            set_key=lambda w, i, k: w.dns.providers.__setitem__(i, k),
            tolerance=1.0,
        )
        counts = {"a": 0, "b": 0}
        for w in websites:
            counts[w.dns.providers[0]] += 1
        assert counts["a"] < 90
        assert counts["b"] > 10

    def test_zero_tolerance_lands_on_targets(self):
        websites = self._slots({"a": 100})
        market = {"a": _FakeProvider(1.0), "b": _FakeProvider(1.0)}
        _rebalance_market(
            websites, market, random.Random(5),
            get_keys=lambda w: w.dns.providers,
            set_key=lambda w, i, k: w.dns.providers.__setitem__(i, k),
        )
        moved = sum(1 for w in websites if w.dns.providers[0] == "b")
        assert moved == pytest.approx(50, abs=15)
