"""Tests for snapshot generation: markets, website draws, corner cases."""

import random
from dataclasses import replace

import pytest

from repro.worldgen.config import WorldConfig
from repro.worldgen.generate import (
    TARGETS_2016,
    TARGETS_2020,
    build_ca_market,
    build_cdn_market,
    build_dns_market,
    generate_snapshot,
)
from repro.worldgen.spec import PRIVATE


@pytest.fixture(scope="module")
def spec_2016():
    return generate_snapshot(WorldConfig(n_websites=800, seed=5, year=2016))


@pytest.fixture(scope="module")
def spec_2020_markets():
    config = WorldConfig(n_websites=800, seed=5)
    rng = random.Random(5)
    dns = build_dns_market(config, 2020, rng)
    cdn = build_cdn_market(config, 2020, dns, rng)
    ca = build_ca_market(config, 2020, dns, cdn, rng)
    return dns, cdn, ca


class TestMarkets:
    def test_market_sizes_match_paper(self, spec_2020_markets):
        dns, cdn, ca = spec_2020_markets
        assert len(cdn) == 86
        assert len(ca) == 59
        assert len(dns) > 20  # named + tail

    def test_2016_market_sizes(self, spec_2016):
        assert len(spec_2016.cdns) == 47
        assert len(spec_2016.cas) == 70

    def test_cdn_interservice_counts_hit_targets(self, spec_2020_markets):
        _, cdn, _ = spec_2020_markets
        third = sum(1 for c in cdn.values() if c.dns.uses_third_party)
        critical = sum(1 for c in cdn.values() if c.dns.is_critical)
        assert third == TARGETS_2020.cdn_third_party
        assert critical == TARGETS_2020.cdn_critical

    def test_ca_interservice_counts_hit_targets(self, spec_2020_markets):
        _, _, ca = spec_2020_markets
        third = sum(1 for c in ca.values() if c.dns.uses_third_party)
        critical = sum(1 for c in ca.values() if c.dns.is_critical)
        assert third == TARGETS_2020.ca_dns_third_party
        assert critical == TARGETS_2020.ca_dns_critical

    def test_ca_cdn_third_party_target(self, spec_2020_markets):
        _, _, ca = spec_2020_markets
        third = sum(1 for c in ca.values() if c.uses_third_party_cdn)
        assert third == TARGETS_2020.ca_cdn_third_party

    def test_2016_interservice_targets(self, spec_2016):
        # Named corner-case CDNs (twimg, airbnb-assets, ...) already exceed
        # the paper's 2016 counts slightly; synthetics only top up, so the
        # totals sit within a small band above the target.
        third = sum(1 for c in spec_2016.cdns.values() if c.dns.uses_third_party)
        critical = sum(1 for c in spec_2016.cdns.values() if c.dns.is_critical)
        assert TARGETS_2016.cdn_third_party <= third <= TARGETS_2016.cdn_third_party + 2
        assert TARGETS_2016.cdn_critical <= critical <= TARGETS_2016.cdn_critical + 2

    def test_marquee_dependencies_present(self, spec_2020_markets):
        _, _, ca = spec_2020_markets
        assert ca["digicert"].dns.providers == ["dnsmadeeasy"]
        assert ca["digicert"].cdn_key == "incapsula"
        assert ca["letsencrypt"].dns.providers == ["cloudflare"]
        assert ca["letsencrypt"].cdn_key == "cloudflare-cdn"

    def test_same_entity_dns_folds_to_private(self, spec_2020_markets):
        _, _, ca = spec_2020_markets
        # Amazon Trust Services on Route 53: same entity, hence private.
        assert ca["amazon-ca"].dns.providers == [PRIVATE]
        assert ca["amazon-ca"].cdn_private

    def test_symantec_gone_by_2020(self, spec_2020_markets, spec_2016):
        _, _, ca = spec_2020_markets
        assert "symantec" not in ca
        assert "symantec" in spec_2016.cas


class TestWebsiteGeneration:
    def test_population_size(self, spec_2016):
        assert len(spec_2016.websites) == 800
        assert [w.rank for w in spec_2016.websites] == list(range(1, 801))

    def test_deterministic(self):
        config = WorldConfig(n_websites=300, seed=9, year=2016)
        a = generate_snapshot(config)
        b = generate_snapshot(config)
        assert [w.domain for w in a.websites] == [w.domain for w in b.websites]
        assert [w.dns.providers for w in a.websites] == [
            w.dns.providers for w in b.websites
        ]

    def test_seed_changes_world(self):
        a = generate_snapshot(WorldConfig(n_websites=300, seed=1, year=2016))
        b = generate_snapshot(WorldConfig(n_websites=300, seed=2, year=2016))
        assert [w.dns.providers for w in a.websites] != [
            w.dns.providers for w in b.websites
        ]

    def test_ca_assigned_only_with_https(self, spec_2016):
        for website in spec_2016.websites:
            if not website.https:
                assert website.ca_key is None
                assert not website.ocsp_stapled

    def test_cdn_lists_reference_market(self, spec_2016):
        for website in spec_2016.websites:
            for key in website.cdns:
                assert key == PRIVATE or key in spec_2016.cdns

    def test_headline_rates_in_band(self, spec_2016):
        n = len(spec_2016.websites)
        third = sum(1 for w in spec_2016.websites if w.dns.uses_third_party) / n
        https = sum(1 for w in spec_2016.websites if w.https) / n
        assert 0.75 <= third <= 0.92
        assert 0.38 <= https <= 0.56


class TestCornerCases:
    def test_twitter_on_dyn_with_masked_soa(self, spec_2016):
        twitter = spec_2016.website_by_domain()["twitter.com"]
        assert twitter.dns.providers == ["dyn"]
        assert twitter.dns.soa_masked

    def test_amazon_redundant_with_own_soa(self, spec_2016):
        amazon = spec_2016.website_by_domain()["amazon.com"]
        assert set(amazon.dns.providers) == {"dyn", "ultradns"}
        assert not amazon.dns.soa_masked

    def test_youtube_is_google_entity(self, spec_2016):
        youtube = spec_2016.website_by_domain()["youtube.com"]
        assert youtube.entity == "google"
        assert "*.google.com" in youtube.alias_sans

    def test_yahoo_private_cdn_alias(self, spec_2016):
        yahoo = spec_2016.website_by_domain()["yahoo.com"]
        assert yahoo.cdns == ["yahoo-cdn"]
        assert yahoo.internal_alias_domain == "yimg.com"

    def test_corner_cases_can_be_disabled(self):
        spec = generate_snapshot(
            WorldConfig(n_websites=300, seed=5, year=2016, include_corner_cases=False)
        )
        assert "twitter.com" not in spec.website_by_domain()
