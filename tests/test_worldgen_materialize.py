"""Tests that the materialized world is structurally sound and faithful to
its spec's observable artifacts."""

import pytest

from repro.worldgen.spec import PRIVATE


class TestDnsTree:
    def test_every_website_resolvable(self, world_2020):
        # Probing a sample across the rank range keeps the test fast.
        sample = world_2020.spec.websites[::23]
        for spec in sample:
            assert world_2020.dig.is_resolvable(spec.domain), spec.domain

    def test_third_party_sites_use_provider_nameservers(self, world_2020):
        spec = next(
            w for w in world_2020.spec.websites
            if w.dns.is_critical and w.dns.providers[0] in world_2020.spec.dns_providers
        )
        provider = world_2020.spec.dns_providers[spec.dns.providers[0]]
        nameservers = world_2020.dig.ns(spec.domain)
        bases = {d for d in provider.ns_domains}
        assert all(any(ns.endswith(base) for base in bases) for ns in nameservers)

    def test_redundant_sites_have_multiple_ns_entities(self, world_2020):
        spec = next(
            w for w in world_2020.spec.websites
            if w.dns.is_redundant and PRIVATE not in w.dns.providers
        )
        nameservers = world_2020.dig.ns(spec.domain)
        from repro.names.registrable import registrable_domain

        bases = {registrable_domain(ns) for ns in nameservers}
        assert len(bases) >= 2

    def test_soa_masking_observable(self, world_2020):
        spec = next(
            w for w in world_2020.spec.websites
            if w.dns.is_critical and w.dns.soa_masked
            and w.dns.providers[0] in world_2020.spec.dns_providers
        )
        provider = world_2020.spec.dns_providers[spec.dns.providers[0]]
        soa = world_2020.dig.soa(spec.domain)
        assert soa is not None
        assert any(
            soa.mname.endswith(domain) for domain in provider.ns_domains
        )

    def test_unmasked_soa_points_home(self, world_2020):
        soa = world_2020.dig.soa("amazon.com")
        assert soa is not None and soa.mname.endswith("amazon.com")


class TestWebLayer:
    def test_cdn_customers_cname_to_edges(self, world_2020):
        spec = next(
            w for w in world_2020.spec.websites
            if w.cdns and w.cdns[0] in world_2020.spec.cdns
            and not w.internal_alias_domain
        )
        cdn = world_2020.spec.cdns[spec.cdns[0]]
        infra = world_2020.website_infra[spec.domain]
        chains = [
            world_2020.dig.cname_chain(host) for host in infra.resource_hosts
        ]
        flat = [name for chain in chains for name in chain]
        assert any(
            name.endswith(suffix) for name in flat for suffix in cdn.cname_suffixes
        )

    def test_certificates_issued_by_spec_ca(self, world_2020):
        spec = next(
            w for w in world_2020.spec.websites
            if w.https and w.ca_key in world_2020.spec.cas
        )
        infra = world_2020.website_infra[spec.domain]
        ca_infra = world_2020.ca_infra[spec.ca_key]
        assert infra.chain.leaf.issuer_name == ca_infra.ca.intermediate.subject

    def test_private_ca_certs_have_no_endpoints(self, world_2020):
        spec = next(
            (w for w in world_2020.spec.websites if w.https and w.ca_key == PRIVATE),
            None,
        )
        if spec is None:
            pytest.skip("no private-CA site in this world")
        infra = world_2020.website_infra[spec.domain]
        assert infra.chain.leaf.ocsp_urls == ()

    def test_ocsp_endpoints_reachable_for_market_cas(self, world_2020):
        client = world_2020.fresh_client()
        for key, infra in world_2020.ca_infra.items():
            if key.startswith("_private"):
                continue
            url = f"http://{infra.spec.ocsp_host}/ocsp"
            assert client.fetch_ocsp(url, 1) is not None, key

    def test_stapling_flag_observable(self, world_2020):
        spec = next(
            w for w in world_2020.spec.websites if w.https and w.ocsp_stapled
        )
        result = world_2020.web_client.get(f"https://www.{spec.domain}/")
        assert result.stapled_response is not None

    def test_trust_store_covers_all_issuers(self, world_2020):
        sample = [w for w in world_2020.spec.websites if w.https][::17]
        for spec in sample:
            result = world_2020.web_client.get(f"https://www.{spec.domain}/")
            assert result.ok and result.validation.chain_ok, (
                spec.domain, result.error,
            )


class TestEntityAliases:
    def test_youtube_served_by_google_nameservers(self, world_2020):
        nameservers = world_2020.dig.ns("youtube.com")
        assert all(ns.endswith("google.com") for ns in nameservers)

    def test_youtube_and_pki_goog_share_soa(self, world_2020):
        youtube = world_2020.dig.soa("youtube.com")
        pki = world_2020.dig.soa("ocsp.pki.goog")
        assert youtube is not None and pki is not None
        assert youtube.mname == pki.mname

    def test_yimg_resources_reach_yahoo_cdn(self, world_2020):
        infra = world_2020.website_infra["yahoo.com"]
        yimg_hosts = [h for h in infra.resource_hosts if h.endswith("yimg.com")]
        assert yimg_hosts
        addresses = world_2020.dig.a(yimg_hosts[0])
        edge = world_2020.cdn_infra["yahoo-cdn"].edge_server
        assert set(addresses) <= set(edge.ips)

    def test_twitter_reclaimed_soa_in_2020(self, world_2020):
        # 2016 twitter carried Dyn's SOA (the Section 3.1 trap); with the
        # 2020 private leg the zone identity is its own again, which is
        # what makes the added redundancy observable.
        soa = world_2020.dig.soa("twitter.com")
        assert soa is not None and soa.mname.endswith("twitter.com")


class TestFaultInjection:
    def test_dns_outage_and_restore(self, world_2020):
        victim = next(
            w for w in world_2020.spec.websites
            if w.dns.providers == ["dnsmadeeasy"]
        )
        world_2020.take_down_dns_provider("dnsmadeeasy")
        try:
            client = world_2020.fresh_client()
            result = client.get(f"http://www.{victim.domain}/")
            assert not result.ok
        finally:
            world_2020.restore_all()
        client = world_2020.fresh_client()
        assert client.get(f"http://www.{victim.domain}/").ok

    def test_cdn_outage_kills_resources_not_landing(self, world_2020):
        from repro.tlssim.validation import RevocationPolicy

        victim = next(
            w for w in world_2020.spec.websites
            if w.cdns == ["cloudfront"] and not w.internal_alias_domain
        )
        infra = world_2020.website_infra[victim.domain]
        scheme = "https" if victim.https else "http"
        world_2020.take_down_cdn("cloudfront")
        try:
            # Soft-fail (browser-like) clients: the landing page survives a
            # CDN outage; hard-fail clients may not, since Amazon's own CA
            # fronts its OCSP through CloudFront — the 2019 cascade.
            client = world_2020.fresh_client(policy=RevocationPolicy.SOFT_FAIL)
            landing = client.get(f"{scheme}://www.{victim.domain}/")
            assert landing.ok
            lost = [
                host for host in infra.resource_hosts
                if not client.get(f"{scheme}://{host}/x").ok
            ]
            assert lost
        finally:
            world_2020.restore_all()
