"""Unit tests for the rank-dependent adoption curves."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.worldgen import rankmodel


class TestInterpolationShape:
    @given(st.floats(min_value=1, max_value=1_000_000))
    def test_probabilities_are_probabilities(self, rank):
        for year in (2016, 2020):
            for fn in (
                rankmodel.p_third_party_dns,
                rankmodel.p_cdn_usage,
                rankmodel.p_https,
            ):
                assert 0.0 <= fn(rank, year) <= 1.0

    def test_third_party_dns_increases_with_rank(self):
        assert rankmodel.p_third_party_dns(100, 2020) < rankmodel.p_third_party_dns(100_000, 2020)

    def test_https_decreases_with_rank(self):
        assert rankmodel.p_https(100, 2020) > rankmodel.p_https(100_000, 2020)

    def test_2020_above_2016_for_https(self):
        for rank in (100, 1_000, 10_000, 100_000):
            assert rankmodel.p_https(rank, 2020) > rankmodel.p_https(rank, 2016)

    def test_clamped_outside_knots(self):
        assert rankmodel.p_https(1, 2020) == rankmodel.p_https(100, 2020)
        assert rankmodel.p_https(10_000_000, 2020) == rankmodel.p_https(100_000, 2020)

    def test_redundancy_multiplier_top_heavy(self):
        assert rankmodel.dns_redundancy_multiplier(100) > rankmodel.dns_redundancy_multiplier(100_000)

    def test_paper_anchor_values(self):
        # Knot values anchor the paper's headline bucket numbers.
        assert rankmodel.p_third_party_dns(100, 2020) == pytest.approx(0.49)
        assert rankmodel.p_https(100_000, 2020) == pytest.approx(0.772)


class TestBias:
    def test_top_bias_full_at_top(self):
        assert rankmodel.top_bias_factor(100) == 1.0
        assert rankmodel.top_bias_factor(100_000) == 0.0

    def test_biased_weight_boosts_top(self):
        top = rankmodel.biased_weight(2.0, top_bias=9.0, eff_rank=100)
        tail = rankmodel.biased_weight(2.0, top_bias=9.0, eff_rank=100_000)
        assert top == pytest.approx(18.0)
        assert tail == pytest.approx(2.0)

    def test_bias_below_one_suppresses_top(self):
        top = rankmodel.biased_weight(24.0, top_bias=0.3, eff_rank=100)
        assert top < 24.0


class TestWeightedChoice:
    def test_respects_zero_weights(self):
        rng = random.Random(0)
        for _ in range(50):
            assert rankmodel.weighted_choice(rng, ["a", "b"], [0.0, 1.0]) == "b"

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            rankmodel.weighted_choice(random.Random(0), ["a"], [0.0])

    def test_distribution_roughly_matches(self):
        rng = random.Random(1)
        counts = {"a": 0, "b": 0}
        for _ in range(4000):
            counts[rankmodel.weighted_choice(rng, ["a", "b"], [3.0, 1.0])] += 1
        assert 0.68 <= counts["a"] / 4000 <= 0.82

    def test_zipf_weights_decreasing(self):
        weights = rankmodel.zipf_weights(10, exponent=1.0)
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == 1.0
