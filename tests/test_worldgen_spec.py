"""Unit tests for the spec IR: DnsSetup/WebsiteSpec/market spec invariants."""

import pytest

from repro.worldgen.spec import (
    PRIVATE,
    CaSpec,
    CdnSpec,
    DnsSetup,
    WebsiteSpec,
)


class TestDnsSetup:
    def test_needs_providers(self):
        with pytest.raises(ValueError):
            DnsSetup(providers=[])

    def test_private_only(self):
        setup = DnsSetup(providers=[PRIVATE])
        assert not setup.uses_third_party
        assert not setup.is_critical
        assert setup.has_private

    def test_single_third_is_critical(self):
        setup = DnsSetup(providers=["dyn"])
        assert setup.uses_third_party and setup.is_critical
        assert not setup.is_redundant

    def test_two_third_parties_redundant(self):
        setup = DnsSetup(providers=["dyn", "ultradns"])
        assert setup.is_redundant and not setup.is_critical
        assert setup.third_party_providers == ["dyn", "ultradns"]

    def test_private_plus_third_redundant(self):
        setup = DnsSetup(providers=["dyn", PRIVATE])
        assert setup.is_redundant and not setup.is_critical

    def test_duplicate_provider_not_redundant(self):
        setup = DnsSetup(providers=["dyn", "dyn"])
        assert setup.is_critical

    def test_private_leg_unmasks_soa(self):
        # Invariant: an in-house master means an in-house SOA identity.
        setup = DnsSetup(providers=["dyn", PRIVATE], soa_masked=True)
        assert not setup.soa_masked
        masked = DnsSetup(providers=["dyn"], soa_masked=True)
        assert masked.soa_masked

    def test_copy_is_deep_enough(self):
        setup = DnsSetup(providers=["dyn"])
        copy = setup.copy()
        copy.providers.append("ultradns")
        assert setup.providers == ["dyn"]


class TestWebsiteSpec:
    def _site(self, **overrides):
        defaults = dict(domain="site.com", rank=10, entity="site.com")
        defaults.update(overrides)
        return WebsiteSpec(**defaults)

    def test_cdn_criticality(self):
        assert self._site(cdns=["akamai"]).cdn_is_critical
        assert not self._site(cdns=["akamai", "fastly"]).cdn_is_critical
        assert not self._site(cdns=[PRIVATE]).cdn_is_critical
        assert not self._site(cdns=[]).cdn_is_critical

    def test_ca_criticality(self):
        assert self._site(https=True, ca_key="digicert").ca_is_critical
        assert not self._site(
            https=True, ca_key="digicert", ocsp_stapled=True
        ).ca_is_critical
        assert not self._site(https=True, ca_key=PRIVATE).ca_is_critical
        assert not self._site(https=False).ca_is_critical

    def test_copy_independence(self):
        site = self._site(cdns=["akamai"], external_resource_domains=["x.com"])
        copy = site.copy()
        copy.cdns.append("fastly")
        copy.dns.providers.append("dyn")
        copy.external_resource_domains.clear()
        assert site.cdns == ["akamai"]
        assert site.dns.providers == [PRIVATE]
        assert site.external_resource_domains == ["x.com"]


class TestProviderSpecs:
    def test_ca_third_party_cdn_flag(self):
        ca = CaSpec(
            key="x", display="X", entity="x", ocsp_host="ocsp.x.net",
            crl_host="crl.x.net", share_weight=1.0, cdn_key="akamai",
        )
        assert ca.uses_third_party_cdn
        private = CaSpec(
            key="y", display="Y", entity="amazon", ocsp_host="o.y.net",
            crl_host="c.y.net", share_weight=1.0,
            cdn_key="cloudfront", cdn_private=True,
        )
        assert not private.uses_third_party_cdn

    def test_cdn_spec_copy(self):
        cdn = CdnSpec(
            key="x", display="X", entity="x",
            cname_suffixes=("x-edge.net",), share_weight=1.0,
            dns=DnsSetup(providers=["dyn"]),
        )
        copy = cdn.copy()
        copy.dns.providers.append(PRIVATE)
        assert cdn.dns.providers == ["dyn"]
