"""Tests for the N-epoch timeline (repro.worldgen.timeline)."""

import pytest

from repro.worldgen.generate import generate_snapshot
from repro.worldgen.timeline import (
    EpochChange,
    Timeline,
    TimelineConfig,
    _epoch_year,
)

CFG = TimelineConfig(n_websites=300, seed=7, epochs=5, churn_rate=0.10)


@pytest.fixture(scope="module")
def timeline():
    tl = Timeline(CFG)
    tl.spec(CFG.epochs - 1)
    return tl


class TestEpochYear:
    def test_endpoints_always_2016_and_2020(self):
        for epochs in (2, 3, 4, 5, 9, 21):
            assert _epoch_year(0, epochs) == 2016
            assert _epoch_year(epochs - 1, epochs) == 2020

    def test_single_epoch_timeline_is_2016(self):
        assert _epoch_year(0, 1) == 2016

    def test_years_are_monotonic(self):
        for epochs in (4, 7, 13):
            years = [_epoch_year(k, epochs) for k in range(epochs)]
            assert years == sorted(years)


class TestTimelineConfig:
    def test_rejects_zero_epochs(self):
        with pytest.raises(ValueError):
            TimelineConfig(epochs=0)

    def test_rejects_absurd_churn(self):
        with pytest.raises(ValueError):
            TimelineConfig(churn_rate=0.5)

    def test_world_config_bounds(self):
        with pytest.raises(ValueError):
            CFG.world_config(CFG.epochs)


class TestEpochZero:
    def test_epoch_zero_is_the_plain_2016_snapshot(self, timeline):
        fresh = generate_snapshot(CFG.world_config(0))
        assert timeline.spec(0) == fresh

    def test_epoch_zero_change_lists_everyone(self, timeline):
        change = timeline.changes(0)
        assert isinstance(change, EpochChange)
        assert set(change.changed) == {
            w.domain for w in timeline.spec(0).websites
        }
        assert change.dead == ()


class TestDeterminism:
    def test_rebuild_is_identical(self, timeline):
        """Epoch k is a pure function of the config — a second timeline
        built in a different order produces equal specs and changes."""
        other = Timeline(CFG)
        # Build out of order: jump straight to the last epoch.
        assert other.spec(CFG.epochs - 1) == timeline.spec(CFG.epochs - 1)
        for k in range(CFG.epochs):
            assert other.spec(k) == timeline.spec(k)
            assert other.changes(k) == timeline.changes(k)

    def test_different_seed_diverges(self, timeline):
        other = Timeline(TimelineConfig(
            n_websites=300, seed=8, epochs=5, churn_rate=0.10
        ))
        assert other.spec(1) != timeline.spec(1)


class TestChurnShape:
    def test_population_size_is_stable(self, timeline):
        for k in range(CFG.epochs):
            assert len(timeline.spec(k).websites) == CFG.n_websites

    def test_dead_sites_leave_and_newcomers_arrive(self, timeline):
        for k in range(1, CFG.epochs):
            change = timeline.changes(k)
            domains = set(timeline.spec(k).website_by_domain())
            assert not set(change.dead) & domains
            assert set(change.newcomers) <= domains
            assert len(change.dead) == len(change.newcomers)
            assert len(change.dead) == round(
                CFG.churn_rate * CFG.n_websites
            )

    def test_survivor_ranks_are_slot_preserved(self, timeline):
        """A newcomer takes its dead predecessor's slot, so a surviving
        domain keeps its rank unless ranks were explicitly shuffled."""
        for k in range(1, CFG.epochs):
            prev = timeline.spec(k - 1).website_by_domain()
            moved = 0
            for website in timeline.spec(k).websites:
                before = prev.get(website.domain)
                if before is not None and before.rank != website.rank:
                    moved += 1
            assert moved <= 0.05 * CFG.n_websites

    def test_changed_set_is_exactly_the_spec_diff(self, timeline):
        for k in range(1, CFG.epochs):
            prev = timeline.spec(k - 1).website_by_domain()
            expected = {
                w.domain
                for w in timeline.spec(k).websites
                if w.domain not in prev or prev[w.domain] != w
            }
            assert set(timeline.changes(k).changed) == expected

    def test_unchanged_sites_share_no_spec_drift(self, timeline):
        """Everything outside the changed set is exactly equal — this is
        what lets the scheduler splice records forward untouched."""
        for k in range(1, CFG.epochs):
            prev = timeline.spec(k - 1).website_by_domain()
            changed = set(timeline.changes(k).changed)
            for website in timeline.spec(k).websites:
                if website.domain not in changed:
                    assert prev[website.domain] == website


class TestMarketDrift:
    def test_https_fraction_climbs_toward_2020(self, timeline):
        first = timeline.spec(0)
        last = timeline.spec(CFG.epochs - 1)
        frac = lambda s: (  # noqa: E731
            sum(1 for w in s.websites if w.https) / len(s.websites)
        )
        assert frac(last) > frac(first)
        assert frac(last) == pytest.approx(0.78, abs=0.07)

    def test_structural_market_fields_stay_frozen(self, timeline):
        """Share weights drift, but the measurable surface (nameserver
        domains) of a provider present throughout must not move —
        otherwise unchanged websites would not measure identically."""
        first = timeline.spec(0).dns_providers
        last = timeline.spec(CFG.epochs - 1).dns_providers
        for key in first.keys() & last.keys():
            assert first[key].ns_domains == last[key].ns_domains

    def test_worlds_materialize_for_every_epoch(self, timeline):
        for k in range(CFG.epochs):
            world = timeline.world(k)
            assert world.year == timeline.spec(k).year
            assert len(world.spec.websites) == CFG.n_websites
